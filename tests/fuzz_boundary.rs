//! Pinned demonstration that the fuzzer now probes **across** the `n > 3f`
//! resiliency boundary instead of passing vacuously there.
//!
//! Inadmissible scenarios used to contribute nothing: `case_failures` gates on
//! admissibility, so a grid of `n = 3f` cases was all-green by construction. The
//! boundary mode inverts the property — outside the bound a theorem violation is
//! *expected* (it demonstrates the bound is tight), and the shrinker minimises
//! the demonstration while keeping it inadmissible and still-violating.

use uba_bench::fuzz::{boundary_violations, case_failures};
use uba_bench::{boundary_grid, fuzz_boundary, run_case, FuzzCase, ProtocolId};
use uba_core::sim::{AdversaryKind, AttackPlan, Simulation};

#[test]
fn boundary_grid_cases_are_all_inadmissible_and_would_pass_vacuously() {
    let grid = boundary_grid(true);
    assert!(!grid.is_empty(), "the smoke boundary grid is non-empty");
    for index in 0..grid.len() {
        let case = FuzzCase::from_sweep(&grid.case(index));
        assert!(
            !case.spec.admissible(),
            "{}: boundary grid must stay at/below n = 3f",
            case.describe()
        );
        assert_eq!(
            case.spec.n(),
            3 * case.spec.byzantine,
            "{}: boundary grid sits exactly at n = 3f",
            case.describe()
        );
        // The old harness's blind spot, kept as a regression pin: the *regular*
        // property set is vacuous here, whatever the run does.
        let report = run_case(&case);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
    }
}

#[test]
fn boundary_fuzz_finds_and_shrinks_a_small_n_equals_3f_counterexample() {
    let outcome = fuzz_boundary(&boundary_grid(true), 4, 16);
    assert!(
        !outcome.counterexamples.is_empty(),
        "some n = 3f case must demonstrably violate a theorem property \
         (otherwise the resiliency bound is not shown tight)"
    );
    let demo = &outcome.counterexamples[0];
    assert!(
        !demo.failures.is_empty(),
        "the shrunk demonstration still violates"
    );
    assert!(
        outcome.counterexamples.iter().any(|c| c.shrink_steps > 0),
        "at least one demonstration is actually minimised (e.g. the redundant \
         collusion step is dropped)"
    );
    assert!(
        !demo.shrunk.spec.admissible(),
        "shrinking must not drift back into the admissible region"
    );
    assert!(
        demo.shrunk.spec.n() <= 6,
        "the demonstration shrinks to at most 6 nodes, got n = {} ({})",
        demo.shrunk.spec.n(),
        demo.shrunk.describe()
    );
    // Replaying the shrunk case through the public entry point reproduces the
    // violation — the demonstration is a self-contained reproducer.
    let report = run_case(&demo.shrunk);
    assert_eq!(boundary_violations(&demo.shrunk, &report), demo.failures);
}

#[test]
fn admissible_cases_produce_no_boundary_violations() {
    // boundary_violations is the *complement* of case_failures: inside the bound
    // it must stay silent even for a run that would be judged by the regular
    // properties.
    let case = FuzzCase {
        protocol: ProtocolId::Consensus,
        spec: Simulation::scenario()
            .correct(5)
            .byzantine(1)
            .seed(7)
            .attack(AttackPlan::preset(AdversaryKind::SplitVote))
            .spec()
            .clone(),
    };
    assert!(case.spec.admissible());
    let report = run_case(&case);
    assert_eq!(boundary_violations(&case, &report), Vec::<String>::new());
}
