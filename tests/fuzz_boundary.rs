//! The full-boundary theorem suite: the fuzzer probes **across** the `n > 3f`
//! resiliency boundary and states a theorem-shaped result for *every* protocol
//! and baseline family.
//!
//! Inadmissible scenarios used to contribute nothing: `case_failures` gates on
//! admissibility, so a grid of `n = 3f` cases was all-green by construction. The
//! boundary mode inverts the property — outside the bound a theorem violation is
//! *expected* (it demonstrates the bound is tight), and the shrinker minimises
//! the demonstration while keeping it inadmissible and still-violating. With the
//! payload-vocabulary attacks (`AttackBehavior::Noise` / `Semantic`) the
//! expectation is now *per family*: each of the ten families either yields a
//! small pinned counterexample at `n = 3f`, or documents (in
//! `ProtocolId::boundary_immunity`) why its oracle cannot fail there.

use uba_bench::fuzz::{boundary_violations, case_failures};
use uba_bench::{
    boundary_grid, boundary_id_spaces, boundary_matrix, fuzz_boundary, property_id,
    replay_failures, run_case, FuzzCase, ProtocolId,
};
use uba_core::sim::{AdversaryKind, AttackPlan, Simulation};

#[test]
fn boundary_grid_cases_are_all_inadmissible_and_would_pass_vacuously() {
    let grid = boundary_grid(true);
    assert!(!grid.is_empty(), "the smoke boundary grid is non-empty");
    for index in 0..grid.len() {
        let case = FuzzCase::from_sweep(&grid.case(index));
        assert!(
            !case.spec.admissible(),
            "{}: boundary grid must stay at/below n = 3f",
            case.describe()
        );
        assert_eq!(
            case.spec.n(),
            3 * case.spec.byzantine,
            "{}: boundary grid sits exactly at n = 3f",
            case.describe()
        );
        // The old harness's blind spot, kept as a regression pin: the *regular*
        // property set is vacuous here, whatever the run does.
        let report = run_case(&case);
        assert_eq!(case_failures(&case, &report), Vec::<String>::new());
    }
}

#[test]
fn boundary_fuzz_finds_and_shrinks_a_small_n_equals_3f_counterexample() {
    let outcome = fuzz_boundary(&boundary_grid(true), 4, 16);
    assert!(
        !outcome.counterexamples.is_empty(),
        "some n = 3f case must demonstrably violate a theorem property \
         (otherwise the resiliency bound is not shown tight)"
    );
    let demo = &outcome.counterexamples[0];
    assert!(
        !demo.failures.is_empty(),
        "the shrunk demonstration still violates"
    );
    assert!(
        outcome.counterexamples.iter().any(|c| c.shrink_steps > 0),
        "at least one demonstration is actually minimised (e.g. the redundant \
         collusion step is dropped)"
    );
    assert!(
        !demo.shrunk.spec.admissible(),
        "shrinking must not drift back into the admissible region"
    );
    assert!(
        demo.shrunk.spec.n() <= 6,
        "the demonstration shrinks to at most 6 nodes, got n = {} ({})",
        demo.shrunk.spec.n(),
        demo.shrunk.describe()
    );
    // Replaying the shrunk case through the public entry point reproduces the
    // violation — the demonstration is a self-contained reproducer.
    let report = run_case(&demo.shrunk);
    assert_eq!(boundary_violations(&demo.shrunk, &report), demo.failures);
}

/// The per-family boundary matrix — the theorem suite's headline statement.
///
/// For every family the matrix must hold one of two results:
///
/// * a **shrunk `n = 3f` counterexample** of at most 8 nodes whose replay (the
///   `--replay` oracle, [`replay_failures`]) reproduces the recorded failures —
///   the family's `n > 3f` requirement is demonstrably *tight*; or
/// * a **documented immunity** ([`ProtocolId::boundary_immunity`]) explaining
///   why the family's oracle cannot fail at the boundary.
///
/// As of the payload-vocabulary attacks, exactly one family is immune: the
/// known-`f` rotating coordinator. Its schedule consults only the coordinators
/// with identifiers `0…f`, which the consecutive layout it requires makes
/// all-correct (the adversary holds the *top* `f` identifiers); the schedule
/// needs no communication to agree on, and sender authentication stops a
/// Byzantine identity from speaking as a scheduled coordinator — so the first
/// slot is always a good round, at `n = 3f` exactly as inside the bound. The
/// matrix run is the "assert" half of assert-and-document: the full smoke grid
/// (every plan, every identifier layout) really does produce no violation.
#[test]
fn the_boundary_matrix_states_a_theorem_for_every_family() {
    let matrix = boundary_matrix(true, 4, boundary_id_spaces());
    assert_eq!(matrix.len(), ProtocolId::ALL.len());
    for row in &matrix {
        assert!(
            row.cases > 0,
            "{}: the family's boundary grid is non-empty",
            row.protocol.name()
        );
        assert!(
            row.theorem_shaped(),
            "{}: neither an n = 3f violation nor a documented immunity — the \
             attack library cannot speak this family's payload language sharply \
             enough",
            row.protocol.name()
        );
        let Some(ce) = &row.counterexample else {
            continue;
        };
        assert!(
            !ce.failures.is_empty(),
            "{}: a counterexample records its violations",
            row.protocol.name()
        );
        assert!(
            !ce.shrunk.spec.admissible(),
            "{}: shrinking must not drift back inside the bound",
            row.protocol.name()
        );
        assert!(
            ce.shrunk.spec.n() <= 8,
            "{}: the pinned demonstration stays small, got n = {} ({})",
            row.protocol.name(),
            ce.shrunk.spec.n(),
            ce.shrunk.describe()
        );
        // The pin is a *reproducer*: replaying it through the `--replay` oracle
        // yields exactly the recorded failures.
        let report = run_case(&ce.shrunk);
        assert_eq!(
            replay_failures(&ce.shrunk, &report),
            ce.failures,
            "{}: the shrunk demonstration replays byte-identically",
            row.protocol.name()
        );
    }
    // The split across the two result kinds is itself pinned: every family
    // except the known-f rotor fails at the boundary.
    let immune: Vec<ProtocolId> = matrix
        .iter()
        .filter(|row| row.counterexample.is_none())
        .map(|row| row.protocol)
        .collect();
    assert_eq!(
        immune,
        vec![ProtocolId::KnownRotor],
        "exactly one family survives n = 3f, and it documents why"
    );
    assert!(
        ProtocolId::KnownRotor.boundary_immunity().is_some(),
        "the surviving family's immunity is documented in the code"
    );
}

/// The plan-axis split that gives the margin-guided search its teeth, pinned:
/// the *boundary* grid speaks the adaptive vocabulary (the stateful schedules
/// are what demonstrate tightness for families that survive every oblivious
/// plan), while the *default* admissible grid carries no adaptive behaviour at
/// all — an adaptive schedule in a search finding therefore always came from
/// the search's own mutation moves, never from the seed grid.
#[test]
fn adaptive_schedules_are_a_boundary_and_search_vocabulary_not_a_grid_axis() {
    use uba_bench::fuzz::{boundary_plans, default_plans};
    use uba_simnet::attack::{AdaptiveStrategy, AttackBehavior};

    let adaptive_strategies = |plans: &[AttackPlan]| -> Vec<AdaptiveStrategy> {
        plans
            .iter()
            .flat_map(|plan| plan.steps.iter())
            .filter_map(|step| match step.behavior {
                AttackBehavior::Adaptive { strategy } => Some(strategy),
                _ => None,
            })
            .collect()
    };

    let boundary = adaptive_strategies(&boundary_plans());
    assert!(
        boundary.contains(&AdaptiveStrategy::StarveWeakest)
            && boundary.contains(&AdaptiveStrategy::WithholdNearQuorum),
        "the boundary plan axis carries the stateful adaptive schedules: {boundary:?}"
    );
    for smoke in [true, false] {
        assert_eq!(
            adaptive_strategies(&default_plans(smoke)),
            Vec::<AdaptiveStrategy>::new(),
            "default_plans(smoke = {smoke}) must stay adaptive-free — the \
             search's advantage over the grid sweep depends on it"
        );
    }
}

/// The search-sharpened total-order pin. The family's boundary demonstration
/// is the split-brain schedule (per-side vote ladders that reach a value
/// quorum on one half and a `⊥` quorum on the other, exactly what `n = 3f`
/// permits), and it already fires at the smallest boundary point the grid
/// enumerates: the shrunk counterexample needs no more than n = 3 total nodes
/// — well under the blanket ≤ 8 pin of the matrix test above.
#[test]
fn the_total_order_boundary_demonstration_is_minimal() {
    let matrix = boundary_matrix(true, 4, boundary_id_spaces());
    let row = matrix
        .iter()
        .find(|row| row.protocol == ProtocolId::TotalOrder)
        .expect("total-order row exists");
    let ce = row
        .counterexample
        .as_ref()
        .expect("total-order yields an n = 3f counterexample");
    assert!(
        ce.shrunk.spec.n() <= 3,
        "the total-order demonstration shrinks to the minimal boundary point, \
         got n = {} ({})",
        ce.shrunk.spec.n(),
        ce.shrunk.describe()
    );
    assert!(
        ce.failures
            .iter()
            .any(|failure| failure.contains("total-order")),
        "the demonstration violates the chain-prefix property: {:?}",
        ce.failures
    );
}

/// Shrinking never trades one bug for another: every accepted move keeps a
/// failure with the *same property id* the original case violated.
#[test]
fn shrunk_boundary_demonstrations_keep_their_original_property_id() {
    let outcome = fuzz_boundary(&boundary_grid(true), 4, 16);
    assert!(!outcome.counterexamples.is_empty());
    for ce in &outcome.counterexamples {
        let original_report = run_case(&ce.original);
        let original_ids: Vec<String> = boundary_violations(&ce.original, &original_report)
            .iter()
            .map(|failure| property_id(failure).to_string())
            .collect();
        assert!(
            ce.failures
                .iter()
                .any(|failure| original_ids.iter().any(|id| id == property_id(failure))),
            "{}: shrunk to a different bug — original ids {:?}, shrunk failures {:?}",
            ce.original.describe(),
            original_ids,
            ce.failures
        );
    }
}

#[test]
fn admissible_cases_produce_no_boundary_violations() {
    // boundary_violations is the *complement* of case_failures: inside the bound
    // it must stay silent even for a run that would be judged by the regular
    // properties.
    let case = FuzzCase {
        protocol: ProtocolId::Consensus,
        spec: Simulation::scenario()
            .correct(5)
            .byzantine(1)
            .seed(7)
            .attack(AttackPlan::preset(AdversaryKind::SplitVote))
            .spec()
            .clone(),
    };
    assert!(case.spec.admissible());
    let report = run_case(&case);
    assert_eq!(boundary_violations(&case, &report), Vec::<String>::new());
}
