//! Margin/verdict pairing across every oracle family: for all ten
//! protocol/baseline families, under passing and failing scenarios alike, a
//! report's [`MarginSection`] must satisfy the construction invariant — a
//! margin is `0` exactly when the thing it is paired with (an oracle verdict
//! or a structural section boolean) fails, and at least `1` whenever it holds.
//! That invariant is what makes the margins usable as a search fitness: the
//! hill-climb (`uba_bench::search`) treats `margin == 0` as "on the violation
//! surface" and any positive value as distance from it.
//!
//! [`MarginSection`]: uba_simnet::sim::MarginSection

use uba_bench::fuzz::{run_case, FuzzCase, ProtocolId};
use uba_simnet::attack::{AttackBehavior, AttackPlan, SemanticStrategy};
use uba_simnet::sim::{AdversaryKind, MarginSection, RunReport};
use uba_simnet::sweep::ScenarioGrid;

/// Every family at an admissible size and at the `n = 3f` boundary, under a
/// quiet plan and the two sharpest scripted ones, two derived seeds each —
/// enough to exercise passing *and* failing verdicts for most families.
fn margin_grid() -> ScenarioGrid<ProtocolId> {
    ScenarioGrid::new()
        .protocols(ProtocolId::ALL.to_vec())
        .sizes(vec![(4, 1), (2, 1)])
        .plans(vec![
            AttackPlan::preset(AdversaryKind::Silent),
            AttackPlan::preset(AdversaryKind::SplitVote),
            AttackPlan::new().behavior(AttackBehavior::Semantic {
                strategy: SemanticStrategy::Boundary,
            }),
        ])
        .trials(2)
        .base_seed(0x3A46_1235)
        .max_rounds(150)
}

fn cases() -> Vec<FuzzCase> {
    let grid = margin_grid();
    (0..grid.len())
        .map(|index| FuzzCase::from_sweep(&grid.case(index)))
        .collect()
}

/// The `margin == 0 ⟺ paired outcome fails` invariant, for one report.
fn assert_margin_invariant(case: &FuzzCase, report: &RunReport) {
    let margins = &report.margins;
    assert!(
        !margins.oracles.is_empty(),
        "{}: margins must be attached",
        case.describe()
    );

    // Verdict-paired entries: one margin per oracle verdict, zero exactly on
    // failure.
    for verdict in &report.verdicts {
        let margin = margins.margin_for(&verdict.oracle).unwrap_or_else(|| {
            panic!(
                "{}: verdict {} has no paired margin",
                case.describe(),
                verdict.oracle
            )
        });
        assert_eq!(
            margin == 0,
            !verdict.passed,
            "{}: margin invariant broken for oracle {} (margin {margin}, passed {})",
            case.describe(),
            verdict.oracle,
            verdict.passed,
        );
    }

    // Structural entries pair with their section booleans.
    let structural: Vec<(&str, bool)> = [
        Some(("liveness", report.status.is_completed())),
        Some(("resiliency", report.scenario.admissible())),
        report.rotor.as_ref().map(|s| ("rotor", s.good_round)),
        report
            .parallel
            .as_ref()
            .map(|s| ("parallel-consensus", s.agreement)),
        report.chain.as_ref().map(|s| ("total-order", s.prefix_ok)),
    ]
    .into_iter()
    .flatten()
    .collect();
    for (oracle, holds) in structural {
        let margin = margins
            .margin_for(oracle)
            .unwrap_or_else(|| panic!("{}: no structural margin for {oracle}", case.describe()));
        assert_eq!(
            margin == 0,
            !holds,
            "{}: structural margin invariant broken for {oracle}",
            case.describe(),
        );
    }
}

#[test]
fn every_family_pairs_margins_with_verdicts_across_seeds() {
    let mut failing_seen = 0usize;
    let mut families_seen = 0usize;
    let mut last_family = None;
    for case in cases() {
        let report = run_case(&case);
        assert_margin_invariant(&case, &report);
        if report.verdicts.iter().any(|v| !v.passed) {
            failing_seen += 1;
        }
        if last_family != Some(case.protocol) {
            last_family = Some(case.protocol);
            families_seen += 1;
        }
    }
    assert_eq!(
        families_seen,
        ProtocolId::ALL.len(),
        "the grid must cover every family"
    );
    // The invariant must have been exercised on both sides: the boundary
    // slice under the sharp plans produces genuinely failing verdicts.
    assert!(
        failing_seen > 0,
        "no failing verdict anywhere — the zero side of the invariant went untested"
    );
}

#[test]
fn passing_margins_are_strictly_positive_and_fill_the_gradient() {
    for case in cases().into_iter().take(12) {
        let report = run_case(&case);
        for oracle in &report.margins.oracles {
            // u64 margins are non-negative by type; the clamp additionally
            // guarantees a passing oracle never reports zero.
            for metric in &oracle.metrics {
                assert!(
                    !metric.name.is_empty(),
                    "{}: unnamed metric under {}",
                    case.describe(),
                    oracle.oracle
                );
            }
            if oracle.margin > 0 {
                assert!(
                    oracle.margin >= 1,
                    "{}: positive margin below the clamp",
                    case.describe()
                );
            }
        }
        let min = report.margins.min_margin().expect("margins attached");
        assert!(report
            .margins
            .oracles
            .iter()
            .any(|oracle| oracle.margin == min));
    }
}

#[test]
fn margin_sections_round_trip_through_serde() {
    let mut last_family = None;
    for case in cases() {
        // One representative case per family keeps the round-trip sweep cheap.
        if last_family == Some(case.protocol) {
            continue;
        }
        last_family = Some(case.protocol);
        let report = run_case(&case);
        let json = serde_json::to_string(&report.margins).unwrap();
        let back: MarginSection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report.margins, "{}", case.describe());

        // The whole report (margins included) round-trips too — this is what
        // the SEARCH/FUZZ reproducer files rely on.
        let json = serde_json::to_string(&report).unwrap();
        let full: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(full.margins, report.margins, "{}", case.describe());
    }
}
