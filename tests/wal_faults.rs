//! WAL fault-injection suite: crash/restart cycles whose restart policy
//! damages the log ([`WalFault::TornTail`], [`WalFault::LoseUnsynced`],
//! [`WalFault::Corrupt`]) must be (1) deterministic under a fixed seed —
//! repeated runs produce byte-identical reports, fault damage included — and
//! (2) safe: a damaged log loses *suffix* rounds, never integrity, so replay
//! from the surviving durable prefix always passes the recovery oracles.
//!
//! Faults only ever touch the unsynced suffix of a log, so the default
//! `sync_every = 1` cadence makes them no-ops; these tests raise the cadence
//! through [`SyncEngine::enable_recovery_with`] to open a suffix worth
//! damaging.
//!
//! [`SyncEngine::enable_recovery_with`]: uba_simnet::SyncEngine::enable_recovery_with

use uba_checker::attach_verdicts;
use uba_core::sim::{RunReport, ScenarioExt, Simulation};
use uba_simnet::{
    ChurnEvent, ChurnSchedule, Recoverable, RestartPolicy, RestartRecord, WalConfig, WalFault,
};

const SEED: u64 = 0xFA_117;

/// One consensus run (7 correct + 2 Byzantine) whose second correct node
/// crashes at round 3 and restarts at round 6 under `policy`, write-ahead
/// logged at the given fsync cadence. Verdicts are attached so callers can
/// read the recovery oracle's opinion directly off the report.
fn faulted_run(policy: RestartPolicy, sync_every: u64) -> RunReport {
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let builder = Simulation::scenario().correct(7).byzantine(2).seed(SEED);
    // The first 7 generated identifiers are the correct nodes; crash one that
    // is not the protocol's structural anchor.
    let victim = builder.spec().id_space.generate(9, SEED)[1];
    let churn = ChurnSchedule::empty()
        .with(3, ChurnEvent::Crash(victim))
        .with(6, ChurnEvent::Restart { id: victim, policy });
    let mut harness = builder.max_rounds(100).churn(churn).consensus(&inputs);
    // Replace the auto-enabled recovery manager (default config) with one that
    // syncs lazily enough to leave an unsynced suffix at the crash point.
    harness.engine_mut().enable_recovery_with(
        Box::new(|node: &_| node.snapshot()),
        WalConfig {
            sync_every,
            compact_after: 1024,
        },
    );
    let mut report = harness.run().expect("crash/restart run completes");
    attach_verdicts(&mut report);
    report
}

/// The single restart record of a faulted run.
fn restart(report: &RunReport) -> &RestartRecord {
    let restarts = &report
        .recovery
        .as_ref()
        .expect("a crash/restart run records a recovery section")
        .restarts;
    assert_eq!(restarts.len(), 1, "exactly one crash/restart cycle");
    &restarts[0]
}

/// Whether the report's recovery oracle passed.
fn recovery_oracle_passed(report: &RunReport) -> bool {
    report
        .verdicts
        .iter()
        .find(|verdict| verdict.oracle == "recovery")
        .expect("the recovery oracle runs on every report with a recovery section")
        .passed
}

const POLICIES: [RestartPolicy; 4] = [
    RestartPolicy::Clean,
    RestartPolicy::Fault(WalFault::TornTail),
    RestartPolicy::Fault(WalFault::LoseUnsynced),
    RestartPolicy::Fault(WalFault::Corrupt),
];

#[test]
fn every_fault_policy_is_deterministic_under_a_fixed_seed() {
    for policy in POLICIES {
        let first = faulted_run(policy, 4);
        let second = faulted_run(policy, 4);
        assert_eq!(
            first, second,
            "{policy:?}: fault damage must be a pure function of the seed"
        );
        assert_eq!(restart(&first).policy, policy);
    }
}

#[test]
fn faults_only_bite_an_unsynced_suffix() {
    // At the default every-round fsync cadence there is nothing undurable to
    // damage: every fault replays exactly like a clean restart.
    for policy in POLICIES {
        let report = faulted_run(policy, 1);
        let record = restart(&report);
        assert_eq!(
            record.dropped_records, 0,
            "{policy:?}: a fully synced log has no suffix to lose"
        );
        assert!(recovery_oracle_passed(&report));
    }

    // A lazy cadence leaves the pre-crash rounds unsynced: every fault now
    // costs replayable rounds. `dropped_records` only witnesses *checksum*
    // truncation — `LoseUnsynced` physically removes its records, so replay
    // sees a shorter but valid log and reports zero drops; the fault-damage
    // ordering lives in `recovered_rounds` instead.
    let clean = faulted_run(RestartPolicy::Clean, 4);
    let torn = faulted_run(RestartPolicy::Fault(WalFault::TornTail), 4);
    let lost = faulted_run(RestartPolicy::Fault(WalFault::LoseUnsynced), 4);
    let corrupt = faulted_run(RestartPolicy::Fault(WalFault::Corrupt), 4);
    assert_eq!(restart(&clean).dropped_records, 0);
    assert!(
        restart(&torn).dropped_records >= 1,
        "a torn tail must checksum-truncate at least the torn record"
    );
    assert_eq!(
        restart(&lost).dropped_records,
        0,
        "records the disk never saw cannot be dropped by replay"
    );
    let clean_rounds = restart(&clean).recovered_rounds;
    let torn_rounds = restart(&torn).recovered_rounds;
    let lost_rounds = restart(&lost).recovered_rounds;
    let corrupt_rounds = restart(&corrupt).recovered_rounds;
    assert!(
        torn_rounds < clean_rounds,
        "tearing the tail ({torn_rounds}) must lose a round versus clean replay ({clean_rounds})"
    );
    assert!(
        lost_rounds <= torn_rounds,
        "losing the whole suffix ({lost_rounds}) cannot recover more than tearing its tail ({torn_rounds})"
    );
    assert!(
        corrupt_rounds <= torn_rounds,
        "a corrupt first suffix record ({corrupt_rounds}) truncates at least as much as a torn tail ({torn_rounds})"
    );
}

#[test]
fn damaged_logs_still_replay_to_oracle_accepted_state() {
    // The satellite claim: a torn tail (or any fault) never yields a state the
    // recovery oracles reject — replay resumes from the durable prefix, the
    // re-produced sends match their durable records, and consumed inputs stay
    // monotone. Exercised across two lazy cadences to vary the suffix size.
    for sync_every in [2, 4] {
        for policy in POLICIES {
            let report = faulted_run(policy, sync_every);
            let record = restart(&report);
            assert!(
                recovery_oracle_passed(&report),
                "{policy:?} (sync_every = {sync_every}): recovery oracle rejected the replayed state"
            );
            assert_eq!(
                record.send_conflicts, 0,
                "{policy:?}: replay must reproduce the logged sends exactly"
            );
            assert!(
                record.consumed_monotone,
                "{policy:?}: replayed rounds must consume inputs in order"
            );
        }
    }
}
