//! Tests at the resiliency boundary: the paper's guarantees hold exactly when
//! `n > 3f`. These tests pin the behaviour at `n = 3f + 1` (the hardest admissible
//! point), document what is and is not promised at `n = 3f` (nothing), and cover the
//! degenerate corners (`f = 0`, a single node, an empty system). All end-to-end runs
//! go through the unified `Simulation` builder.

use uba_checker::consensus::{check_consensus, ConsensusCheck, ConsensusObservation};
use uba_core::quorum::{max_faults, meets_one_third, meets_two_thirds, resilient};
use uba_core::sim::{AdversaryKind, RunStatus, ScenarioBuilder, ScenarioExt, Simulation};
use uba_core::Consensus;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

fn scenario(correct: usize, byzantine: usize, seed: u64) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
}

#[test]
fn every_primitive_holds_at_exactly_n_equals_3f_plus_1() {
    for &f in &[1usize, 2, 3, 4] {
        let n = 3 * f + 1;
        let correct = n - f;
        let seed = 500 + f as u64;
        assert!(scenario(correct, f, seed).spec().resilient());

        // Consensus under the strongest scripted adversary.
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let consensus = scenario(correct, f, seed)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .unwrap();
        let section = consensus.consensus.as_ref().unwrap();
        assert!(
            section.agreement && section.validity,
            "consensus at n = 3f + 1, f = {f}"
        );

        // Reliable broadcast with correct and equivocating sources.
        let correct_source = scenario(correct, f, seed)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(9)
            .rounds(12)
            .run()
            .unwrap();
        let broadcast = correct_source.broadcast.as_ref().unwrap();
        assert!(broadcast.consistent);
        assert!(broadcast
            .accepted
            .iter()
            .all(|set| set.values.iter().map(|&(m, _)| m).eq([9u64])));
        let equivocating = scenario(correct, f, seed)
            .broadcast_equivocating(1, 2)
            .rounds(12)
            .run()
            .unwrap();
        assert!(equivocating.broadcast.as_ref().unwrap().consistent);

        // Rotor-coordinator witnesses a good round.
        let rotor = scenario(correct, f, seed)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .rotor()
            .run()
            .unwrap();
        assert!(
            rotor.rotor.as_ref().unwrap().good_round,
            "rotor at n = 3f + 1, f = {f}"
        );

        // Approximate agreement stays inside the correct range.
        let reals: Vec<f64> = (0..correct).map(|i| i as f64 * 7.0).collect();
        let approx = scenario(correct, f, seed)
            .adversary(AdversaryKind::Worst)
            .approx(&reals)
            .run()
            .unwrap();
        let approx_section = approx.approx.as_ref().unwrap();
        assert!(approx_section.outputs_in_range && approx_section.contraction < 1.0);
    }
}

#[test]
fn beyond_the_boundary_nothing_is_promised_but_nothing_panics() {
    // n = 3f: the guarantees may fail — the paper proves they cannot be guaranteed —
    // but the implementation must stay well-behaved (terminate or hit the round cap,
    // never panic or deadlock the test).
    for &f in &[1usize, 2] {
        let n = 3 * f;
        let correct = n - f;
        let builder = scenario(correct, f, 900 + f as u64).max_rounds(200);
        assert!(!builder.spec().resilient());
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        // The run may legitimately hit the round cap or disagree; both are acceptable
        // outcomes outside the resiliency bound — and both are *reported*, not thrown.
        let report = builder
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .unwrap();
        match report.status {
            RunStatus::Completed { .. } => {
                let section = report.consensus.as_ref().unwrap();
                assert_eq!(section.decisions.len() + section.undecided.len(), correct);
            }
            RunStatus::MaxRoundsExceeded { limit } => assert_eq!(limit, 200),
        }
    }
}

#[test]
fn fault_free_systems_decide_fast() {
    // f = 0: the protocols still work (they never knew f anyway) and unanimity decides
    // in the first phase.
    let report = scenario(6, 0, 42)
        .adversary(AdversaryKind::Silent)
        .consensus(&[3, 3, 3, 3, 3, 3])
        .run()
        .unwrap();
    let section = report.consensus.as_ref().unwrap();
    assert!(section.agreement && section.validity);
    assert!(section.decisions.iter().all(|d| d.value == 3));
    assert_eq!(section.decisions.len(), 6);
    assert!(
        report.rounds <= 8,
        "unanimous inputs decide in the first phase"
    );
}

#[test]
fn a_single_node_system_agrees_with_itself() {
    let ids = IdSpace::default().generate(1, 7);
    let nodes = vec![Consensus::new(ids[0], 99u64)];
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_to_termination(100).unwrap();
    let observations: Vec<ConsensusObservation<u64>> = engine
        .nodes()
        .iter()
        .map(|node| ConsensusObservation {
            node: Protocol::id(node),
            input: *node.input(),
            decision: node.decision().cloned(),
        })
        .collect();
    check_consensus(&observations, ConsensusCheck::default()).assert_passed("single node");
    assert_eq!(observations[0].decision.as_ref().unwrap().value, 99);
}

#[test]
fn quorum_arithmetic_pins_the_boundary_exactly() {
    // The n > 3f boundary in exact integer arithmetic, for a range of n.
    for n in 1usize..200 {
        let f = max_faults(n);
        assert!(resilient(n, f));
        assert!(!resilient(n, f + 1));
        assert_eq!(f, (n - 1) / 3);
    }
    // Threshold helpers at the exact fractional boundaries.
    assert!(meets_one_third(1, 3));
    assert!(!meets_one_third(0, 3));
    assert!(meets_two_thirds(2, 3));
    assert!(!meets_two_thirds(1, 3));
    assert!(meets_one_third(2, 6));
    assert!(meets_two_thirds(4, 6));
    assert!(!meets_two_thirds(3, 6));
    // n_v = 0 (a node that heard from nobody) can never form a quorum.
    assert!(!meets_one_third(0, 0));
    assert!(!meets_two_thirds(0, 0));
}

#[test]
fn byzantine_majorities_of_the_candidate_pool_cannot_forge_reliable_broadcast() {
    // 7 correct receivers, 2 Byzantine identities echoing a value the (correct) source
    // never sent. 2 < n_v/3 for every correct node, so the forged value is never
    // accepted anywhere.
    use uba_core::reliable_broadcast::{RbMessage, ReliableBroadcast};
    use uba_simnet::{AdversaryView, Directed, FnAdversary};

    let ids = IdSpace::default().generate(10, 77);
    let byz: Vec<NodeId> = ids[8..].to_vec();
    let source = ids[0];
    let nodes: Vec<ReliableBroadcast<u64>> = ids[..8]
        .iter()
        .map(|&id| {
            if id == source {
                ReliableBroadcast::sender(id, 5u64)
            } else {
                ReliableBroadcast::receiver(id, source)
            }
        })
        .collect();
    let byz_clone = byz.clone();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, RbMessage<u64>>| {
        let mut out = Vec::new();
        for &from in &byz_clone {
            for &to in view.correct_ids {
                let payload = if view.round == 1 {
                    RbMessage::Present
                } else {
                    RbMessage::Echo(666u64)
                };
                out.push(Directed::new(from, to, payload));
            }
        }
        out
    });
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_rounds(15).unwrap();
    for node in engine.nodes() {
        let accepted: Vec<u64> = node.accepted().iter().map(|a| a.message).collect();
        assert_eq!(
            accepted,
            vec![5],
            "only the genuine broadcast may be accepted"
        );
    }
}
