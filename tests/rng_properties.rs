//! RNG stream-independence properties.
//!
//! Everything reproducible in the repository hangs off `derive_seed`: the sweep DSL
//! derives one seed per grid case, `run_trials` derives one seed per trial, and the
//! fuzzer's replayable counterexamples embed the derived seed. These tests pin the
//! function's exact outputs (so an accidental algorithm change cannot silently
//! re-seed every recorded result), check collision-freeness over a large block, and
//! verify the parallel trial runner is byte-for-byte independent of its worker
//! count.

use std::collections::HashSet;

use uba_bench::fuzz::ProtocolId;
use uba_bench::montecarlo::{run_trials, SweepConfig};
use uba_bench::search::{search_grid, SearchConfig};
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_simnet::attack::AttackPlan;
use uba_simnet::rng::{derive_seed, seeded_rng};
use uba_simnet::sweep::ScenarioGrid;

/// The SplitMix64-finalizer outputs must never change: recorded baselines, the
/// sweep grid enumeration and saved fuzz counterexamples all embed seeds derived
/// with exactly this function.
#[test]
fn derive_seed_outputs_are_pinned() {
    assert_eq!(derive_seed(0, 0), 0x0000_0000_0000_0000);
    assert_eq!(derive_seed(0, 1), 0xE220_A839_7B1D_CDAF);
    assert_eq!(derive_seed(1, 0), 0x5692_161D_100B_05E5);
    assert_eq!(derive_seed(42, 7), 0x53AD_348A_F3DD_AF4B);
    assert_eq!(derive_seed(0xF0CC_5EED, 559), 0x201F_88F4_EFD3_B9C3);
}

#[test]
fn derive_seed_is_collision_free_over_a_large_block() {
    // 256 parents × 256 streams: every derived seed distinct. This is stronger
    // than the birthday bound suggests for a random function — the finalizer is a
    // bijection per parent — and it is exactly the regime the experiment suite
    // uses (small parents, small stream labels).
    let mut seen = HashSet::with_capacity(256 * 256);
    for parent in 0..256u64 {
        for stream in 0..256u64 {
            assert!(
                seen.insert(derive_seed(parent, stream)),
                "collision at parent {parent}, stream {stream}"
            );
        }
    }

    // A single parent's stream labels are a bijection: 100k labels, 100k seeds.
    let single: HashSet<u64> = (0..100_000u64)
        .map(|stream| derive_seed(0xF0CC_5EED, stream))
        .collect();
    assert_eq!(single.len(), 100_000);
}

#[test]
fn derived_streams_are_pairwise_independent_prefixes() {
    // Streams seeded from adjacent labels must not share output prefixes (a
    // correlated generator would make "independent" trials re-run each other).
    use rand::Rng;
    let mut prefixes = HashSet::new();
    for stream in 0..64u64 {
        let mut rng = seeded_rng(derive_seed(9, stream));
        let prefix: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
        assert!(
            prefixes.insert(prefix),
            "stream {stream} repeats another stream's prefix"
        );
    }
}

/// The satellite pin: `run_trials` must hand every trial the same derived seed and
/// deliver results in the same order for 1, 4 and 8 workers — checked on full
/// serialized `RunReport`s, not just summaries, so any drift in execution order or
/// seeding shows up byte for byte.
#[test]
fn run_trials_reports_are_byte_identical_for_1_4_and_8_workers() {
    let inputs: Vec<u64> = (0..5).map(|i| i % 2).collect();
    let run = |workers: usize| -> Vec<String> {
        let config = SweepConfig {
            trials: 12,
            base_seed: 0xBEEF,
            workers,
        };
        run_trials(&config, |_, seed| {
            let report = Simulation::scenario()
                .correct(5)
                .byzantine(1)
                .seed(seed)
                .adversary(AdversaryKind::SplitVote)
                .consensus(&inputs)
                .run()
                .expect("consensus runs never violate engine rules");
            serde_json::to_string(&report).expect("reports serialise")
        })
    };
    let serial = run(1);
    assert_eq!(serial.len(), 12);
    assert_eq!(serial, run(4), "4 workers must reproduce the serial bytes");
    assert_eq!(serial, run(8), "8 workers must reproduce the serial bytes");
}

/// The seed grid the search-determinism pins climb from: two families, two
/// sizes, two scripted plans — small enough to finish in seconds, rich enough
/// that the climbs mutate plans, populations and seeds.
fn search_seed_grid() -> ScenarioGrid<ProtocolId> {
    ScenarioGrid::new()
        .protocols(vec![ProtocolId::Consensus, ProtocolId::Rotor])
        .sizes(vec![(4, 1), (7, 2)])
        .plans(vec![
            AttackPlan::preset(AdversaryKind::Silent),
            AttackPlan::preset(AdversaryKind::SplitVote),
        ])
        .trials(1)
        .base_seed(0xD15C_0B01)
        .max_rounds(300)
}

/// The margin-guided search is a pure function of its seed grid and config:
/// the whole trajectory — every evaluated mutation, margin and acceptance
/// decision — and the final counterexamples must be byte-identical run over
/// run, and invariant in the worker count (1, 4 and 8), because restarts
/// derive private RNG streams and never communicate. Compared on serialized
/// JSON, so any drift in mutation order, margin computation or shrinking
/// shows up byte for byte.
#[test]
fn search_trajectories_are_byte_identical_for_1_4_and_8_workers() {
    let grid = search_seed_grid();
    let run = |workers: usize| {
        let config = SearchConfig {
            restarts: 6,
            steps: 12,
            base_seed: 0x5EA2_C45E,
            workers,
            max_counterexamples: 3,
        };
        let outcome = search_grid(&grid, &config);
        (
            serde_json::to_string(&outcome.trajectory).expect("trajectories serialise"),
            serde_json::to_string(&outcome.counterexamples).expect("counterexamples serialise"),
            outcome.evaluations,
        )
    };
    let serial = run(1);
    let rerun = run(1);
    assert_eq!(serial, rerun, "same seed must replay the same trajectory");
    assert_eq!(serial, run(4), "4 workers must reproduce the serial search");
    assert_eq!(serial, run(8), "8 workers must reproduce the serial search");
}

/// Changing the base seed must actually change the walk (otherwise the
/// determinism pin above would hold vacuously for a constant function).
#[test]
fn search_trajectories_depend_on_the_base_seed() {
    let grid = search_seed_grid();
    let run = |base_seed: u64| {
        let config = SearchConfig {
            restarts: 2,
            steps: 8,
            base_seed,
            workers: 2,
            max_counterexamples: 1,
        };
        serde_json::to_string(&search_grid(&grid, &config).trajectory)
            .expect("trajectories serialise")
    };
    assert_ne!(
        run(0x5EA2_C45E),
        run(0x0DD_5EED),
        "different base seeds must explore differently"
    );
}
