//! Property-based tests (proptest) over the core invariants: quorum arithmetic,
//! agreement/validity of consensus, range containment of approximate agreement and
//! consistency of reliable broadcast — under randomly drawn system sizes, inputs,
//! seeds and adversary choices.

use proptest::prelude::*;
use uba_core::approx::trimmed_midpoint;
use uba_core::quorum::{max_faults, meets_one_third, meets_two_thirds, resilient, trim_count};
use uba_core::runner::{
    run_approx, run_broadcast_correct_source, run_broadcast_equivocating_source, run_consensus,
    AdversaryKind, Scenario,
};
use uba_core::Real;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact threshold arithmetic agrees with the rational definition for all inputs.
    #[test]
    fn quorum_thresholds_match_rational_arithmetic(count in 0usize..2000, n_v in 0usize..2000) {
        let one_third = count > 0 && (count as f64) >= (n_v as f64) / 3.0 - 1e-12;
        let two_thirds = count > 0 && (count as f64) >= 2.0 * (n_v as f64) / 3.0 - 1e-12;
        prop_assert_eq!(meets_one_third(count, n_v), one_third);
        prop_assert_eq!(meets_two_thirds(count, n_v), two_thirds);
        prop_assert_eq!(trim_count(n_v), n_v / 3);
    }

    /// `max_faults` is the largest f with n > 3f.
    #[test]
    fn max_faults_is_maximal(n in 1usize..500) {
        let f = max_faults(n);
        prop_assert!(resilient(n, f));
        prop_assert!(!resilient(n, f + 1));
    }

    /// The trimmed midpoint always lies within the input range and never panics.
    #[test]
    fn trimmed_midpoint_stays_in_range(values in proptest::collection::vec(-1_000_000i64..1_000_000, 1..50)) {
        let reals: Vec<Real> = values.iter().map(|&v| Real::from_raw(v)).collect();
        if let Some(mid) = trimmed_midpoint(reals.clone()) {
            let lo = *reals.iter().min().unwrap();
            let hi = *reals.iter().max().unwrap();
            prop_assert!(mid >= lo && mid <= hi);
        }
    }
}

proptest! {
    // End-to-end protocol runs are comparatively slow; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Consensus: agreement and validity hold for random sizes, inputs, seeds and
    /// adversaries (within n > 3f).
    #[test]
    fn consensus_agreement_and_validity(
        f in 1usize..4,
        extra in 0usize..3,
        seed in 0u64..1_000,
        adversary_pick in 0usize..4,
        input_bits in 0u32..128,
    ) {
        let correct = 2 * f + 1 + extra;
        let scenario = Scenario::new(correct, f, seed);
        let inputs: Vec<u64> = (0..correct).map(|i| ((input_bits >> (i % 32)) & 1) as u64).collect();
        let kind = [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::PartialAnnounce,
            AdversaryKind::SplitVote,
        ][adversary_pick];
        let report = run_consensus(&scenario, &inputs, kind).expect("terminates");
        prop_assert!(report.agreement);
        prop_assert!(report.validity);
    }

    /// Approximate agreement: outputs stay inside the correct input range and the
    /// range contracts, for random inputs and Byzantine counts.
    #[test]
    fn approx_outputs_contained_and_contracting(
        f in 1usize..4,
        extra in 0usize..4,
        seed in 0u64..1_000,
        spread in 1.0f64..1_000.0,
    ) {
        let correct = 2 * f + 1 + extra;
        let scenario = Scenario::new(correct, f, seed);
        let inputs: Vec<f64> = (0..correct).map(|i| i as f64 * spread / correct as f64).collect();
        let report = run_approx(&scenario, &inputs).expect("completes");
        prop_assert!(report.outputs_in_range);
        prop_assert!(report.contraction < 1.0);
    }

    /// Reliable broadcast: the accept sets of all correct nodes are identical, whether
    /// the designated sender is correct or equivocating.
    #[test]
    fn reliable_broadcast_accept_sets_agree(
        f in 1usize..4,
        extra in 0usize..4,
        seed in 0u64..1_000,
        equivocate in proptest::bool::ANY,
    ) {
        let correct = 2 * f + 1 + extra;
        let scenario = Scenario::new(correct, f, seed);
        let report = if equivocate {
            run_broadcast_equivocating_source(&scenario, 1, 2, 14).expect("completes")
        } else {
            run_broadcast_correct_source(&scenario, 7, 14).expect("completes")
        };
        prop_assert!(report.consistent);
        if !equivocate {
            prop_assert!(report.accepted.iter().all(|a| a == &vec![7]));
        }
    }
}
