//! Randomised property tests over the core invariants: quorum arithmetic,
//! agreement/validity of consensus, range containment of approximate agreement and
//! consistency of reliable broadcast — under seed-derived system sizes, inputs and
//! adversary choices. (The upstream proptest crate is unavailable offline, so cases
//! are drawn from the workspace's deterministic RNG instead; every failure is
//! reproducible from the fixed base seed.)

use rand::Rng;
use uba_core::approx::trimmed_midpoint;
use uba_core::quorum::{max_faults, meets_one_third, meets_two_thirds, resilient, trim_count};
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_core::Real;
use uba_simnet::rng::seeded_rng;

#[test]
fn quorum_thresholds_match_rational_arithmetic() {
    let mut rng = seeded_rng(0xC0FFEE);
    for _ in 0..512 {
        let count = rng.gen_range(0usize..2000);
        let n_v = rng.gen_range(0usize..2000);
        let one_third = count > 0 && (count as f64) >= (n_v as f64) / 3.0 - 1e-12;
        let two_thirds = count > 0 && (count as f64) >= 2.0 * (n_v as f64) / 3.0 - 1e-12;
        assert_eq!(
            meets_one_third(count, n_v),
            one_third,
            "count={count}, n_v={n_v}"
        );
        assert_eq!(
            meets_two_thirds(count, n_v),
            two_thirds,
            "count={count}, n_v={n_v}"
        );
        assert_eq!(trim_count(n_v), n_v / 3);
    }
}

#[test]
fn max_faults_is_maximal() {
    for n in 1usize..500 {
        let f = max_faults(n);
        assert!(resilient(n, f));
        assert!(!resilient(n, f + 1));
    }
}

#[test]
fn trimmed_midpoint_stays_in_range() {
    let mut rng = seeded_rng(0x7F1);
    for _ in 0..256 {
        let len = rng.gen_range(1usize..50);
        let reals: Vec<Real> = (0..len)
            .map(|_| Real::from_raw(rng.gen_range(-1_000_000i64..1_000_000)))
            .collect();
        if let Some(mid) = trimmed_midpoint(reals.clone()) {
            let lo = *reals.iter().min().unwrap();
            let hi = *reals.iter().max().unwrap();
            assert!(
                mid >= lo && mid <= hi,
                "midpoint {mid:?} outside [{lo:?}, {hi:?}]"
            );
        }
    }
}

#[test]
fn consensus_agreement_and_validity() {
    let mut rng = seeded_rng(0xAB5);
    for case in 0..12 {
        let f = rng.gen_range(1usize..4);
        let extra = rng.gen_range(0usize..3);
        let seed = rng.gen_range(0u64..1_000);
        let correct = 2 * f + 1 + extra;
        let input_bits: u32 = rng.gen_range(0u32..128);
        let inputs: Vec<u64> = (0..correct)
            .map(|i| ((input_bits >> (i % 32)) & 1) as u64)
            .collect();
        let kind = [
            AdversaryKind::Silent,
            AdversaryKind::AnnounceThenSilent,
            AdversaryKind::PartialAnnounce,
            AdversaryKind::SplitVote,
        ][rng.gen_range(0usize..4)];
        let report = Simulation::scenario()
            .correct(correct)
            .byzantine(f)
            .seed(seed)
            .adversary(kind)
            .consensus(&inputs)
            .run()
            .expect("terminates");
        let consensus = report.consensus.as_ref().expect("consensus section");
        assert!(consensus.agreement, "case {case}: agreement under {kind:?}");
        assert!(consensus.validity, "case {case}: validity under {kind:?}");
    }
}

#[test]
fn approx_outputs_contained_and_contracting() {
    let mut rng = seeded_rng(0xA44);
    for case in 0..12 {
        let f = rng.gen_range(1usize..4);
        let extra = rng.gen_range(0usize..4);
        let seed = rng.gen_range(0u64..1_000);
        let spread = rng.gen_range(1.0f64..1_000.0);
        let correct = 2 * f + 1 + extra;
        let inputs: Vec<f64> = (0..correct)
            .map(|i| i as f64 * spread / correct as f64)
            .collect();
        let report = Simulation::scenario()
            .correct(correct)
            .byzantine(f)
            .seed(seed)
            .approx(&inputs)
            .run()
            .expect("completes");
        let approx = report.approx.as_ref().expect("approx section");
        assert!(
            approx.outputs_in_range,
            "case {case}: outputs left the input range"
        );
        assert!(approx.contraction < 1.0, "case {case}: no contraction");
    }
}

#[test]
fn reliable_broadcast_accept_sets_agree() {
    let mut rng = seeded_rng(0xB0B);
    for case in 0..12 {
        let f = rng.gen_range(1usize..4);
        let extra = rng.gen_range(0usize..4);
        let seed = rng.gen_range(0u64..1_000);
        let equivocate: bool = rng.gen();
        let correct = 2 * f + 1 + extra;
        let scenario = Simulation::scenario()
            .correct(correct)
            .byzantine(f)
            .seed(seed);
        let report = if equivocate {
            scenario
                .broadcast_equivocating(1, 2)
                .rounds(14)
                .run()
                .expect("completes")
        } else {
            scenario.broadcast(7).rounds(14).run().expect("completes")
        };
        let broadcast = report.broadcast.as_ref().expect("broadcast section");
        assert!(broadcast.consistent, "case {case}: accept sets diverged");
        if !equivocate {
            assert!(
                broadcast.accepted.iter().all(|per_node| per_node
                    .values
                    .iter()
                    .map(|a| a.0)
                    .eq([7u64])),
                "case {case}: the correct sender's value must be accepted everywhere"
            );
        }
    }
}
