//! The recovery mutation check: the crash-recovery oracles are only
//! trustworthy if they *fire* when replay is actually broken. This suite
//! injects a deliberate bug into the write-ahead replay path through the
//! runtime hook `uba_simnet::wal::mutation` (skipping the re-step of every
//! logged round whose sent-record is non-empty, so a restarted node's audited
//! sends no longer match its durable log — cross-restart equivocation), then
//! asserts the crash-plan axis of the fuzz grid detects it, shrinks the
//! counterexample to at most 8 nodes, and that the serialized reproducer flips
//! back to passing once the bug is removed.
//!
//! The mutation toggle is process-global, so this file holds exactly one test —
//! integration-test binaries run in their own processes, which keeps the
//! mutation from leaking into the rest of the suite.

use uba_bench::fuzz::{
    case_failures, default_crash_plans, fuzz_grid, property_id, run_case, Counterexample,
    ProtocolId,
};
use uba_simnet::sweep::ScenarioGrid;
use uba_simnet::wal::mutation;

#[test]
fn fuzzer_finds_the_injected_replay_bug_and_shrinks_it_to_eight_nodes_or_fewer() {
    mutation::set_skip_sent_replay(true);

    // A sliver of the default grid: one family, one size, the crash-plan axis
    // (crash-free point + one clean crash/restart cycle) and two seeds. The
    // crash-free points stay green — the bug only bites when a restart replays
    // a log — so the counterexamples isolate the crash-bearing cases.
    let grid = ScenarioGrid::new()
        .protocols(vec![ProtocolId::Consensus])
        .sizes(vec![(7, 2)])
        .crash_plans(default_crash_plans())
        .trials(2)
        .base_seed(0x0DD_CA5E);
    let outcome = fuzz_grid(&grid, 2, 1);
    assert!(
        !outcome.passed(),
        "the injected replay-skipping bug must be detected"
    );
    let counterexample = &outcome.counterexamples[0];
    assert!(
        counterexample
            .failures
            .iter()
            .any(|failure| property_id(failure) == "recovery/equivocation"),
        "the cross-restart equivocation oracle must be the property that fired: {:?}",
        counterexample.failures
    );

    // The shrinker must reach a small reproducer while keeping the crash/restart
    // cycle intact (cycles shrink as a unit, victims rebind across population
    // moves — dropping either half alone would be an engine error, not a bug).
    assert!(
        counterexample.shrunk.spec.n() <= 8,
        "shrunk to n = {} (correct = {}, byzantine = {}), expected ≤ 8",
        counterexample.shrunk.spec.n(),
        counterexample.shrunk.spec.correct,
        counterexample.shrunk.spec.byzantine
    );
    assert!(counterexample.shrink_steps > 0, "shrinking must make moves");
    assert!(
        counterexample.shrunk.spec.churn.has_crash_events(),
        "the reproducer must keep a crash/restart cycle — without one the bug is unreachable"
    );

    // The counterexample survives a serde round trip and still reproduces — the
    // `fuzz --replay` contract.
    let json = serde_json::to_string(counterexample).expect("counterexamples serialise");
    let replayed: Counterexample =
        serde_json::from_str(&json).expect("counterexamples deserialise");
    assert_eq!(&replayed, counterexample);
    let report = run_case(&replayed.shrunk);
    assert!(
        !case_failures(&replayed.shrunk, &report).is_empty(),
        "the replayed reproducer must still fail while the bug is present"
    );

    // Remove the bug: the same reproducer must pass every property again.
    mutation::set_skip_sent_replay(false);
    let healthy = run_case(&replayed.shrunk);
    assert!(
        case_failures(&replayed.shrunk, &healthy).is_empty(),
        "with the mutation disabled the reproducer must pass"
    );
}
