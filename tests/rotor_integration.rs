//! Integration tests for the rotor-coordinator (Algorithm 2, Theorem 2), verified
//! end-to-end through the `uba-checker` oracle: the protocol runs on the synchronous
//! engine against a range of adversaries and the oracle checks termination, the
//! `O(n)` round bound and the existence of a good round.

use std::collections::BTreeSet;

use uba_checker::rotor::{check_rotor, RotorCheck, RotorObservation};
use uba_core::adversaries::{AnnounceThenSilent, CandidatePoisoner, PartialAnnounce};
use uba_core::rotor::{RotorCoordinator, RotorMessage};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::faults::{RecordingAdversary, RoundWindow};
use uba_simnet::{Adversary, IdSpace, NodeId, Protocol, SyncEngine};

type Msg = RotorMessage<u64>;

/// Runs the standalone rotor with `n_correct` correct nodes, `byzantine` Byzantine
/// identities and the given adversary; returns the engine for inspection after every
/// correct node terminated.
fn run_rotor<A: Adversary<Msg>>(
    n_correct: usize,
    byzantine: usize,
    adversary: A,
    seed: u64,
) -> SyncEngine<RotorCoordinator<u64>, A> {
    let ids = IdSpace::default().generate(n_correct + byzantine, seed);
    let byz: Vec<NodeId> = ids[n_correct..].to_vec();
    let nodes: Vec<RotorCoordinator<u64>> = ids[..n_correct]
        .iter()
        .map(|&id| RotorCoordinator::new(id, id.raw()))
        .collect();
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine
        .run_to_termination(10 * (n_correct + byzantine) as u64 + 20)
        .expect("rotor terminates within O(n) rounds");
    engine
}

fn observe<A: Adversary<Msg>>(
    engine: &SyncEngine<RotorCoordinator<u64>, A>,
) -> (BTreeSet<NodeId>, Vec<RotorObservation<u64>>) {
    let correct: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
    let observations = engine
        .nodes()
        .iter()
        .map(|node| RotorObservation {
            node: Protocol::id(node),
            history: node.state().history().to_vec(),
            terminated: node.state().terminated(),
        })
        .collect();
    (correct, observations)
}

#[test]
fn rotor_satisfies_theorem_2_without_faults() {
    for &n in &[4usize, 7, 13, 25] {
        let engine = run_rotor(n, 0, SilentAdversary, 100 + n as u64);
        let (correct, observations) = observe(&engine);
        check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n,
                expect_termination: true,
            },
        )
        .assert_passed(&format!("fault-free rotor with n = {n}"));
    }
}

#[test]
fn rotor_survives_counted_but_silent_byzantine_nodes() {
    for &f in &[1usize, 2, 3] {
        let n = 3 * f + 1;
        let engine = run_rotor(n - f, f, AnnounceThenSilent, 200 + f as u64);
        let (correct, observations) = observe(&engine);
        check_rotor(
            &correct,
            &observations,
            RotorCheck {
                n,
                expect_termination: true,
            },
        )
        .assert_passed(&format!("announce-then-silent rotor with f = {f}"));
    }
}

#[test]
fn rotor_survives_partial_announcement() {
    // Byzantine identities announce to only half the nodes, so different correct nodes
    // hold different n_v — the situation the candidate-set relay (Lemma 6) handles.
    let engine = run_rotor(7, 2, PartialAnnounce, 77);
    let (correct, observations) = observe(&engine);
    check_rotor(
        &correct,
        &observations,
        RotorCheck {
            n: 9,
            expect_termination: true,
        },
    )
    .assert_passed("partial announcement");
}

#[test]
fn rotor_survives_candidate_set_poisoning() {
    // The adversary vouches for identifiers that never announced themselves; the
    // 2n_v/3 threshold must keep the ghosts out of every correct candidate set, so the
    // poisoning only wastes Byzantine bandwidth. The RecordingAdversary asserts that
    // the attack actually injected traffic.
    let ghosts = vec![NodeId::new(1_000_001), NodeId::new(1_000_002)];
    let adversary = RecordingAdversary::new(CandidatePoisoner::new(ghosts.clone()));
    let engine = run_rotor(7, 2, adversary, 78);
    let (correct, observations) = observe(&engine);
    check_rotor(
        &correct,
        &observations,
        RotorCheck {
            n: 9,
            expect_termination: true,
        },
    )
    .assert_passed("candidate poisoning");
    // No ghost identifier was ever selected as a coordinator by a correct node.
    for obs in &observations {
        assert!(
            obs.history
                .iter()
                .all(|record| !ghosts.contains(&record.coordinator)),
            "a fabricated identifier was selected as coordinator by {}",
            obs.node
        );
    }
    let (_, adversary, _) = engine.into_parts();
    assert!(
        adversary.total_injected() > 0,
        "the poisoner must actually have attacked"
    );
}

#[test]
fn rotor_selects_every_correct_candidate_before_repeating() {
    // With no faults, the selection order is the sorted candidate set; the node
    // terminates right after wrapping around, so it selects each correct node exactly
    // once before the repeat.
    let engine = run_rotor(6, 0, SilentAdversary, 55);
    let correct: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
    for node in engine.nodes() {
        let selected: BTreeSet<NodeId> = node.state().selected().iter().copied().collect();
        assert_eq!(
            selected, correct,
            "every correct node is selected exactly once"
        );
    }
}

#[test]
fn rotor_termination_rounds_grow_linearly_with_n() {
    // Theorem 2: termination in O(n) rounds. Measure the actual network rounds for a
    // range of n and check the growth is (roughly) linear, not quadratic.
    let mut rounds = Vec::new();
    for &n in &[5usize, 10, 20, 40] {
        let engine = run_rotor(n, 0, SilentAdversary, 300 + n as u64);
        rounds.push((n as f64, engine.round() as f64));
    }
    for window in rounds.windows(2) {
        let (n0, r0) = window[0];
        let (n1, r1) = window[1];
        let growth = (r1 / r0) / (n1 / n0);
        assert!(
            growth < 1.6,
            "rounds must scale (sub-)linearly with n: {n0}->{r0} rounds, {n1}->{r1} rounds"
        );
    }
}

#[test]
fn late_attack_window_cannot_poison_after_candidates_are_fixed() {
    // The poisoner only becomes active from round 5 onwards — after every correct node
    // already echoed the genuine candidates. Correctness must be unaffected.
    let adversary = RoundWindow::new(CandidatePoisoner::new(vec![NodeId::new(999_999)]), 5, 50);
    let engine = run_rotor(7, 2, adversary, 91);
    let (correct, observations) = observe(&engine);
    check_rotor(
        &correct,
        &observations,
        RotorCheck {
            n: 9,
            expect_termination: true,
        },
    )
    .assert_passed("late poisoning window");
}
