//! Engine-equivalence suite: the broadcast-aware `run_round` rewrite (compact
//! traffic, hashed dedup, O(1) membership, buffer reuse, opt-in parallel
//! stepping) must be *behaviour-preserving*. Three layers of evidence:
//!
//! 1. re-running the recorded `BENCH_baseline.json` grid — every core protocol
//!    family and the head-to-head baselines under their scripted adversaries —
//!    reproduces the recorded `RunReport`s (rounds, message counts, deliveries,
//!    per-round metrics, node outputs and oracle verdicts) exactly;
//! 2. the two protocols the baseline grid does not cover (total ordering and the
//!    Dolev et al. approximate-agreement baseline) match counts measured on the
//!    pre-rewrite engine (commit 229ef56), pinned here as constants;
//! 3. the opt-in parallel node-step path produces reports identical to the
//!    serial path for every protocol family.

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_bench::baseline::baseline_file;
use uba_bench::scaling::load_baseline;
use uba_core::sim::{
    AdversaryKind, ParallelConsensusFactory, RunReport, ScenarioExt, Simulation, TotalOrderPlan,
};
use uba_simnet::IdSpace;

#[test]
fn baseline_grid_reports_are_reproduced_exactly() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_baseline.json");
    let recorded = load_baseline(&path).expect("BENCH_baseline.json is readable");
    let current = baseline_file();
    assert_eq!(
        recorded.summary, current.summary,
        "aggregate rows (rounds, messages, bytes, verdict status) must not move"
    );
    assert_eq!(recorded.reports.len(), current.reports.len());
    for (recorded_report, current_report) in recorded.reports.iter().zip(&current.reports) {
        assert_eq!(
            recorded_report,
            current_report,
            "full RunReport drifted for {}/{} (n = {})",
            recorded_report.protocol,
            recorded_report.adversary,
            recorded_report.scenario.n(),
        );
    }
}

/// `(rounds, correct messages, byzantine messages, deliveries)` measured on the
/// pre-rewrite engine for the scenarios below.
///
/// The total-order pin was re-measured when the family's `Worst` adversary gained
/// the split-brain schedule (it used to degrade to silent, hence the old zero
/// Byzantine-message count): same engine, the adversary now actually fights —
/// its `present` spam draws `ack` replies and its equivocated instance votes add
/// both Byzantine traffic and correct-side responses.
const TOTAL_ORDER_PRE_CHANGE: (u64, u64, u64, u64) = (20, 25_308, 1_326, 20_814);
const DOLEV_APPROX_PRE_CHANGE: (u64, u64, u64, u64) = (2, 80, 0, 64);

fn counts(report: &RunReport) -> (u64, u64, u64, u64) {
    (
        report.rounds,
        report.messages.correct,
        report.messages.byzantine,
        report.messages.deliveries,
    )
}

fn total_order_report(parallel: bool) -> RunReport {
    let plan = TotalOrderPlan::rounds(20)
        .event(2, 0, 11)
        .event(3, 1, 22)
        .leave(10, 2);
    let mut harness = Simulation::scenario()
        .correct(7)
        .byzantine(2)
        .seed(0xE0)
        .max_rounds(100)
        .adversary(AdversaryKind::Worst)
        .total_order(plan);
    if parallel {
        harness = harness.parallel_stepping();
        harness.engine_mut().set_parallel_node_threshold(1);
    }
    harness.run().expect("total-order run completes")
}

fn dolev_approx_report(parallel: bool) -> RunReport {
    let inputs: Vec<f64> = (0..8).map(|i| i as f64 * 3.0).collect();
    let mut harness = Simulation::scenario()
        .correct(8)
        .byzantine(2)
        .ids(IdSpace::Consecutive)
        .seed(0)
        .build(DolevApproxFactory::new(inputs));
    if parallel {
        harness = harness.parallel_stepping();
        harness.engine_mut().set_parallel_node_threshold(1);
    }
    harness.run().expect("dolev-approx run completes")
}

#[test]
fn uncovered_protocols_match_pre_rewrite_counts() {
    let total_order = total_order_report(false);
    assert!(total_order.completed());
    assert_eq!(counts(&total_order), TOTAL_ORDER_PRE_CHANGE);

    let dolev = dolev_approx_report(false);
    assert!(dolev.completed());
    assert_eq!(counts(&dolev), DOLEV_APPROX_PRE_CHANGE);
}

#[test]
fn parallel_stepping_reports_are_identical_for_every_protocol_family() {
    // Core protocols, driven through the same builders the experiments use. Each
    // closure builds the harness twice — serial and forced-parallel — and the
    // resulting reports must be equal in every field.
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let approx_inputs: Vec<f64> = (0..7).map(|i| i as f64 * 5.0).collect();
    let pairs: Vec<(u64, u64)> = (0..4).map(|i| (i, 50 + i)).collect();

    type Build = Box<dyn Fn(bool) -> RunReport>;
    let scenarios: Vec<(&str, Build)> = vec![
        (
            "consensus",
            Box::new({
                let inputs = inputs.clone();
                move |parallel| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(42)
                        .adversary(AdversaryKind::SplitVote)
                        .consensus(&inputs);
                    if parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "reliable-broadcast",
            Box::new(|parallel| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(43)
                    .adversary(AdversaryKind::PartialAnnounce)
                    .broadcast(42)
                    .rounds(12);
                if parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "rotor",
            Box::new(|parallel| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(44)
                    .adversary(AdversaryKind::AnnounceThenSilent)
                    .rotor();
                if parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "approx",
            Box::new({
                let approx_inputs = approx_inputs.clone();
                move |parallel| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(45)
                        .adversary(AdversaryKind::Worst)
                        .approx(&approx_inputs);
                    if parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "parallel-consensus",
            Box::new({
                let pairs = pairs.clone();
                move |parallel| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(46)
                        .max_rounds(500)
                        .adversary(AdversaryKind::Worst)
                        .build(ParallelConsensusFactory::new(pairs.clone()));
                    if parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        ("total-order", Box::new(total_order_report)),
        // Known-(n, f) baselines.
        (
            "phase-king",
            Box::new({
                let inputs = inputs.clone();
                move |parallel| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .ids(IdSpace::Consecutive)
                        .seed(0)
                        .max_rounds(300)
                        .build(PhaseKingFactory::new(inputs.clone()));
                    if parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "srikanth-toueg",
            Box::new(|parallel| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .build(StBroadcastFactory::new(42))
                    .rounds(8);
                if parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "known-rotor",
            Box::new(|parallel| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .max_rounds(100)
                    .build(KnownRotorFactory);
                if parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        ("dolev-approx", Box::new(dolev_approx_report)),
    ];

    for (name, build) in &scenarios {
        let serial = build(false);
        let parallel = build(true);
        assert_eq!(
            serial, parallel,
            "{name}: parallel stepping changed the report"
        );
        assert!(serial.completed(), "{name}: serial run hit its round cap");
    }
}
