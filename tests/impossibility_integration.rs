//! Integration tests for Section IX: consensus without knowledge of `n` and `f` is
//! impossible (even with probabilistic termination) in asynchronous and
//! semi-synchronous systems. The tests reproduce the constructive partition arguments
//! of Lemmas 14 and 15 on the delay engine and confirm that the synchronous control
//! arm never disagrees.

use uba_core::impossibility::{disagreement_rate, run_partition_experiment, TimingModel};

#[test]
fn synchronous_control_never_disagrees() {
    for &(a, b) in &[(2usize, 2usize), (3, 5), (8, 8)] {
        for seed in 0..5 {
            let outcome = run_partition_experiment(a, b, TimingModel::Synchronous, seed)
                .expect("synchronous run completes");
            assert!(
                outcome.agreement,
                "synchronous execution disagreed for |A| = {a}, |B| = {b}, seed {seed}"
            );
        }
    }
}

#[test]
fn asynchronous_partition_forces_disagreement() {
    // Lemma 14: with cross-partition messages never delivered, each side only ever
    // hears its own input and decides it — a guaranteed disagreement in every trial.
    for &(a, b) in &[(2usize, 2usize), (3, 4), (6, 6)] {
        let outcome = run_partition_experiment(a, b, TimingModel::Asynchronous, 7)
            .expect("asynchronous run completes");
        assert!(
            !outcome.agreement,
            "partitioned async execution must disagree"
        );
        // Each side decided its own input.
        let ones = outcome.decisions.iter().filter(|(_, v)| *v == 1).count();
        let zeros = outcome.decisions.iter().filter(|(_, v)| *v == 0).count();
        assert_eq!((ones, zeros), (a, b));
    }
}

#[test]
fn semi_synchronous_partition_disagrees_when_the_bound_is_large_enough() {
    // Lemma 15: the delay bound Δ exists but exceeds the time both sides need to
    // decide, so the execution is indistinguishable from the two isolated systems.
    let outcome =
        run_partition_experiment(4, 4, TimingModel::SemiSynchronous { cross_delay: 500 }, 11)
            .expect("semi-synchronous run completes");
    assert!(
        !outcome.agreement,
        "large-Δ semi-synchronous execution must disagree"
    );
    assert!(
        outcome.ticks < 500,
        "both sides must decide before the cross delay elapses"
    );
}

#[test]
fn small_cross_delay_behaves_like_the_synchronous_control() {
    // If Δ is so small that cross-partition messages arrive before anyone decides, the
    // execution is effectively synchronous and must agree.
    let outcome =
        run_partition_experiment(3, 3, TimingModel::SemiSynchronous { cross_delay: 1 }, 13)
            .expect("run completes");
    assert!(outcome.agreement, "tiny cross delays cannot be exploited");
}

#[test]
fn disagreement_rates_separate_the_three_timing_models() {
    let trials = 6;
    let sync = disagreement_rate(3, 3, TimingModel::Synchronous, trials, 1);
    let semi = disagreement_rate(
        3,
        3,
        TimingModel::SemiSynchronous { cross_delay: 400 },
        trials,
        1,
    );
    let asynchronous = disagreement_rate(3, 3, TimingModel::Asynchronous, trials, 1);
    assert_eq!(sync, 0.0, "synchrony guarantees agreement");
    assert_eq!(
        semi, 1.0,
        "the Lemma 15 construction disagrees in every trial"
    );
    assert_eq!(
        asynchronous, 1.0,
        "the Lemma 14 construction disagrees in every trial"
    );
}

#[test]
fn unbalanced_partitions_still_disagree() {
    // The argument does not depend on the partition sizes being equal — a single
    // isolated node already decides its own input.
    let outcome =
        run_partition_experiment(1, 9, TimingModel::Asynchronous, 23).expect("run completes");
    assert!(!outcome.agreement);
    assert_eq!(outcome.decisions.iter().filter(|(_, v)| *v == 1).count(), 1);
}
