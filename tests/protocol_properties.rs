//! Randomised adversarial tests: the paper's guarantees must hold for *every*
//! Byzantine behaviour, so beyond the scripted worst cases this suite throws
//! randomised (but seed-reproducible) adversaries at the protocols — random noise,
//! randomly staggered crashes, random attack windows and random collusions — and
//! verifies the outcomes with the `uba-checker` oracles. Cases are drawn from the
//! workspace's deterministic RNG (proptest is unavailable offline).

use rand::Rng;

use uba_checker::approx::check_approx_real;
use uba_checker::consensus::{check_consensus, ConsensusCheck, ConsensusObservation};
use uba_checker::parallel::{check_parallel_consensus, ParallelObservation};
use uba_core::adversaries::SplitVote;
use uba_core::approx::ApproxAgreement;
use uba_core::attackers::MinorityBooster;
use uba_core::consensus::{Consensus, ConsensusMessage};
use uba_core::early_consensus::ParallelMessage;
use uba_core::parallel_consensus::ParallelConsensus;
use uba_core::Real;
use uba_simnet::faults::{Collusion, NoiseAdversary, RoundWindow, StaggeredCrash};
use uba_simnet::rng::{seeded_rng, SimRng};
use uba_simnet::{Adversary, IdSpace, NodeId, Protocol, SyncEngine};

/// A noise adversary producing random but well-formed consensus messages.
fn consensus_noise(seed: u64, rate: f64) -> impl Adversary<ConsensusMessage<u64>> {
    NoiseAdversary::new(seed, rate, |rng: &mut SimRng, to: NodeId| {
        match rng.gen_range(0u8..6) {
            0 => ConsensusMessage::Init,
            1 => ConsensusMessage::Echo(to),
            2 => ConsensusMessage::Input(rng.gen_range(0u64..2)),
            3 => ConsensusMessage::Prefer(rng.gen_range(0u64..2)),
            4 => ConsensusMessage::StrongPrefer(rng.gen_range(0u64..2)),
            _ => ConsensusMessage::Opinion(rng.gen_range(0u64..2)),
        }
    })
}

/// Runs consensus with the given adversary and checks agreement/validity/termination.
fn run_and_check_consensus<A: Adversary<ConsensusMessage<u64>>>(
    correct: usize,
    byzantine: usize,
    seed: u64,
    inputs: &[u64],
    adversary: A,
) {
    let ids = IdSpace::default().generate(correct + byzantine, seed);
    let byz: Vec<NodeId> = ids[correct..].to_vec();
    let nodes: Vec<Consensus<u64>> = ids[..correct]
        .iter()
        .zip(inputs)
        .map(|(&id, &input)| Consensus::new(id, input))
        .collect();
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine
        .run_to_termination(80 * (correct + byzantine) as u64 + 200)
        .expect("consensus terminates under every admissible adversary");
    let observations: Vec<ConsensusObservation<u64>> = engine
        .nodes()
        .iter()
        .map(|node| ConsensusObservation {
            node: Protocol::id(node),
            input: *node.input(),
            decision: node.decision().cloned(),
        })
        .collect();
    check_consensus(&observations, ConsensusCheck::default())
        .assert_passed("randomised adversarial consensus");
}

#[test]
fn consensus_survives_random_noise() {
    let mut rng = seeded_rng(0x901);
    for _ in 0..10 {
        let f = rng.gen_range(1usize..3);
        let seed = rng.gen_range(0u64..10_000);
        let rate = rng.gen_range(0.05f64..1.0);
        let input_bits = rng.gen_range(0u32..64);
        let correct = 2 * f + 1;
        let inputs: Vec<u64> = (0..correct)
            .map(|i| ((input_bits >> i) & 1) as u64)
            .collect();
        run_and_check_consensus(correct, f, seed, &inputs, consensus_noise(seed, rate));
    }
}

#[test]
fn consensus_survives_random_collusion_and_crashes() {
    let mut rng = seeded_rng(0x902);
    for _ in 0..10 {
        let f = rng.gen_range(1usize..3);
        let seed = rng.gen_range(0u64..10_000);
        let crash_lo = rng.gen_range(3u64..10);
        let crash_span = rng.gen_range(1u64..30);
        let correct = 2 * f + 1;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let colluding = Collusion::new(
            SplitVote::new(0u64, 1u64),
            f / 2 + 1,
            consensus_noise(seed ^ 0xFACE, 0.4),
        );
        let adversary = StaggeredCrash::new(colluding, seed, crash_lo, crash_lo + crash_span);
        run_and_check_consensus(correct, f, seed, &inputs, adversary);
    }
}

#[test]
fn consensus_survives_windowed_adaptive_attacks() {
    let mut rng = seeded_rng(0x903);
    for _ in 0..10 {
        let f = rng.gen_range(1usize..3);
        let seed = rng.gen_range(0u64..10_000);
        let from = rng.gen_range(1u64..12);
        let length = rng.gen_range(1u64..25);
        let correct = 2 * f + 1;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let adversary = RoundWindow::new(MinorityBooster::new(0u64, 1u64), from, from + length);
        run_and_check_consensus(correct, f, seed, &inputs, adversary);
    }
}

#[test]
fn approx_agreement_survives_random_values() {
    let mut rng = seeded_rng(0x904);
    for _ in 0..10 {
        let f = rng.gen_range(1usize..4);
        let extra = rng.gen_range(0usize..4);
        let seed = rng.gen_range(0u64..10_000);
        let spread = rng.gen_range(1.0f64..1_000.0);
        let correct = 2 * f + 1 + extra;
        let ids = IdSpace::default().generate(correct + f, seed);
        let byz: Vec<NodeId> = ids[correct..].to_vec();
        let inputs: Vec<Real> = (0..correct)
            .map(|i| Real::from_f64(i as f64 * spread / correct as f64))
            .collect();
        let nodes: Vec<ApproxAgreement> = ids[..correct]
            .iter()
            .zip(&inputs)
            .map(|(&id, &input)| ApproxAgreement::new(id, input))
            .collect();
        let adversary = NoiseAdversary::new(seed, 0.8, |rng: &mut SimRng, _to| {
            Real::from_f64(rng.gen_range(-1e7..1e7))
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine.run_to_output(4).expect("approx produces outputs");
        let outputs: Vec<Real> = engine
            .outputs()
            .into_iter()
            .map(|(_, output)| output.unwrap())
            .collect();
        check_approx_real(&inputs, &outputs).assert_passed("random-value approx agreement");
    }
}

#[test]
fn parallel_consensus_survives_random_instance_noise() {
    let mut rng = seeded_rng(0x905);
    for _ in 0..10 {
        let f = rng.gen_range(1usize..3);
        let seed = rng.gen_range(0u64..10_000);
        let shared_pairs = rng.gen_range(1usize..5);
        let correct = 2 * f + 1;
        let pairs: Vec<(u64, u64)> = (0..shared_pairs as u64).map(|i| (i, 100 + i)).collect();
        let ids = IdSpace::default().generate(correct + f, seed);
        let byz: Vec<NodeId> = ids[correct..].to_vec();
        let nodes: Vec<ParallelConsensus<u64>> = ids[..correct]
            .iter()
            .map(|&id| ParallelConsensus::new(id, pairs.clone()))
            .collect();
        let adversary = NoiseAdversary::new(seed, 0.5, |rng: &mut SimRng, to: NodeId| {
            let ghost = 900 + rng.gen_range(0u64..4);
            match rng.gen_range(0u8..5) {
                0 => ParallelMessage::Init,
                1 => ParallelMessage::Echo(to),
                2 => ParallelMessage::Input(ghost, rng.gen_range(0u64..9)),
                3 => ParallelMessage::Prefer(ghost, Some(rng.gen_range(0u64..9))),
                _ => ParallelMessage::StrongPrefer(ghost, None),
            }
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine.run_to_termination(600).expect("no engine error");
        let observations: Vec<ParallelObservation<u64>> = engine
            .nodes()
            .iter()
            .map(|node| ParallelObservation {
                node: Protocol::id(node),
                inputs: node.inputs().clone(),
                decision: node.decision().cloned(),
            })
            .collect();
        check_parallel_consensus(&observations).assert_passed("random instance noise");
        // All the genuinely shared pairs must be in every output.
        let output = &observations[0].decision.as_ref().unwrap().pairs;
        for (id, value) in &pairs {
            assert_eq!(output.get(id), Some(value));
        }
    }
}
