//! Integration tests for the dynamic-network algorithms (Section XI): total ordering
//! under churn and approximate agreement with joining nodes.

use uba_core::total_order::chains_agree;
use uba_core::{IteratedApproxAgreement, OrderedEvent, Real, TotalOrderNode};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{ChurnEvent, ChurnSchedule, IdSpace, NodeId, Protocol, SyncEngine};

fn assert_prefix(chains: &[Vec<OrderedEvent<u64>>]) {
    assert!(
        chains_agree(chains),
        "chain-prefix violated on the overlapping rounds"
    );
}

#[test]
fn total_order_with_join_and_leave_preserves_chain_prefix() {
    let founder_ids = IdSpace::default().generate(5, 17);
    let nodes: Vec<TotalOrderNode<u64>> = founder_ids
        .iter()
        .map(|&id| TotalOrderNode::founding(id))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    let joiner = NodeId::new(424_242);

    for round in 0..90u64 {
        if round == 15 {
            engine.add_node(TotalOrderNode::joining(joiner)).unwrap();
        }
        if round == 35 {
            let leaver = founder_ids[4];
            if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == leaver) {
                node.announce_leave();
            }
        }
        let submitter = founder_ids[(round as usize) % 4];
        if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == submitter) {
            node.submit_event(round);
        }
        engine.run_rounds(1).unwrap();
    }

    // Chains of the nodes that stayed (including the joiner).
    let chains: Vec<Vec<OrderedEvent<u64>>> = engine
        .nodes()
        .iter()
        .filter(|n| n.id() != founder_ids[4])
        .map(|n| n.chain().to_vec())
        .collect();
    assert_prefix(&chains);
    assert!(
        chains.iter().any(|c| !c.is_empty()),
        "events were finalised"
    );
    // Chain growth: the founders' chain keeps up with the submitted events (allowing
    // for the finality lag).
    let reference = chains.iter().map(|c| c.len()).max().unwrap();
    assert!(
        reference >= 40,
        "expected at least 40 finalised events, got {reference}"
    );
    // The joiner was integrated and learned the membership.
    let joiner_node = engine.node(joiner).unwrap();
    assert!(joiner_node.is_joined());
    assert!(joiner_node.members().len() >= 4);
}

#[test]
fn total_order_events_are_never_duplicated_or_reordered() {
    let founder_ids = IdSpace::default().generate(4, 19);
    let nodes: Vec<TotalOrderNode<u64>> = founder_ids
        .iter()
        .map(|&id| TotalOrderNode::founding(id))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    for round in 0..60u64 {
        let submitter = founder_ids[(round as usize) % 4];
        if let Some(node) = engine.nodes_mut().iter_mut().find(|n| n.id() == submitter) {
            node.submit_event(round);
        }
        engine.run_rounds(1).unwrap();
    }
    let chain = engine.nodes()[0].chain();
    let events: Vec<u64> = chain.iter().map(|e| e.event).collect();
    let mut deduped = events.clone();
    deduped.dedup();
    assert_eq!(events, deduped, "an event appears twice in the chain");
    // Ordering follows the round in which events were witnessed.
    assert!(chain.windows(2).all(|w| w[0].round <= w[1].round));
}

#[test]
fn churn_schedule_describes_admissible_membership_changes() {
    // The schedule helper enforces the paper's "n > 3f holds when the round starts".
    let schedule = ChurnSchedule::empty()
        .with(5, ChurnEvent::JoinCorrect(NodeId::new(100)))
        .with(9, ChurnEvent::JoinByzantine(NodeId::new(200)))
        .with(12, ChurnEvent::LeaveCorrect(NodeId::new(100)));
    assert_eq!(schedule.first_resiliency_violation(7, 1), None);
    // Starting from a barely-resilient system, adding a Byzantine node breaks it.
    assert_eq!(schedule.first_resiliency_violation(3, 1), Some(9));
}

#[test]
fn approximate_agreement_keeps_contracting_in_a_dynamic_setting() {
    // Section XI: Algorithm 4 keeps working when values are injected between rounds;
    // the range may temporarily grow when a joiner brings an outlier but contracts
    // again afterwards.
    let ids = IdSpace::default().generate(9, 23);
    let iterations = 10u64;
    let nodes: Vec<IteratedApproxAgreement> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| IteratedApproxAgreement::new(id, Real::from_int(i as i64 * 8), iterations))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_rounds(4).unwrap();
    // A "new" participant effectively injects a fresh value into one existing node.
    engine.nodes_mut()[0].inject_value(Real::from_int(100));
    engine.run_to_termination(iterations + 5).unwrap();

    let finals: Vec<f64> = engine
        .outputs()
        .into_iter()
        .map(|(_, o)| o.unwrap().to_f64())
        .collect();
    let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 8.0,
        "values must re-converge after the injection, spread = {spread}"
    );
}
