//! The mutation check: a fuzzer is only trustworthy if it *fires* when the
//! protocol is actually broken. This suite injects a deliberate bug into reliable
//! broadcast through the runtime hook `uba_core::reliable_broadcast::mutation`
//! (skipping the round-2 echo starves the `2n_v/3` acceptance threshold, breaking
//! Theorem 1's correctness for every correct sender), then asserts the fuzz
//! harness detects it, shrinks the counterexample to at most 6 nodes, and that the
//! serialized reproducer flips back to passing once the bug is removed.
//!
//! The mutation toggle is process-global, so this file holds exactly one test —
//! integration-test binaries run in their own processes, which keeps the mutation
//! from leaking into the rest of the suite.

use uba_bench::fuzz::{case_failures, fuzz_grid, run_case, Counterexample, ProtocolId};
use uba_core::reliable_broadcast::mutation;
use uba_core::sim::{AdversaryKind, AttackPlan};
use uba_simnet::sweep::ScenarioGrid;

#[test]
fn fuzzer_finds_the_injected_echo_bug_and_shrinks_it_to_six_nodes_or_fewer() {
    mutation::set_skip_echo_round(true);

    // A sliver of the default grid: the broadcast family under two plans and two
    // seeds. The harness itself decides which cases fail.
    let grid = ScenarioGrid::new()
        .protocols(vec![ProtocolId::ReliableBroadcast])
        .sizes(vec![(7, 2)])
        .plans(vec![
            AttackPlan::preset(AdversaryKind::Silent),
            AttackPlan::preset(AdversaryKind::AnnounceThenSilent),
        ])
        .trials(2)
        .base_seed(0xBAD_ECC0);
    let outcome = fuzz_grid(&grid, 2, 1);
    assert!(
        !outcome.passed(),
        "the injected echo-skipping bug must be detected"
    );
    let counterexample = &outcome.counterexamples[0];
    assert!(
        counterexample
            .failures
            .iter()
            .any(|failure| failure.contains("reliable-broadcast")),
        "the broadcast oracle must be the property that fired: {:?}",
        counterexample.failures
    );

    // The shrinker must reach a small reproducer (the bug is size-independent, so
    // a greedy minimiser gets to the floor).
    assert!(
        counterexample.shrunk.spec.n() <= 6,
        "shrunk to n = {} (correct = {}, byzantine = {}), expected ≤ 6",
        counterexample.shrunk.spec.n(),
        counterexample.shrunk.spec.correct,
        counterexample.shrunk.spec.byzantine
    );
    assert!(counterexample.shrink_steps > 0, "shrinking must make moves");

    // The counterexample survives a serde round trip and still reproduces — the
    // `fuzz --replay` contract.
    let json = serde_json::to_string(counterexample).expect("counterexamples serialise");
    let replayed: Counterexample =
        serde_json::from_str(&json).expect("counterexamples deserialise");
    assert_eq!(&replayed, counterexample);
    let report = run_case(&replayed.shrunk);
    assert!(
        !case_failures(&replayed.shrunk, &report).is_empty(),
        "the replayed reproducer must still fail while the bug is present"
    );

    // Remove the bug: the same reproducer must pass every property again.
    mutation::set_skip_echo_round(false);
    let healthy = run_case(&replayed.shrunk);
    assert!(
        case_failures(&replayed.shrunk, &healthy).is_empty(),
        "with the mutation disabled the reproducer must pass"
    );
}
