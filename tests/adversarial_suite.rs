//! Adversarial integration suite: every algorithm against every applicable Byzantine
//! strategy, at the resiliency boundary n = 3f + 1.

use std::collections::BTreeSet;

use uba_core::adversaries::{
    AnnounceThenSilent, CandidatePoisoner, EquivocatingSource, GhostPairInjector, SplitVote,
};
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_core::{Consensus, ParallelConsensus, ReliableBroadcast, RotorCoordinator};
use uba_simnet::adversary::CrashAdversary;
use uba_simnet::{IdSpace, NodeId, SyncEngine};

#[test]
fn consensus_survives_a_crash_after_participation() {
    // Byzantine nodes behave like split-voters for a while and then crash mid-phase.
    let ids = IdSpace::default().generate(9, 41);
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let nodes: Vec<Consensus<u64>> = ids[..7]
        .iter()
        .enumerate()
        .map(|(i, &id)| Consensus::new(id, (i % 2) as u64))
        .collect();
    let adversary = CrashAdversary::new(SplitVote::new(0u64, 1u64), 9);
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_to_termination(400).unwrap();
    let decisions: Vec<u64> = engine
        .outputs()
        .into_iter()
        .map(|(_, d)| d.unwrap().value)
        .collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn reliable_broadcast_under_equivocation_plus_extra_byzantine_echoers() {
    // The designated sender equivocates AND two more Byzantine nodes amplify one of
    // the two values towards half of the network.
    let ids = IdSpace::default().generate(10, 43);
    let correct: Vec<NodeId> = ids[..7].to_vec();
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let source = byz[0];
    let nodes: Vec<ReliableBroadcast<u64>> = correct
        .iter()
        .map(|&id| ReliableBroadcast::receiver(id, source))
        .collect();
    // Reuse the library equivocator for the source; the other Byzantine identities
    // stay silent (they are still counted against the thresholds by their presence in
    // the byzantine id list, without ever being seen — the hardest case for n_v).
    let adversary = EquivocatingSource::new(source, 111u64, 222u64);
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_rounds(25).unwrap();
    let accept_sets: Vec<BTreeSet<u64>> = engine
        .nodes()
        .iter()
        .map(|n| n.accepted().iter().map(|a| a.message).collect())
        .collect();
    assert!(
        accept_sets.iter().all(|s| s == &accept_sets[0]),
        "{accept_sets:?}"
    );
}

#[test]
fn rotor_excludes_fabricated_candidates_and_still_finds_a_good_round() {
    let ids = IdSpace::default().generate(13, 47);
    let correct: Vec<NodeId> = ids[..9].to_vec();
    let byz: Vec<NodeId> = ids[9..].to_vec();
    let ghosts = vec![NodeId::new(1), NodeId::new(3)];
    let nodes: Vec<RotorCoordinator<u64>> = correct
        .iter()
        .map(|&id| RotorCoordinator::new(id, id.raw()))
        .collect();
    let adversary = CandidatePoisoner::new(ghosts.clone());
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_to_termination(300).unwrap();

    for node in engine.nodes() {
        for ghost in &ghosts {
            assert!(
                !node.state().candidates().contains(ghost),
                "a fabricated identifier entered a candidate set"
            );
        }
    }
    // Good round: some loop round in which everyone selected the same correct node.
    let correct_set: BTreeSet<NodeId> = correct.iter().copied().collect();
    let histories: Vec<_> = engine.nodes().iter().map(|n| n.state().history()).collect();
    let rounds = histories.iter().map(|h| h.len()).min().unwrap();
    assert!((0..rounds).any(|r| {
        let selections: BTreeSet<NodeId> = histories.iter().map(|h| h[r].coordinator).collect();
        selections.len() == 1 && correct_set.contains(selections.iter().next().unwrap())
    }));
}

#[test]
fn parallel_consensus_rejects_ghost_pairs_even_with_many_real_instances() {
    let correct = 7usize;
    let ids = IdSpace::default().generate(correct + 2, 53);
    let real_pairs: Vec<(u64, u64)> = (0..8).map(|i| (i, 1000 + i)).collect();
    let nodes: Vec<ParallelConsensus<u64>> = ids[..correct]
        .iter()
        .map(|&id| ParallelConsensus::new(id, real_pairs.clone()))
        .collect();
    let adversary = GhostPairInjector::new(vec![(900_001, 66u64), (900_002, 67u64)]);
    let mut engine = SyncEngine::new(nodes, adversary, ids[correct..].to_vec());
    engine.run_to_termination(500).unwrap();
    let decisions: Vec<_> = engine
        .outputs()
        .into_iter()
        .map(|(_, d)| d.unwrap())
        .collect();
    for decision in &decisions {
        assert_eq!(decision.pairs, decisions[0].pairs);
        for id in decision.pairs.keys() {
            assert!(*id < 900_000, "a ghost pair was output: {id}");
        }
        for (id, value) in &real_pairs {
            assert_eq!(
                decision.pairs.get(id),
                Some(value),
                "a unanimous real pair was dropped"
            );
        }
    }
}

#[test]
fn builder_adversary_matrix_is_consistent_across_seeds() {
    // A quick sweep over seeds (the deterministic analogue of repeated random trials):
    // agreement and validity must hold on every single run.
    for seed in 0..10u64 {
        let inputs: Vec<u64> = (0..7).map(|i| (i as u64 + seed) % 2).collect();
        for kind in [AdversaryKind::AnnounceThenSilent, AdversaryKind::SplitVote] {
            let report = Simulation::scenario()
                .correct(7)
                .byzantine(2)
                .seed(seed)
                .adversary(kind)
                .consensus(&inputs)
                .run()
                .unwrap();
            let section = report.consensus.as_ref().expect("consensus section");
            assert!(
                section.agreement && section.validity,
                "seed {seed}, {kind:?}"
            );
        }
    }
}

#[test]
fn announce_then_silent_inflates_n_v_but_not_forever() {
    // Verify the core mechanism directly: Byzantine nodes are counted in n_v but the
    // substitution rule keeps the protocol live.
    let ids = IdSpace::default().generate(10, 59);
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let nodes: Vec<Consensus<u64>> = ids[..7]
        .iter()
        .enumerate()
        .map(|(i, &id)| Consensus::new(id, (i % 2) as u64))
        .collect();
    let mut engine = SyncEngine::new(nodes, AnnounceThenSilent, byz);
    engine.run_to_termination(400).unwrap();
    for node in engine.nodes() {
        assert_eq!(
            node.n_v(),
            10,
            "the silent Byzantine nodes were counted towards n_v"
        );
        assert!(node.decision().is_some());
    }
}
