//! Conservative-extension pin for the stream driver: a single-instance,
//! batch-size-1 stream run is **byte-identical** (full `RunReport` equality,
//! struct and JSON) to the existing single-shot path, for both covered
//! families — consensus and total order — on the synchronous engine, under
//! parallel stepping, and on the event engine (the `tests/event_equivalence.rs`
//! pattern). The streaming layer must be a pure extension: when there is
//! nothing to pipeline and nothing to batch, it must not change a single byte
//! of what the single-shot driver reports.

use uba_bench::stream::{
    batch_value, run_consensus_stream, run_consensus_stream_with, run_total_order_stream,
    run_total_order_stream_with, total_order_plan, total_order_tail, StreamConfig, StreamOptions,
    CONSENSUS_TAIL,
};
use uba_bench::workload::open_loop_requests;
use uba_checker::attach_verdicts;
use uba_core::sim::{RunReport, ScenarioExt, Simulation, TotalOrderFactory};
use uba_simnet::rng::derive_seed;
use uba_simnet::EngineKind;

/// One request over the whole horizon: instances = 1, rate = 1 over one round.
fn degenerate_config() -> StreamConfig {
    StreamConfig {
        nodes: 5,
        instances: 1,
        spacing: 1,
        rounds: 1,
        rate: 1.0,
        zipf_s: 1.1,
        key_space: 8,
        seed: 0x51EA,
    }
}

/// The engine/step-mode axis the event-equivalence suite pins.
fn modes() -> Vec<(&'static str, Option<EngineKind>, bool)> {
    vec![
        ("sync serial", None, false),
        ("sync parallel", None, true),
        ("event serial", Some(EngineKind::event()), false),
        ("event parallel", Some(EngineKind::event()), true),
    ]
}

fn assert_byte_identical(name: &str, stream: &RunReport, single_shot: &RunReport) {
    assert_eq!(
        stream, single_shot,
        "{name}: the degenerate stream run changed the report"
    );
    let stream_json = serde_json::to_string(stream).expect("reports serialise");
    let single_json = serde_json::to_string(single_shot).expect("reports serialise");
    assert_eq!(
        stream_json, single_json,
        "{name}: serialised reports are not byte-identical"
    );
}

#[test]
fn a_degenerate_consensus_stream_is_byte_identical_to_single_shot() {
    let config = degenerate_config();
    // The single request the open-loop generator produces for this config,
    // re-derived exactly as the stream runner derives it.
    let requests = open_loop_requests(
        config.instances as u64 * config.spacing,
        config.rate,
        config.zipf_s,
        config.key_space,
        derive_seed(config.seed, 0xC5),
    );
    assert_eq!(requests.len(), 1, "the pin needs a batch of exactly one");
    let value = batch_value(&[requests[0].key]);

    for (name, engine, parallel) in modes() {
        let outcome = run_consensus_stream(&config, engine.clone(), parallel);
        assert!(
            outcome.report.stream.is_none(),
            "{name}: the single-shot path must not carry a stream section"
        );
        assert_eq!(outcome.report.protocol, "consensus");
        assert_eq!(outcome.decisions, 1);

        // The existing single-shot path, written the way any user would.
        let mut scenario = Simulation::scenario()
            .correct(config.nodes)
            .byzantine(0)
            .seed(config.seed)
            .max_rounds(1 + CONSENSUS_TAIL);
        if let Some(kind) = engine {
            scenario = scenario.engine(kind);
        }
        let mut harness = scenario.consensus(&vec![value; config.nodes]);
        if parallel {
            harness = harness.parallel_stepping();
        }
        let mut single_shot = harness.run().unwrap();
        attach_verdicts(&mut single_shot);
        assert!(single_shot.completed(), "{name}: single shot hit its cap");
        assert_byte_identical(name, &outcome.report, &single_shot);
    }
}

#[test]
fn a_degenerate_total_order_stream_is_byte_identical_to_single_shot() {
    let config = degenerate_config();
    let (plan, requests) = total_order_plan(&config);
    assert_eq!(requests.len(), 1, "the pin needs a batch of exactly one");
    let total_rounds = config.rounds + total_order_tail(config.nodes);

    for (name, engine, parallel) in modes() {
        let outcome = run_total_order_stream(&config, engine.clone(), parallel);
        assert!(
            outcome.report.stream.is_none(),
            "{name}: the total-order path must not carry a stream section"
        );
        assert_eq!(outcome.report.protocol, "total-order");
        assert_eq!(outcome.decisions, 1, "{name}: one batch finalises");
        assert_eq!(outcome.decided_requests, 1);

        // The existing single-shot path: the same plan handed straight to the
        // factory, driven by `Harness::run` instead of the sampling loop.
        let mut scenario = Simulation::scenario()
            .correct(config.nodes)
            .byzantine(0)
            .seed(config.seed)
            .max_rounds(total_rounds + 1);
        if let Some(kind) = engine {
            scenario = scenario.engine(kind);
        }
        let mut harness = scenario.build(TotalOrderFactory::new(plan.clone()));
        if parallel {
            harness = harness.parallel_stepping();
        }
        let mut single_shot = harness.run().unwrap();
        attach_verdicts(&mut single_shot);
        assert!(single_shot.completed(), "{name}: single shot hit its cap");
        assert_byte_identical(name, &outcome.report, &single_shot);
    }
}

/// A small but *real* stream shape: enough instances to overlap, enough
/// rounds for earlier instances to retire while later ones are still live.
fn pipelined_config() -> StreamConfig {
    StreamConfig {
        nodes: 5,
        instances: 6,
        spacing: 2,
        rounds: 12,
        rate: 2.0,
        zipf_s: 1.1,
        key_space: 8,
        seed: 0x51EA,
    }
}

#[test]
fn retirement_is_byte_identical_on_and_off_in_every_mode() {
    // Instance retirement is a memory-shape change, not a behaviour change:
    // with it on (the default) or off, the pipelined consensus stream must
    // produce byte-identical reports in every engine/step mode. The mux's
    // outgoing wire traffic, decide rounds and oracle verdicts may not move.
    let config = pipelined_config();
    for (name, engine, parallel) in modes() {
        let retiring = run_consensus_stream_with(
            &config,
            &StreamOptions {
                engine: engine.clone(),
                parallel,
                retirement: true,
                traffic_gc: false,
            },
        );
        let keeping = run_consensus_stream_with(
            &config,
            &StreamOptions {
                engine,
                parallel,
                retirement: false,
                traffic_gc: false,
            },
        );
        let section = retiring.report.stream.as_ref().expect("stream section");
        assert_eq!(section.instances.len(), config.instances, "{name}");
        assert_byte_identical(name, &retiring.report, &keeping.report);
        assert_eq!(
            retiring.latencies_rounds, keeping.latencies_rounds,
            "{name}: request latencies moved under retirement"
        );
    }
}

#[test]
fn engine_traffic_gc_is_byte_identical_on_and_off_in_every_mode() {
    // The engine-level retired-tag GC prunes queued envelopes for instances
    // every node has retired; pruning must be observationally silent for both
    // stream families in every engine/step mode.
    let config = pipelined_config();
    for (name, engine, parallel) in modes() {
        let plain = StreamOptions {
            engine: engine.clone(),
            parallel,
            ..StreamOptions::default()
        };
        let gc = StreamOptions {
            traffic_gc: true,
            ..plain.clone()
        };
        let base = run_consensus_stream_with(&config, &plain);
        let pruned = run_consensus_stream_with(&config, &gc);
        assert_byte_identical(&format!("consensus {name}"), &base.report, &pruned.report);

        let base = run_total_order_stream_with(&config, &plain);
        let pruned = run_total_order_stream_with(&config, &gc);
        assert_byte_identical(&format!("total-order {name}"), &base.report, &pruned.report);
        assert_eq!(
            base.latencies_rounds, pruned.latencies_rounds,
            "{name}: finalisation latencies moved under traffic GC"
        );
    }
}

#[test]
fn a_real_stream_is_a_strict_extension_not_a_rewrite() {
    // With more than one instance the stream takes the mux path: the report
    // gains a stream section and the stream oracle, and every instance still
    // agrees — the extension is visible exactly when it is used.
    let config = StreamConfig {
        instances: 3,
        ..degenerate_config()
    };
    let outcome = run_consensus_stream(&config, None, false);
    assert_eq!(outcome.report.protocol, "stream(consensus)");
    let section = outcome.report.stream.as_ref().expect("stream section");
    assert_eq!(section.instances.len(), 3);
    assert!(section.agreement);
    assert!(outcome
        .report
        .verdicts
        .iter()
        .any(|verdict| verdict.oracle == "stream" && verdict.passed));
}
