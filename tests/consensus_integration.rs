//! Cross-crate integration tests for consensus (Algorithm 3): agreement, validity and
//! the O(f) round bound across system sizes, input patterns and adversaries.

use uba_core::runner::{run_consensus, AdversaryKind, Scenario};
use uba_core::Consensus;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::Silent,
    AdversaryKind::AnnounceThenSilent,
    AdversaryKind::PartialAnnounce,
    AdversaryKind::SplitVote,
];

#[test]
fn agreement_and_validity_across_sizes_and_adversaries() {
    for f in 1..=4usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        for kind in ADVERSARIES {
            let scenario = Scenario::new(correct, f, 100 + f as u64);
            let report = run_consensus(&scenario, &inputs, kind)
                .unwrap_or_else(|e| panic!("f={f}, {kind:?}: {e}"));
            assert!(report.agreement, "agreement violated for f={f}, {kind:?}");
            assert!(report.validity, "validity violated for f={f}, {kind:?}");
        }
    }
}

#[test]
fn unanimous_inputs_always_decide_the_common_value() {
    for &value in &[0u64, 1, 7, 1_000_000] {
        let scenario = Scenario::new(7, 2, value.wrapping_add(5));
        let inputs = vec![value; 7];
        let report = run_consensus(&scenario, &inputs, AdversaryKind::SplitVote).unwrap();
        assert!(report.decisions.iter().all(|&d| d == value));
    }
}

#[test]
fn round_complexity_grows_linearly_with_f() {
    let mut previous_rounds = 0u64;
    for f in 1..=5usize {
        let correct = 2 * f + 1 + 4; // keep n > 3f with some slack
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let scenario = Scenario::new(correct, f, 7 * f as u64);
        let report =
            run_consensus(&scenario, &inputs, AdversaryKind::AnnounceThenSilent).unwrap();
        // O(f): at most a constant number of phases beyond f + 1, five rounds each,
        // plus initialisation.
        assert!(
            report.rounds <= 5 * (f as u64 + 3) + 3,
            "f = {f}: {} rounds exceeds the O(f) bound",
            report.rounds
        );
        // Sanity: the bound itself grows, so runs are allowed to get slower — but the
        // growth from one f to the next must stay bounded by one extra phase or so.
        if previous_rounds > 0 {
            assert!(report.rounds <= previous_rounds + 15);
        }
        previous_rounds = report.rounds;
    }
}

#[test]
fn consensus_works_with_non_binary_opinions() {
    // Real-valued (here: large integer) opinions, as required for ordering events.
    let ids = IdSpace::default().generate(6, 77);
    let inputs: Vec<u64> = vec![1_000, 2_000, 3_000, 1_000, 2_000, 3_000];
    let nodes: Vec<Consensus<u64>> = ids
        .iter()
        .zip(&inputs)
        .map(|(&id, &input)| Consensus::new(id, input))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_until_all_terminated(300).unwrap();
    let decisions: Vec<u64> =
        engine.outputs().into_iter().map(|(_, d)| d.unwrap().value).collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    assert!(inputs.contains(&decisions[0]));
}

#[test]
fn decided_nodes_do_not_stall_the_rest() {
    // Some nodes decide a phase earlier than others (the early-termination corner the
    // substitution rule exists for); everyone must still decide.
    let scenario = Scenario { max_rounds: 400, ..Scenario::new(10, 3, 909) };
    let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
    let report = run_consensus(&scenario, &inputs, AdversaryKind::SplitVote).unwrap();
    assert_eq!(report.decisions.len(), 10);
    assert!(report.agreement);
}

#[test]
fn sparse_and_random_id_spaces_behave_identically() {
    for id_space in [IdSpace::Sparse { stride: 1000 }, IdSpace::Random] {
        let scenario = Scenario { id_space, ..Scenario::new(7, 2, 31) };
        let inputs: Vec<u64> = (0..7).map(|i| (i % 2) as u64).collect();
        let report = run_consensus(&scenario, &inputs, AdversaryKind::SplitVote).unwrap();
        assert!(report.agreement && report.validity, "failed for {id_space:?}");
    }
}
