//! Cross-crate integration tests for consensus (Algorithm 3): agreement, validity and
//! the O(f) round bound across system sizes, input patterns and adversaries, all
//! driven through the unified `Simulation` builder.

use uba_core::sim::{AdversaryKind, RunReport, ScenarioExt, Simulation};
use uba_core::Consensus;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

const ADVERSARIES: [AdversaryKind; 4] = [
    AdversaryKind::Silent,
    AdversaryKind::AnnounceThenSilent,
    AdversaryKind::PartialAnnounce,
    AdversaryKind::SplitVote,
];

fn consensus_run(
    correct: usize,
    byzantine: usize,
    seed: u64,
    max_rounds: u64,
    inputs: &[u64],
    kind: AdversaryKind,
) -> RunReport {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
        .max_rounds(max_rounds)
        .adversary(kind)
        .consensus(inputs)
        .run()
        .expect("no engine error")
}

#[test]
fn agreement_and_validity_across_sizes_and_adversaries() {
    for f in 1..=4usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        for kind in ADVERSARIES {
            let report = consensus_run(correct, f, 100 + f as u64, 1_000, &inputs, kind);
            assert!(report.completed(), "f={f}, {kind:?}: stuck");
            let section = report.consensus.as_ref().expect("consensus section");
            assert!(section.agreement, "agreement violated for f={f}, {kind:?}");
            assert!(section.validity, "validity violated for f={f}, {kind:?}");
        }
    }
}

#[test]
fn unanimous_inputs_always_decide_the_common_value() {
    for &value in &[0u64, 1, 7, 1_000_000] {
        let inputs = vec![value; 7];
        let report = consensus_run(
            7,
            2,
            value.wrapping_add(5),
            1_000,
            &inputs,
            AdversaryKind::SplitVote,
        );
        let section = report.consensus.as_ref().expect("consensus section");
        assert!(section.decisions.iter().all(|d| d.value == value));
    }
}

#[test]
fn round_complexity_grows_linearly_with_f() {
    let mut previous_rounds = 0u64;
    for f in 1..=5usize {
        let correct = 2 * f + 1 + 4; // keep n > 3f with some slack
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let report = consensus_run(
            correct,
            f,
            7 * f as u64,
            1_000,
            &inputs,
            AdversaryKind::AnnounceThenSilent,
        );
        // O(f): at most a constant number of phases beyond f + 1, five rounds each,
        // plus initialisation.
        assert!(
            report.rounds <= 5 * (f as u64 + 3) + 3,
            "f = {f}: {} rounds exceeds the O(f) bound",
            report.rounds
        );
        // Sanity: the bound itself grows, so runs are allowed to get slower — but the
        // growth from one f to the next must stay bounded by one extra phase or so.
        if previous_rounds > 0 {
            assert!(report.rounds <= previous_rounds + 15);
        }
        previous_rounds = report.rounds;
    }
}

#[test]
fn consensus_works_with_non_binary_opinions() {
    // Real-valued (here: large integer) opinions, as required for ordering events.
    // This goes through the raw engine: the builder's sugar is u64-typed, but the
    // protocol itself is generic.
    let ids = IdSpace::default().generate(6, 77);
    let inputs: Vec<u64> = vec![1_000, 2_000, 3_000, 1_000, 2_000, 3_000];
    let nodes: Vec<Consensus<u64>> = ids
        .iter()
        .zip(&inputs)
        .map(|(&id, &input)| Consensus::new(id, input))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_to_termination(300).unwrap();
    let decisions: Vec<u64> = engine
        .outputs()
        .into_iter()
        .map(|(_, d)| d.unwrap().value)
        .collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    assert!(inputs.contains(&decisions[0]));
}

#[test]
fn decided_nodes_do_not_stall_the_rest() {
    // Some nodes decide a phase earlier than others (the early-termination corner the
    // substitution rule exists for); everyone must still decide.
    let inputs: Vec<u64> = (0..10).map(|i| (i % 2) as u64).collect();
    let report = consensus_run(10, 3, 909, 400, &inputs, AdversaryKind::SplitVote);
    assert!(report.completed());
    let section = report.consensus.as_ref().expect("consensus section");
    assert_eq!(section.decisions.len(), 10);
    assert!(section.agreement);
}

#[test]
fn sparse_and_random_id_spaces_behave_identically() {
    for id_space in [IdSpace::Sparse { stride: 1000 }, IdSpace::Random] {
        let inputs: Vec<u64> = (0..7).map(|i| (i % 2) as u64).collect();
        let report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .ids(id_space)
            .seed(31)
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .expect("no engine error");
        let section = report.consensus.as_ref().expect("consensus section");
        assert!(
            section.agreement && section.validity,
            "failed for {id_space:?}"
        );
    }
}
