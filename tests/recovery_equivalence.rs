//! Recovery-equivalence suite: the crash-recovery subsystem (write-ahead
//! logging, snapshots, replay) must be *observationally silent* on crash-free
//! runs. Force-enabling recovery via [`Harness::enable_recovery`] on every
//! protocol and baseline family — the same ten scenarios `engine_equivalence.rs`
//! pins — must produce a `RunReport` equal in every field to the run without
//! recovery, on the serial path, the opt-in parallel path, and the
//! discrete-event engine.
//!
//! This is the contract that lets `Harness::assemble` auto-enable recovery
//! whenever a churn schedule contains crash events: turning the subsystem on
//! costs nothing observable until a node actually crashes.
//!
//! [`Harness::enable_recovery`]: uba_simnet::sim::Harness::enable_recovery

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_core::sim::{
    AdversaryKind, ParallelConsensusFactory, RunReport, ScenarioExt, Simulation, TotalOrderPlan,
};
use uba_simnet::{EngineKind, IdSpace};

/// One run configuration: which step path and whether the write-ahead recovery
/// subsystem is force-enabled before the run.
#[derive(Clone, Copy)]
struct Mode {
    parallel: bool,
    recovery: bool,
}

type Build = Box<dyn Fn(Mode) -> RunReport>;

/// The ten protocol/baseline families under the exact scenarios pinned by
/// `engine_equivalence.rs` (same seeds, sizes, adversaries and id spaces).
fn scenarios() -> Vec<(&'static str, Build)> {
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let approx_inputs: Vec<f64> = (0..7).map(|i| i as f64 * 5.0).collect();
    let pairs: Vec<(u64, u64)> = (0..4).map(|i| (i, 50 + i)).collect();

    vec![
        (
            "consensus",
            Box::new({
                let inputs = inputs.clone();
                move |mode: Mode| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(42)
                        .adversary(AdversaryKind::SplitVote)
                        .consensus(&inputs);
                    if mode.recovery {
                        harness = harness.enable_recovery();
                    }
                    if mode.parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }) as Build,
        ),
        (
            "reliable-broadcast",
            Box::new(|mode: Mode| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(43)
                    .adversary(AdversaryKind::PartialAnnounce)
                    .broadcast(42)
                    .rounds(12);
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "rotor",
            Box::new(|mode: Mode| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(44)
                    .adversary(AdversaryKind::AnnounceThenSilent)
                    .rotor();
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "approx",
            Box::new({
                let approx_inputs = approx_inputs.clone();
                move |mode: Mode| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(45)
                        .adversary(AdversaryKind::Worst)
                        .approx(&approx_inputs);
                    if mode.recovery {
                        harness = harness.enable_recovery();
                    }
                    if mode.parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "parallel-consensus",
            Box::new({
                let pairs = pairs.clone();
                move |mode: Mode| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(46)
                        .max_rounds(500)
                        .adversary(AdversaryKind::Worst)
                        .build(ParallelConsensusFactory::new(pairs.clone()));
                    if mode.recovery {
                        harness = harness.enable_recovery();
                    }
                    if mode.parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "total-order",
            Box::new(|mode: Mode| {
                let plan = TotalOrderPlan::rounds(20)
                    .event(2, 0, 11)
                    .event(3, 1, 22)
                    .leave(10, 2);
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(0xE0)
                    .max_rounds(100)
                    .adversary(AdversaryKind::Worst)
                    .total_order(plan);
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "phase-king",
            Box::new({
                let inputs = inputs.clone();
                move |mode: Mode| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .ids(IdSpace::Consecutive)
                        .seed(0)
                        .max_rounds(300)
                        .build(PhaseKingFactory::new(inputs.clone()));
                    if mode.recovery {
                        harness = harness.enable_recovery();
                    }
                    if mode.parallel {
                        harness = harness.parallel_stepping();
                        harness.engine_mut().set_parallel_node_threshold(1);
                    }
                    harness.run().unwrap()
                }
            }),
        ),
        (
            "srikanth-toueg",
            Box::new(|mode: Mode| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .build(StBroadcastFactory::new(42))
                    .rounds(8);
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "known-rotor",
            Box::new(|mode: Mode| {
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .max_rounds(100)
                    .build(KnownRotorFactory);
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
        (
            "dolev-approx",
            Box::new(|mode: Mode| {
                let inputs: Vec<f64> = (0..8).map(|i| i as f64 * 3.0).collect();
                let mut harness = Simulation::scenario()
                    .correct(8)
                    .byzantine(2)
                    .ids(IdSpace::Consecutive)
                    .seed(0)
                    .build(DolevApproxFactory::new(inputs));
                if mode.recovery {
                    harness = harness.enable_recovery();
                }
                if mode.parallel {
                    harness = harness.parallel_stepping();
                    harness.engine_mut().set_parallel_node_threshold(1);
                }
                harness.run().unwrap()
            }),
        ),
    ]
}

#[test]
fn force_enabled_recovery_is_byte_identical_on_crash_free_runs() {
    for (name, build) in &scenarios() {
        for parallel in [false, true] {
            let baseline = build(Mode {
                parallel,
                recovery: false,
            });
            let recovered = build(Mode {
                parallel,
                recovery: true,
            });
            assert_eq!(
                baseline, recovered,
                "{name} (parallel = {parallel}): force-enabled recovery changed the report"
            );
            assert!(
                recovered.recovery.is_none(),
                "{name}: a crash-free run must not grow a recovery section"
            );
        }
    }
}

#[test]
fn force_enabled_recovery_is_byte_identical_on_the_event_engine() {
    // The event engine shares the write-ahead discipline (log inbox + sent
    // digests before the adversary phase) but reaches it through a different
    // scheduler; pin the same silence there. Consensus, total ordering and a
    // known-(n, f) baseline cover the three factory shapes.
    type EventBuild = Box<dyn Fn(bool) -> RunReport>;
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let cases: Vec<(&str, EventBuild)> = vec![
        (
            "consensus",
            Box::new({
                let inputs = inputs.clone();
                move |recovery| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .seed(42)
                        .engine(EngineKind::event())
                        .adversary(AdversaryKind::SplitVote)
                        .consensus(&inputs);
                    if recovery {
                        harness = harness.enable_recovery();
                    }
                    harness.run().unwrap()
                }
            }) as EventBuild,
        ),
        (
            "total-order",
            Box::new(|recovery| {
                let plan = TotalOrderPlan::rounds(20).event(2, 0, 11).event(3, 1, 22);
                let mut harness = Simulation::scenario()
                    .correct(7)
                    .byzantine(2)
                    .seed(0xE0)
                    .max_rounds(100)
                    .engine(EngineKind::event())
                    .adversary(AdversaryKind::Worst)
                    .total_order(plan);
                if recovery {
                    harness = harness.enable_recovery();
                }
                harness.run().unwrap()
            }),
        ),
        (
            "phase-king",
            Box::new({
                let inputs = inputs.clone();
                move |recovery| {
                    let mut harness = Simulation::scenario()
                        .correct(7)
                        .byzantine(2)
                        .ids(IdSpace::Consecutive)
                        .seed(0)
                        .max_rounds(300)
                        .engine(EngineKind::event())
                        .build(PhaseKingFactory::new(inputs.clone()));
                    if recovery {
                        harness = harness.enable_recovery();
                    }
                    harness.run().unwrap()
                }
            }),
        ),
    ];

    for (name, build) in &cases {
        let baseline = build(false);
        let recovered = build(true);
        assert_eq!(
            baseline, recovered,
            "{name} (event engine): force-enabled recovery changed the report"
        );
        assert!(recovered.recovery.is_none());
    }
}
