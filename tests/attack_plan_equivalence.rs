//! Legacy-preset equivalence pins: for every protocol/baseline family and every
//! scripted [`AdversaryKind`], running the kind through the builder's `adversary()`
//! path and running its [`AttackPlan::preset`] encoding through the plan path must
//! produce *identical* `RunReport`s — same adversary name, same counts, same
//! per-node outcomes. This is the contract that makes attack plans a strict
//! generalisation of the closed enum rather than a parallel implementation that
//! could drift.
//!
//! The only permitted difference is the scenario's own `attack` field (the plan run
//! records the plan it ran; the kind run records none) — the test checks it
//! explicitly and then normalises it away before the full-report comparison.

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_core::sim::{
    AdversaryKind, AttackPlan, ParallelConsensusFactory, RunReport, ScenarioBuilder, ScenarioExt,
    Simulation, TotalOrderPlan,
};
use uba_simnet::IdSpace;

const KINDS: [AdversaryKind; 5] = [
    AdversaryKind::Silent,
    AdversaryKind::AnnounceThenSilent,
    AdversaryKind::PartialAnnounce,
    AdversaryKind::SplitVote,
    AdversaryKind::Worst,
];

type Runner = Box<dyn Fn(ScenarioBuilder) -> RunReport>;

/// Every family paired with its base scenario and a runner that attaches the
/// factory — mirrors the ten-family list of `tests/engine_equivalence.rs`.
fn families() -> Vec<(&'static str, ScenarioBuilder, Runner)> {
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let approx_inputs: Vec<f64> = (0..7).map(|i| i as f64 * 5.0).collect();
    let consecutive = |seed: u64| {
        Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .ids(IdSpace::Consecutive)
            .seed(seed)
    };
    vec![
        (
            "consensus",
            Simulation::scenario().correct(7).byzantine(2).seed(42),
            Box::new({
                let inputs = inputs.clone();
                move |b: ScenarioBuilder| b.consensus(&inputs).run().unwrap()
            }) as Runner,
        ),
        (
            "reliable-broadcast",
            Simulation::scenario().correct(7).byzantine(2).seed(43),
            Box::new(|b: ScenarioBuilder| b.broadcast(42).run().unwrap()),
        ),
        (
            "rotor",
            Simulation::scenario().correct(7).byzantine(2).seed(44),
            Box::new(|b: ScenarioBuilder| b.rotor().run().unwrap()),
        ),
        (
            "approx",
            Simulation::scenario().correct(7).byzantine(2).seed(45),
            Box::new({
                let approx_inputs = approx_inputs.clone();
                move |b: ScenarioBuilder| b.approx(&approx_inputs).run().unwrap()
            }),
        ),
        (
            "parallel-consensus",
            Simulation::scenario()
                .correct(7)
                .byzantine(2)
                .seed(46)
                .max_rounds(500),
            Box::new(|b: ScenarioBuilder| {
                b.build(ParallelConsensusFactory::new(vec![(0, 50), (1, 51)]))
                    .run()
                    .unwrap()
            }),
        ),
        (
            "total-order",
            Simulation::scenario()
                .correct(7)
                .byzantine(2)
                .seed(0xE0)
                .max_rounds(100),
            Box::new(|b: ScenarioBuilder| {
                let plan = TotalOrderPlan::rounds(20)
                    .event(2, 0, 11)
                    .event(3, 1, 22)
                    .leave(10, 2);
                b.total_order(plan).run().unwrap()
            }),
        ),
        (
            "phase-king",
            consecutive(0).max_rounds(300),
            Box::new({
                let inputs = inputs.clone();
                move |b: ScenarioBuilder| {
                    b.build(PhaseKingFactory::new(inputs.clone()))
                        .run()
                        .unwrap()
                }
            }),
        ),
        (
            "srikanth-toueg",
            consecutive(0),
            Box::new(|b: ScenarioBuilder| b.build(StBroadcastFactory::new(42)).run().unwrap()),
        ),
        (
            "dolev-approx",
            Simulation::scenario()
                .correct(8)
                .byzantine(2)
                .ids(IdSpace::Consecutive)
                .seed(0),
            Box::new(|b: ScenarioBuilder| {
                let inputs: Vec<f64> = (0..8).map(|i| i as f64 * 3.0).collect();
                b.build(DolevApproxFactory::new(inputs)).run().unwrap()
            }),
        ),
        (
            "known-rotor",
            consecutive(0).max_rounds(100),
            Box::new(|b: ScenarioBuilder| b.build(KnownRotorFactory).run().unwrap()),
        ),
    ]
}

#[test]
fn every_kind_preset_plan_reproduces_the_kind_report_for_all_ten_families() {
    for (family, base, run) in families() {
        for kind in KINDS {
            let kind_report = run(base.clone().adversary(kind));
            let plan = AttackPlan::preset(kind);
            let mut plan_report = run(base.clone().attack(plan.clone()));

            assert_eq!(
                plan_report.scenario.attack,
                Some(plan),
                "{family}/{kind:?}: the plan run must record its plan"
            );
            assert_eq!(
                plan_report.scenario.adversary, kind,
                "{family}/{kind:?}: a preset plan normalises the spec's kind"
            );
            plan_report.scenario.attack = None;
            assert_eq!(
                plan_report, kind_report,
                "{family}/{kind:?}: plan encoding drifted from the legacy kind"
            );
        }
    }
}

/// A windowed preset is *not* the legacy kind: the compiled plan must actually
/// cut the strategy off at the window edge (guards against the equivalence above
/// passing because plans are silently ignored).
#[test]
fn windowed_plans_differ_from_their_whole_run_preset() {
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let base = Simulation::scenario().correct(7).byzantine(2).seed(42);
    let whole = base
        .clone()
        .attack(AttackPlan::preset(AdversaryKind::SplitVote))
        .consensus(&inputs)
        .run()
        .unwrap();
    let windowed = base
        .attack(AttackPlan::crash_window(AdversaryKind::SplitVote, 1, 2))
        .consensus(&inputs)
        .run()
        .unwrap();
    assert_eq!(windowed.adversary, "plan(split-vote@1..2)");
    assert!(
        windowed.messages.byzantine < whole.messages.byzantine,
        "the crash window must cut Byzantine traffic ({} !< {})",
        windowed.messages.byzantine,
        whole.messages.byzantine
    );
    let section = windowed.consensus.expect("consensus section");
    assert!(section.agreement && section.validity);
}
