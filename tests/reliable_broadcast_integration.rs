//! Cross-crate integration tests for reliable broadcast (Algorithm 1): the three
//! properties of Theorem 1 under correct, silent and equivocating designated senders.

use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_core::{RbMessage, ReliableBroadcast};
use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, NodeId, SyncEngine};

#[test]
fn correctness_across_sizes() {
    for &n in &[4usize, 7, 10, 19, 31] {
        let f = uba_core::quorum::max_faults(n);
        let report = Simulation::scenario()
            .correct(n - f)
            .byzantine(f)
            .seed(n as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(1234)
            .rounds(12)
            .run()
            .unwrap();
        let section = report.broadcast.as_ref().expect("broadcast section");
        assert!(section.consistent);
        for accepted in &section.accepted {
            assert!(
                accepted.values.iter().map(|&(m, _)| m).eq([1234u64]),
                "n = {n}: every correct node accepts the value"
            );
        }
    }
}

#[test]
fn equivocating_source_is_exposed_consistently() {
    for &n in &[7usize, 13, 22] {
        let f = uba_core::quorum::max_faults(n);
        let report = Simulation::scenario()
            .correct(n - f)
            .byzantine(f)
            .seed(1000 + n as u64)
            .broadcast_equivocating(10, 20)
            .rounds(15)
            .run()
            .unwrap();
        let section = report.broadcast.as_ref().expect("broadcast section");
        assert!(
            section.consistent,
            "n = {n}: correct nodes ended up with different accept sets: {:?}",
            section.accepted
        );
    }
}

#[test]
fn unforgeability_with_a_correct_but_silent_topic() {
    // The designated sender is correct but never broadcasts (it has nothing to say);
    // Byzantine nodes flood echoes for a forged value. Nothing may be accepted.
    let ids = IdSpace::default().generate(10, 3);
    let source = ids[0];
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let nodes: Vec<ReliableBroadcast<u64>> = ids[..7]
        .iter()
        .map(|&id| ReliableBroadcast::receiver(id, source))
        .collect();
    let byz_clone = byz.clone();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, RbMessage<u64>>| {
        let mut out = Vec::new();
        for &from in &byz_clone {
            for &to in view.correct_ids {
                out.push(Directed::new(from, to, RbMessage::Echo(666)));
            }
        }
        out
    });
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_rounds(25).unwrap();
    for node in engine.nodes() {
        assert!(
            node.accepted().is_empty(),
            "a value the correct source never sent was accepted"
        );
    }
}

#[test]
fn relay_holds_when_byzantines_boost_a_single_node() {
    // Byzantine echoes target a single favoured node to make it accept early; the
    // relay property bounds the acceptance-round gap across correct nodes by one.
    let ids = IdSpace::default().generate(13, 5);
    let f = 4;
    let correct: Vec<NodeId> = ids[..13 - f].to_vec();
    let byz: Vec<NodeId> = ids[13 - f..].to_vec();
    let source = correct[0];
    let favoured = correct[1];
    let nodes: Vec<ReliableBroadcast<u64>> = correct
        .iter()
        .map(|&id| {
            if id == source {
                ReliableBroadcast::sender(id, 5)
            } else {
                ReliableBroadcast::receiver(id, source)
            }
        })
        .collect();
    let byz_clone = byz.clone();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, RbMessage<u64>>| {
        if view.round < 2 {
            return vec![];
        }
        byz_clone
            .iter()
            .map(|&from| Directed::new(from, favoured, RbMessage::Echo(5)))
            .collect()
    });
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_rounds(25).unwrap();
    let rounds: Vec<u64> = engine
        .nodes()
        .iter()
        .map(|n| n.accepted().first().expect("everyone accepts").round)
        .collect();
    let spread = rounds.iter().max().unwrap() - rounds.iter().min().unwrap();
    assert!(spread <= 1, "relay violated: acceptance rounds {rounds:?}");
}

#[test]
fn below_resiliency_unforgeability_can_fail_showing_the_bound_is_tight() {
    // With n = 3f (one node short of the optimal resiliency) the guarantees no longer
    // hold: two Byzantine echoers are enough to push a value the correct source never
    // sent past the n_v/3 amplification threshold, and the forged value ends up
    // accepted. This documents that the n > 3f requirement of Theorem 1 is tight.
    let ids = IdSpace::default().generate(6, 9);
    let correct: Vec<NodeId> = ids[..4].to_vec();
    let byz: Vec<NodeId> = ids[4..].to_vec();
    let source = correct[0];
    let nodes: Vec<ReliableBroadcast<u64>> = correct
        .iter()
        .map(|&id| {
            if id == source {
                ReliableBroadcast::sender(id, 77)
            } else {
                ReliableBroadcast::receiver(id, source)
            }
        })
        .collect();
    let byz_clone = byz.clone();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, RbMessage<u64>>| {
        let mut out = Vec::new();
        for &from in &byz_clone {
            for &to in view.correct_ids {
                out.push(Directed::new(from, to, RbMessage::Echo(1_000)));
            }
        }
        out
    });
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine.run_rounds(20).unwrap();
    let forged_accepted = engine
        .nodes()
        .iter()
        .any(|node| node.accepted().iter().any(|a| a.message == 1_000));
    assert!(
        forged_accepted,
        "at n = 3f the forging attack is expected to succeed; if it no longer does, \
         the implementation is stronger than the model predicts and this test should \
         be revisited"
    );
    // The genuine value is still accepted by everyone alongside the forged one.
    for node in engine.nodes() {
        assert!(node.accepted().iter().any(|a| a.message == 77));
    }
}
