//! End-to-end tests of the unified `Simulation` builder: the same scenario
//! description runs against the id-only consensus (Algorithm 3) *and* the classic
//! phase-king baseline, the two reports agree on the decided value, round-trip
//! through serde JSON, and are accepted by the `uba-checker` oracles.

use uba_baselines::PhaseKingFactory;
use uba_checker::{attach_verdicts, check_run_report};
use uba_core::sim::{
    AdversaryKind, RunReport, RunStatus, ScenarioBuilder, ScenarioExt, Simulation,
};
use uba_simnet::{ChurnEvent, ChurnSchedule, IdSpace, NodeId};

/// One scenario description, reused verbatim for both protocols (consecutive ids
/// because the phase-king baseline requires them; the id-only algorithm accepts any).
fn shared_scenario() -> ScenarioBuilder {
    Simulation::scenario()
        .correct(7)
        .byzantine(2)
        .ids(IdSpace::Consecutive)
        .seed(12)
        .max_rounds(300)
        .adversary(AdversaryKind::Silent)
}

const INPUTS: [u64; 7] = [0, 1, 1, 0, 1, 1, 1];

#[test]
fn same_scenario_runs_consensus_and_phase_king_head_to_head() {
    let id_only = shared_scenario().consensus(&INPUTS).run().unwrap();
    let king = shared_scenario()
        .build(PhaseKingFactory::new(INPUTS.to_vec()))
        .run()
        .unwrap();

    for report in [&id_only, &king] {
        assert!(report.completed(), "{} did not finish", report.protocol);
        let section = report.consensus.as_ref().expect("consensus section");
        assert!(section.agreement, "{} disagreed", report.protocol);
        assert!(
            section.validity,
            "{} decided an invalid value",
            report.protocol
        );
        assert!(section.undecided.is_empty());
        assert_eq!(section.inputs.len(), 7);
    }

    // Head-to-head comparability: same scenario echo, and both decided values are
    // inputs of correct nodes (validity is all the theorems promise for split
    // inputs — the two algorithms may legitimately pick different valid values).
    assert_eq!(id_only.scenario, king.scenario);
    assert_eq!(id_only.protocol, "consensus");
    assert_eq!(king.protocol, "phase-king");
    for report in [&id_only, &king] {
        let value = report.consensus.as_ref().unwrap().decisions[0].value;
        assert!(
            INPUTS.contains(&value),
            "{} decided a non-input value",
            report.protocol
        );
    }

    // Under unanimous inputs both implementations MUST decide the common value.
    let unanimous = [4u64; 7];
    let id_only = shared_scenario().consensus(&unanimous).run().unwrap();
    let king = shared_scenario()
        .build(PhaseKingFactory::new(unanimous.to_vec()))
        .run()
        .unwrap();
    for report in [&id_only, &king] {
        let section = report.consensus.as_ref().unwrap();
        assert!(
            section.decisions.iter().all(|d| d.value == 4),
            "{}",
            report.protocol
        );
    }
}

#[test]
fn reports_round_trip_through_serde_json() {
    let mut id_only = shared_scenario().consensus(&INPUTS).run().unwrap();
    let mut king = shared_scenario()
        .build(PhaseKingFactory::new(INPUTS.to_vec()))
        .run()
        .unwrap();
    attach_verdicts(&mut id_only);
    attach_verdicts(&mut king);

    for report in [&id_only, &king] {
        let json = serde_json::to_string_pretty(report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, report, "{} report must round-trip", report.protocol);
        // The deserialised report is still accepted by the oracles.
        check_run_report(&back).assert_passed("deserialised report");
        assert!(back.verdicts_passed());
        assert!(!back.verdicts.is_empty());
    }
}

#[test]
fn builder_spec_controls_every_knob() {
    let builder = Simulation::scenario()
        .correct(9)
        .byzantine(2)
        .ids(IdSpace::Sparse { stride: 11 })
        .seed(77)
        .max_rounds(55)
        .adversary(AdversaryKind::PartialAnnounce)
        .churn(ChurnSchedule::empty().with(3, ChurnEvent::JoinByzantine(NodeId::new(9_999))));
    let spec = builder.spec().clone();
    assert_eq!(spec.correct, 9);
    assert_eq!(spec.byzantine, 2);
    assert_eq!(spec.id_space, IdSpace::Sparse { stride: 11 });
    assert_eq!(spec.seed, 77);
    assert_eq!(spec.max_rounds, 55);
    assert_eq!(spec.adversary, AdversaryKind::PartialAnnounce);
    assert_eq!(spec.churn.len(), 1);

    // The context splits ids deterministically and the spec is echoed into reports.
    let ctx = builder.clone().context();
    assert_eq!(ctx.correct_ids.len(), 9);
    assert_eq!(ctx.byzantine_ids.len(), 2);
    let report = builder
        .churn(ChurnSchedule::empty())
        .consensus(&[0, 1, 0, 1, 0, 1, 0, 1, 0])
        .run()
        .unwrap();
    assert_eq!(report.scenario.seed, 77);
    assert_eq!(report.adversary, "partial-announce");
}

#[test]
fn cap_exhaustion_round_trips_as_a_status() {
    // n = 3f with a split-vote adversary can get stuck; whatever happens, the status
    // (and not an error) carries the outcome through serialization.
    let report = Simulation::scenario()
        .correct(4)
        .byzantine(2)
        .seed(5)
        .max_rounds(40)
        .adversary(AdversaryKind::SplitVote)
        .consensus(&[0, 1, 0, 1])
        .run()
        .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.status, report.status);
    if let RunStatus::MaxRoundsExceeded { limit } = back.status {
        assert_eq!(limit, 40);
    }
}
