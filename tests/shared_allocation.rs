//! Allocation accounting for the zero-copy message plane.
//!
//! One broadcast = one payload allocation, **regardless of fan-out**. This test
//! drives a broadcast-heavy round at n = 128 through the real engine (serial and
//! parallel stepping) and asserts, via the instrumented `Shared::new` counter,
//! that the whole system — traffic plane, delivery, dedup, tracing — performs
//! O(#broadcasts) payload allocations, not O(n · #broadcasts) as the eager
//! engine did.
//!
//! This file holds a single test on purpose: the allocation counter is
//! process-wide, and integration-test binaries run in their own process, so the
//! deltas below are exact, not approximate.

use uba_checker::{attribute_trace, check_zero_copy};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{
    shared, EngineConfig, Envelope, NodeId, Outgoing, Protocol, RoundContext, SyncEngine,
};

/// Broadcasts one payload every round, forever (the engine's round cap stops it).
struct Flooder {
    id: NodeId,
}

impl Protocol for Flooder {
    type Payload = (u64, u64);
    type Output = ();

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        _inbox: &[Envelope<(u64, u64)>],
    ) -> Vec<Outgoing<(u64, u64)>> {
        vec![Outgoing::broadcast((ctx.round, self.id.raw()))]
    }

    fn output(&self) -> Option<()> {
        None
    }

    fn terminated(&self) -> bool {
        false
    }
}

#[test]
fn broadcast_round_at_n_128_allocates_per_broadcast_not_per_recipient() {
    const N: usize = 128;
    const ROUNDS: u64 = 4;

    let run = |parallel: bool| {
        let nodes: Vec<Flooder> = (0..N)
            .map(|i| Flooder {
                id: NodeId::new(10 + 7 * i as u64),
            })
            .collect();
        let config = EngineConfig {
            trace: true,
            trace_capacity: 1 << 20,
            parallel_node_threshold: 1,
            ..Default::default()
        };
        let mut engine = SyncEngine::with_config(nodes, SilentAdversary, vec![], config);
        if parallel {
            engine.enable_parallel_stepping();
        }

        let before = shared::allocations();
        engine.run_rounds(ROUNDS).expect("flood rounds run");
        let allocated = shared::allocations() - before;

        let broadcasts = N as u64 * ROUNDS;
        // Every node broadcasts once per round; each broadcast reaches all n
        // correct nodes (self included).
        assert_eq!(engine.metrics().correct_messages, broadcasts * N as u64);
        let deliveries = engine.metrics().deliveries;
        assert_eq!(deliveries, broadcasts * N as u64, "no dedup hits here");

        // The zero-copy invariant, exactly: one allocation per broadcast. The
        // eager engine would have paid one payload clone per delivery — 128×
        // more — plus one dedup hash per delivery.
        assert_eq!(
            allocated, broadcasts,
            "O(#broadcasts) allocations (parallel = {parallel})"
        );
        assert!(
            allocated <= deliveries / 64,
            "allocations must stay far below the delivery fan-out"
        );

        // Cross-check through the recorded trace: every delivered handle points
        // at one of the broadcast allocations, so the distinct-allocation count
        // equals the broadcast count and the checker's zero-copy oracle passes.
        let trace = engine.trace().expect("tracing enabled");
        let attribution = attribute_trace(trace);
        assert_eq!(attribution.deliveries, deliveries);
        assert_eq!(attribution.byzantine, 0);
        assert_eq!(attribution.distinct_allocations, broadcasts);
        assert!(check_zero_copy(trace, broadcasts).passed());
    };

    run(false);
    run(true);
}
