//! Integration tests for parallel consensus (Algorithm 5 / Theorem 5), verified
//! through the `uba-checker` oracle: validity on commonly held pairs, agreement on the
//! full output set, termination, and the no-fabrication guarantee against Byzantine
//! identifier injection.

use std::collections::BTreeMap;

use uba_checker::parallel::{check_parallel_consensus, ParallelObservation};
use uba_core::adversaries::{AnnounceThenSilent, GhostPairInjector};
use uba_core::early_consensus::{InstanceId, ParallelMessage};
use uba_core::parallel_consensus::ParallelConsensus;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::faults::Collusion;
use uba_simnet::{Adversary, IdSpace, NodeId, Protocol, SyncEngine};

type Msg = ParallelMessage<u64>;

/// Runs parallel consensus with the given per-node input pair sets and adversary, and
/// returns the checker observations.
fn run<A: Adversary<Msg>>(
    inputs: Vec<Vec<(InstanceId, u64)>>,
    byzantine: usize,
    adversary: A,
    seed: u64,
) -> Vec<ParallelObservation<u64>> {
    let ids = IdSpace::default().generate(inputs.len() + byzantine, seed);
    let byz: Vec<NodeId> = ids[inputs.len()..].to_vec();
    let nodes: Vec<ParallelConsensus<u64>> = ids[..inputs.len()]
        .iter()
        .zip(&inputs)
        .map(|(&id, pairs)| ParallelConsensus::new(id, pairs.clone()))
        .collect();
    let mut engine = SyncEngine::new(nodes, adversary, byz);
    engine
        .run_to_termination(500)
        .expect("parallel consensus terminates");
    engine
        .nodes()
        .iter()
        .map(|node| ParallelObservation {
            node: Protocol::id(node),
            inputs: node.inputs().clone(),
            decision: node.decision().cloned(),
        })
        .collect()
}

#[test]
fn universal_pairs_are_agreed_and_output() {
    let inputs = vec![vec![(1, 100), (2, 200), (3, 300)]; 6];
    let observations = run(inputs, 0, SilentAdversary, 1);
    check_parallel_consensus(&observations).assert_passed("universal pairs");
    let pairs = &observations[0].decision.as_ref().unwrap().pairs;
    assert_eq!(*pairs, BTreeMap::from([(1, 100), (2, 200), (3, 300)]));
}

#[test]
fn partially_known_pairs_remain_consistent_under_silent_faults() {
    // Pair 7 is known to four of seven nodes, pair 9 to a single node; the Byzantine
    // identities are counted (they announce) but never vote.
    let mut inputs = vec![vec![(7, 70)]; 4];
    inputs.push(vec![(9, 90)]);
    inputs.extend(vec![vec![]; 2]);
    let observations = run(inputs, 2, AnnounceThenSilent, 2);
    check_parallel_consensus(&observations).assert_passed("partially known pairs");
}

#[test]
fn byzantine_injected_identifiers_never_reach_the_output() {
    let ghost_pairs = vec![(555u64, 5u64), (777u64, 7u64)];
    let inputs = vec![vec![(1, 11)]; 7];
    let observations = run(inputs, 2, GhostPairInjector::new(ghost_pairs), 3);
    let report = check_parallel_consensus(&observations);
    report.assert_passed("ghost pair injection");
    let pairs = &observations[0].decision.as_ref().unwrap().pairs;
    assert!(pairs.contains_key(&1));
    assert!(!pairs.contains_key(&555) && !pairs.contains_key(&777));
}

#[test]
fn collusion_of_silence_and_injection_is_still_contained() {
    // One Byzantine identity plays announce-then-silent (diluting n_v), the other
    // injects ghost pairs. Both attacks run in the same execution.
    let adversary = Collusion::new(
        AnnounceThenSilent,
        1,
        GhostPairInjector::new(vec![(4_040, 4)]),
    );
    let inputs = vec![vec![(1, 10), (2, 20)]; 7];
    let observations = run(inputs, 2, adversary, 4);
    check_parallel_consensus(&observations).assert_passed("colluding attackers");
    let pairs = &observations[0].decision.as_ref().unwrap().pairs;
    assert_eq!(pairs.get(&1), Some(&10));
    assert_eq!(pairs.get(&2), Some(&20));
    assert!(!pairs.contains_key(&4_040));
}

#[test]
fn wide_instance_fan_out_terminates_in_one_phase() {
    // 32 concurrent instances shared by everyone decide together in the first phase.
    let pairs: Vec<(InstanceId, u64)> = (0..32).map(|i| (i, i * 3 + 1)).collect();
    let observations = run(vec![pairs.clone(); 5], 0, SilentAdversary, 5);
    check_parallel_consensus(&observations).assert_passed("wide fan-out");
    let decision = observations[0].decision.as_ref().unwrap();
    assert_eq!(decision.pairs.len(), 32);
    assert_eq!(decision.phase, 1);
}

#[test]
fn empty_input_sets_terminate_with_empty_outputs() {
    let observations = run(vec![vec![]; 5], 1, AnnounceThenSilent, 6);
    check_parallel_consensus(&observations).assert_passed("no inputs anywhere");
    assert!(observations
        .iter()
        .all(|o| o.decision.as_ref().unwrap().pairs.is_empty()));
}

#[test]
fn conflicting_opinions_for_the_same_identifier_resolve_to_one_value() {
    // Every node holds instance 5 but with its own opinion; agreement requires that
    // all nodes end up with the same (possibly absent) value for it.
    let inputs: Vec<Vec<(InstanceId, u64)>> = (0..7).map(|i| vec![(5, 1_000 + i as u64)]).collect();
    let observations = run(inputs, 2, AnnounceThenSilent, 7);
    check_parallel_consensus(&observations).assert_passed("conflicting opinions");
    // If the pair is output, the value must be one of the submitted opinions.
    if let Some(value) = observations[0].decision.as_ref().unwrap().pairs.get(&5) {
        assert!((1_000..1_007).contains(value));
    }
}
