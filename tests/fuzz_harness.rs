//! Integration suite for the scenario-sweep fuzz harness (`uba_bench::fuzz`):
//! the CI smoke grid must pass every property on the unmutated protocols, the
//! whole pipeline must be deterministic in the worker count, and serialized
//! counterexamples must replay.

use uba_bench::fuzz::{
    case_failures, default_grid, fuzz_grid, fuzz_table, run_case, FuzzCase, ProtocolId,
};
use uba_bench::montecarlo::{run_trials, SweepConfig};
use uba_core::sim::{AdversaryKind, AttackBehavior, AttackPlan};
use uba_simnet::sweep::ScenarioGrid;

/// The exact grid CI runs (`experiments -- fuzz --smoke`): every protocol and
/// baseline family × plans × churn × 2 derived seeds. All properties must hold —
/// this is the test that keeps the CI job green and meaningful.
#[test]
fn the_smoke_grid_passes_every_property() {
    let grid = default_grid(true);
    assert!(grid.len() >= 500, "the smoke grid must stay a real sweep");
    let outcome = fuzz_grid(&grid, 4, 3);
    assert_eq!(outcome.cases, grid.len());
    assert!(
        outcome.passed(),
        "smoke grid found counterexamples: {:?}",
        outcome
            .counterexamples
            .iter()
            .map(|ce| (ce.shrunk.describe(), ce.failures.clone()))
            .collect::<Vec<_>>()
    );
    let table = fuzz_table(&grid, &outcome).to_string();
    assert!(table.contains("consensus") && table.contains("known-rotor"));
}

/// Every case's full report must be byte-identical no matter how the trial pool
/// stripes the grid across workers — the property that makes fuzz results (and
/// CI failures) reproducible on any machine.
#[test]
fn fuzz_case_reports_do_not_depend_on_the_worker_count() {
    let grid = ScenarioGrid::new()
        .protocols(ProtocolId::ALL.to_vec())
        .sizes(vec![(5, 1)])
        .plans(vec![
            AttackPlan::preset(AdversaryKind::SplitVote),
            AttackPlan::collusion(
                AttackBehavior::Preset(AdversaryKind::SplitVote),
                1,
                AttackBehavior::Replay {
                    visible_to_even_raw_ids: false,
                },
            ),
        ])
        .trials(2)
        .base_seed(7);
    let run = |workers: usize| -> Vec<String> {
        let config = SweepConfig {
            trials: grid.len(),
            base_seed: 0,
            workers,
        };
        run_trials(&config, |index, _| {
            let case = FuzzCase::from_sweep(&grid.case(index));
            serde_json::to_string(&run_case(&case)).expect("reports serialise")
        })
    };
    let serial = run(1);
    assert_eq!(serial.len() as u64, grid.len());
    assert_eq!(serial, run(4));
    assert_eq!(serial, run(8));
}

/// A fuzz case serialises to JSON and replays to the same report — the reproducer
/// contract behind `experiments -- fuzz --replay`.
#[test]
fn serialized_cases_replay_identically() {
    let grid = default_grid(true);
    for index in [0, grid.len() / 2, grid.len() - 1] {
        let case = FuzzCase::from_sweep(&grid.case(index));
        let json = serde_json::to_string(&case).expect("cases serialise");
        let back: FuzzCase = serde_json::from_str(&json).expect("cases deserialise");
        assert_eq!(back, case);
        let original = run_case(&case);
        let replayed = run_case(&back);
        assert_eq!(original, replayed, "replay must reproduce the report");
        assert!(case_failures(&back, &replayed).is_empty());
    }
}

/// The shrinker round-trip contract behind `experiments -- fuzz --replay`:
/// every shrunk reproducer the harness emits, re-judged through the replay
/// oracle (`replay_failures` — the exact function the `--replay` driver calls),
/// reproduces the recorded failures *and* at least one failing property id of
/// the case it was shrunk from. Without the id check a shrinking move could
/// quietly trade the found bug for a different one that happens to fail on a
/// smaller scenario, and the pinned reproducer would document the wrong thing.
#[test]
fn shrunk_reproducers_replay_the_same_property_id() {
    use uba_bench::{
        boundary_grid_with, boundary_violations, fuzz_boundary, property_id, replay_failures,
    };
    use uba_simnet::IdSpace;
    // A cheap but diverse failing pool: three families at n = 3f under the full
    // plan axis, one identifier layout.
    let grid = boundary_grid_with(
        true,
        vec![
            ProtocolId::Consensus,
            ProtocolId::ReliableBroadcast,
            ProtocolId::ParallelConsensus,
        ],
        vec![IdSpace::default()],
    );
    let outcome = fuzz_boundary(&grid, 4, 8);
    assert!(
        !outcome.counterexamples.is_empty(),
        "the boundary pool must produce reproducers to round-trip"
    );
    for ce in &outcome.counterexamples {
        // The JSON the driver writes and reads back.
        let json = serde_json::to_string(&ce.shrunk).expect("cases serialise");
        let replayed_case: FuzzCase = serde_json::from_str(&json).expect("cases deserialise");
        let report = run_case(&replayed_case);
        let replayed = replay_failures(&replayed_case, &report);
        assert!(
            !replayed.is_empty(),
            "{}: a reproducer that replays green is stale (the --replay driver \
             exits non-zero on it)",
            ce.shrunk.describe()
        );
        assert_eq!(
            replayed,
            ce.failures,
            "{}: the replay reproduces the recorded failures byte-identically",
            ce.shrunk.describe()
        );
        let original_report = run_case(&ce.original);
        let original_ids: Vec<String> = boundary_violations(&ce.original, &original_report)
            .iter()
            .map(|failure| property_id(failure).to_string())
            .collect();
        assert!(
            replayed
                .iter()
                .any(|failure| original_ids.iter().any(|id| id == property_id(failure))),
            "{}: shrunk into a different bug — original ids {:?}, replayed {:?}",
            ce.original.describe(),
            original_ids,
            replayed
        );
    }
}

/// Guard parity for the search's reproducer file: a `SEARCH_counterexample.json`
/// is the same [`Counterexample`] JSON a grid fuzz writes, judged by the same
/// [`replay_failures`] oracle — so the stale-reproducer guard (a reproducer
/// that replays green makes `fuzz --replay` exit non-zero) covers search
/// findings exactly like grid findings. This runs a small boundary-seeded
/// search, round-trips its first counterexample through JSON, and checks the
/// replay reproduces the recorded failures with an original property id.
///
/// [`Counterexample`]: uba_bench::fuzz::Counterexample
#[test]
fn search_counterexamples_honour_the_stale_reproducer_guard() {
    use uba_bench::fuzz::Counterexample;
    use uba_bench::search::{search_grid, SearchConfig};
    use uba_bench::{boundary_grid_with, property_id, replay_failures};
    use uba_simnet::IdSpace;

    let grid = boundary_grid_with(
        true,
        vec![ProtocolId::Consensus, ProtocolId::ParallelConsensus],
        vec![IdSpace::default()],
    );
    let config = SearchConfig {
        restarts: 4,
        steps: 6,
        base_seed: 0x5EA2_C45E,
        workers: 4,
        max_counterexamples: 3,
    };
    let outcome = search_grid(&grid, &config);
    assert!(
        outcome.found_violation(),
        "the boundary-seeded search must find at least a boundary demonstration"
    );
    for ce in &outcome.counterexamples {
        // The exact JSON `experiments -- fuzz --search` writes to
        // SEARCH_counterexample.json.
        let json = serde_json::to_string_pretty(ce).expect("counterexamples serialise");
        let back: Counterexample = serde_json::from_str(&json).expect("counterexamples parse");
        assert_eq!(&back, ce);

        let report = run_case(&back.shrunk);
        let replayed = replay_failures(&back.shrunk, &report);
        assert!(
            !replayed.is_empty(),
            "{}: a search reproducer that replays green is stale (the --replay \
             driver exits non-zero on it)",
            back.shrunk.describe()
        );
        assert_eq!(
            replayed,
            back.failures,
            "{}: replay must reproduce the recorded failures byte-identically",
            back.shrunk.describe()
        );
        let original_report = run_case(&back.original);
        let original_ids: Vec<String> = replay_failures(&back.original, &original_report)
            .iter()
            .map(|failure| property_id(failure).to_string())
            .collect();
        assert!(
            replayed
                .iter()
                .any(|failure| original_ids.iter().any(|id| id == property_id(failure))),
            "{}: shrunk into a different bug — original ids {:?}, replayed {:?}",
            back.original.describe(),
            original_ids,
            replayed
        );
    }
}

/// Adaptive plan steps survive the property-id-preserving shrink round-trip:
/// when the violation is *driven by* a stateful adaptive behaviour, the
/// shrinker may drop redundant steps around it but never the adaptive step
/// itself — dropping it loses the violated property, so the candidate is
/// rejected. Pinned on the quorum-withholding schedule, which breaks parallel
/// consensus at `n = 3f` with no mutation hook involved.
#[test]
fn adaptive_steps_survive_the_shrink_round_trip() {
    use uba_bench::fuzz::shrink_case_with;
    use uba_bench::{boundary_violations, replay_failures};
    use uba_core::sim::Simulation;
    use uba_simnet::attack::{ActorRange, AdaptiveStrategy, AttackStep};

    let plan = AttackPlan::preset(AdversaryKind::Silent).step(
        AttackStep::new(AttackBehavior::Adaptive {
            strategy: AdaptiveStrategy::WithholdNearQuorum,
        })
        .actors(ActorRange::all()),
    );
    let case = FuzzCase {
        protocol: ProtocolId::ParallelConsensus,
        spec: Simulation::scenario()
            .correct(4)
            .byzantine(2)
            .seed(3)
            .max_rounds(150)
            .attack(plan)
            .spec()
            .clone(),
    };
    let report = run_case(&case);
    assert!(
        !boundary_violations(&case, &report).is_empty(),
        "the withholding schedule must split parallel consensus at n = 3f"
    );

    let counterexample = shrink_case_with(&case, &|candidate| {
        let report = run_case(candidate);
        replay_failures(candidate, &report)
    });
    let shrunk_plan = counterexample
        .shrunk
        .spec
        .attack
        .as_ref()
        .expect("the shrunk case keeps a plan");
    assert!(
        shrunk_plan
            .steps
            .iter()
            .any(|step| matches!(step.behavior, AttackBehavior::Adaptive { .. })),
        "the adaptive step is the violation's driver and must survive: {}",
        counterexample.shrunk.describe()
    );
    // The redundant silent step is shrinkable noise; the minimised plan is the
    // adaptive schedule alone.
    assert_eq!(
        shrunk_plan.steps.len(),
        1,
        "the redundant preset step must shrink away: {}",
        shrunk_plan.label()
    );
    assert!(
        !counterexample.shrunk.spec.admissible(),
        "shrinking preserves the boundary character of the demonstration"
    );
    // And the shrunk reproducer still replays its bug through the JSON the
    // harness writes.
    let json = serde_json::to_string(&counterexample.shrunk).expect("cases serialise");
    let back: FuzzCase = serde_json::from_str(&json).expect("cases parse");
    let report = run_case(&back);
    assert!(!replay_failures(&back, &report).is_empty());
}

/// The composed plan shapes (windows, collusion, subset announces, outliers,
/// replay) all drive real traffic against the consensus protocol without breaking
/// its guarantees — the sweep axes are live, not vacuous.
#[test]
fn composed_plans_inject_traffic_and_keep_consensus_safe() {
    use uba_core::sim::{ScenarioExt, Simulation};
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let plans = [
        AttackPlan::crash_window(AdversaryKind::SplitVote, 2, 6),
        AttackPlan::collusion(
            AttackBehavior::Preset(AdversaryKind::SplitVote),
            1,
            AttackBehavior::Preset(AdversaryKind::AnnounceThenSilent),
        ),
        AttackPlan::new().behavior(AttackBehavior::AnnounceToSubset {
            modulus: 3,
            remainder: 1,
        }),
        AttackPlan::new().behavior(AttackBehavior::Equivocate { low: 0, high: 1 }),
    ];
    for plan in plans {
        let report = Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(11)
            .attack(plan.clone())
            .consensus(&inputs)
            .run()
            .unwrap();
        assert!(
            report.messages.byzantine > 0,
            "plan {} must actually attack",
            plan.label()
        );
        let section = report.consensus.expect("consensus section");
        assert!(
            section.agreement && section.validity,
            "plan {}",
            plan.label()
        );
    }
}
