//! Tests of the parallel Monte-Carlo harness and the workload generators: results
//! must be independent of the worker count, trial seeds must be stable, and the
//! resilience sweeps must report perfect agreement inside the `n > 3f` bound for every
//! scripted adversary. Randomised cases are drawn from the workspace's deterministic
//! RNG (proptest is unavailable offline), so every run covers the same case set.

use rand::Rng;

use uba_bench::montecarlo::{aggregate, run_trials, ConsensusTrial, ResilienceSweep, SweepConfig};
use uba_bench::workload::{binary_inputs, clustered_with_outliers, split_ids, uniform_reals};
use uba_core::sim::AdversaryKind;
use uba_simnet::rng::seeded_rng;
use uba_simnet::stats::Summary;

#[test]
fn consensus_sweep_results_are_identical_across_worker_counts() {
    let run_with = |workers: usize| {
        ResilienceSweep {
            correct: 5,
            byzantine: 2,
            adversary: AdversaryKind::AnnounceThenSilent,
            config: SweepConfig {
                trials: 12,
                base_seed: 55,
                workers,
            },
        }
        .run()
    };
    let sequential = run_with(1);
    let parallel = run_with(4);
    let oversubscribed = run_with(32);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential, oversubscribed);
}

#[test]
fn resilience_sweeps_report_perfect_agreement_for_every_scripted_adversary() {
    for adversary in [
        AdversaryKind::Silent,
        AdversaryKind::AnnounceThenSilent,
        AdversaryKind::PartialAnnounce,
        AdversaryKind::SplitVote,
    ] {
        let outcome = ResilienceSweep {
            correct: 5,
            byzantine: 2,
            adversary,
            config: SweepConfig {
                trials: 10,
                base_seed: 2024,
                workers: 4,
            },
        }
        .run();
        assert_eq!(outcome.agreement.trials, 10);
        assert!(
            (outcome.agreement.rate() - 1.0).abs() < 1e-12,
            "agreement violated under {adversary:?}"
        );
        assert!((outcome.validity.rate() - 1.0).abs() < 1e-12);
        assert!(
            outcome.rounds.min >= 7.0,
            "a full phase takes at least seven rounds"
        );
    }
}

#[test]
fn trial_workloads_differ_across_trials_but_not_across_runs() {
    // The per-trial seeds must differ (otherwise the sweep is one execution repeated)
    // and must be reproducible across invocations.
    let config = SweepConfig {
        trials: 10,
        base_seed: 7,
        workers: 3,
    };
    let seeds_a = run_trials(&config, |_, seed| seed);
    let seeds_b = run_trials(&config, |_, seed| seed);
    assert_eq!(seeds_a, seeds_b);
    let mut unique = seeds_a.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds_a.len(), "trial seeds must be distinct");
}

#[test]
fn aggregation_matches_manual_computation() {
    let trials = vec![
        ConsensusTrial {
            agreement: true,
            validity: true,
            rounds: 7,
            messages: 200,
        },
        ConsensusTrial {
            agreement: true,
            validity: false,
            rounds: 17,
            messages: 400,
        },
        ConsensusTrial {
            agreement: false,
            validity: true,
            rounds: 27,
            messages: 600,
        },
    ];
    let outcome = aggregate(&trials);
    assert_eq!(outcome.agreement.successes, 2);
    assert_eq!(outcome.validity.successes, 2);
    assert!((outcome.rounds.mean - 17.0).abs() < 1e-12);
    assert!((outcome.messages.median - 400.0).abs() < 1e-12);
}

#[test]
fn summary_of_sweep_rounds_is_consistent_with_raw_trials() {
    let config = SweepConfig {
        trials: 8,
        base_seed: 31,
        workers: 2,
    };
    let rounds: Vec<u64> = run_trials(&config, |index, _| 7 + index % 3);
    let summary = Summary::of_u64(&rounds);
    assert_eq!(summary.count, 8);
    assert!(summary.min >= 7.0 && summary.max <= 9.0);
}

#[test]
fn binary_inputs_have_the_requested_composition() {
    let mut rng = seeded_rng(0x11);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..64);
        let fraction = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0u64..1_000);
        let inputs = binary_inputs(n, fraction, seed);
        assert_eq!(inputs.len(), n);
        let ones = inputs.iter().sum::<u64>() as usize;
        assert_eq!(ones, (n as f64 * fraction).round() as usize);
        assert!(inputs.iter().all(|&x| x <= 1));
    }
}

#[test]
fn uniform_reals_stay_in_range() {
    let mut rng = seeded_rng(0x22);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..64);
        let lo = rng.gen_range(-1_000.0f64..0.0);
        let width = rng.gen_range(0.001f64..1_000.0);
        let seed = rng.gen_range(0u64..1_000);
        let hi = lo + width;
        let values = uniform_reals(n, lo, hi, seed);
        assert_eq!(values.len(), n);
        assert!(values.iter().all(|&v| v >= lo && v <= hi));
    }
}

#[test]
fn clustered_outlier_count_is_exact() {
    let mut rng = seeded_rng(0x33);
    for _ in 0..32 {
        let n = rng.gen_range(4usize..40);
        let outliers = rng.gen_range(0usize..4);
        let seed = rng.gen_range(0u64..1_000);
        let values = clustered_with_outliers(n, 0.0, 1.0, outliers, seed);
        let far = values.iter().filter(|v| v.abs() > 10.0).count();
        assert_eq!(far, outliers);
    }
}

#[test]
fn split_ids_are_disjoint() {
    let mut rng = seeded_rng(0x44);
    for _ in 0..32 {
        let correct = rng.gen_range(1usize..30);
        let byzantine = rng.gen_range(0usize..10);
        let seed = rng.gen_range(0u64..1_000);
        let (c, b) = split_ids(correct, byzantine, seed);
        assert_eq!(c.len(), correct);
        assert_eq!(b.len(), byzantine);
        assert!(c.iter().all(|id| !b.contains(id)));
    }
}

#[test]
fn run_trials_worker_invariance() {
    let mut rng = seeded_rng(0x55);
    for _ in 0..16 {
        let trials = rng.gen_range(0u64..40);
        let seed = rng.gen_range(0u64..1_000);
        let workers = rng.gen_range(1usize..9);
        let base = SweepConfig {
            trials,
            base_seed: seed,
            workers: 1,
        };
        let multi = SweepConfig {
            trials,
            base_seed: seed,
            workers,
        };
        let a = run_trials(&base, |index, s| (index, s));
        let b = run_trials(&multi, |index, s| (index, s));
        assert_eq!(a, b);
    }
}
