//! Mutation-detection power of the margin-guided search: a planted consensus
//! bug (`uba_core::consensus::mutation::DECIDE_ON_EQUIVOCATION_PAIR`) whose
//! trigger — a *clean equivocation pair* in one node's input tally — is out of
//! reach of every scripted attack behaviour and every plan the default fuzz
//! grid enumerates. Only the stateful `AdaptiveStrategy::StarveWeakest`
//! schedule, which concentrates the full plausible vocabulary on the single
//! least-informed node, produces the shape; the grid sweep therefore stays
//! green with the mutation active, while [`search_grid`] — whose mutation moves
//! include the adaptive steps the grid cannot express — finds the admissible
//! agreement violation and shrinks it to a pure-adaptive reproducer.
//!
//! The hook is process-global, so this file holds a single test function and
//! runs alone in its own test binary (see `tests/fuzz_mutation.rs` for the
//! pattern).

use uba_bench::fuzz::{case_failures, fuzz_grid, replay_failures, run_case, FuzzCase, ProtocolId};
use uba_bench::search::{search_grid, SearchConfig};
use uba_core::consensus::mutation::set_decide_on_equivocation_pair;
use uba_simnet::attack::{AdaptiveStrategy, AttackBehavior, AttackPlan};
use uba_simnet::sim::{AdversaryKind, Simulation};
use uba_simnet::sweep::ScenarioGrid;

/// Restores the hook even if an assertion unwinds mid-test.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        set_decide_on_equivocation_pair(false);
    }
}

/// The consensus sliver both the grid sweep and the search are pointed at: one
/// admissible size, silent-preset plans only — every adaptive behaviour in the
/// search's findings got there through the search's own mutation moves.
fn consensus_sliver() -> ScenarioGrid<ProtocolId> {
    ScenarioGrid::new()
        .protocols(vec![ProtocolId::Consensus])
        .sizes(vec![(7, 2)])
        .plans(vec![AttackPlan::preset(AdversaryKind::Silent)])
        .trials(2)
        .base_seed(0xF0CC_5EED)
        .max_rounds(400)
}

fn starve_weakest_case(seed: u64) -> FuzzCase {
    FuzzCase {
        protocol: ProtocolId::Consensus,
        spec: Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(seed)
            .max_rounds(400)
            .attack(AttackPlan::new().behavior(AttackBehavior::Adaptive {
                strategy: AdaptiveStrategy::StarveWeakest,
            }))
            .spec()
            .clone(),
    }
}

fn has_adaptive_step(case: &FuzzCase) -> bool {
    case.spec
        .attack
        .as_ref()
        .map(|plan| {
            plan.steps
                .iter()
                .any(|step| matches!(step.behavior, AttackBehavior::Adaptive { .. }))
        })
        .unwrap_or(false)
}

#[test]
fn the_search_finds_the_adaptive_only_consensus_mutation_the_grid_misses() {
    let _guard = HookGuard;

    // Without the mutation, the starving schedule is harmless in the
    // admissible region — the planted hook, not the adversary, is the bug.
    set_decide_on_equivocation_pair(false);
    for seed in 0..4u64 {
        let case = starve_weakest_case(seed);
        let report = run_case(&case);
        assert_eq!(
            case_failures(&case, &report),
            Vec::<String>::new(),
            "adaptive schedule must be harmless without the mutation (seed {seed})"
        );
    }

    set_decide_on_equivocation_pair(true);
    let grid = consensus_sliver();

    // The enumerated sweep cannot reach the trigger: no grid plan carries an
    // adaptive behaviour, so the mutation survives the entire grid.
    let sweep = fuzz_grid(&grid, 4, 3);
    assert!(
        sweep.passed(),
        "the grid sweep must miss the adaptive-only mutation, found {:?}",
        sweep
            .counterexamples
            .iter()
            .map(|ce| ce.shrunk.describe())
            .collect::<Vec<_>>(),
    );

    // The search, seeded from the very same grid, mutates its way to an
    // adaptive schedule and catches the planted bug as an *admissible*
    // agreement violation.
    let outcome = search_grid(&grid, &SearchConfig::smoke(4));
    assert!(outcome.found_violation(), "search must find the mutation");
    let counterexample = outcome
        .counterexamples
        .iter()
        .find(|ce| ce.original.spec.admissible())
        .expect("an admissible violation, not just a boundary demonstration");
    assert_eq!(counterexample.original.protocol, ProtocolId::Consensus);
    assert!(
        counterexample
            .failures
            .iter()
            .any(|failure| failure.contains("consensus/agreement")),
        "the planted bug is an agreement violation: {:?}",
        counterexample.failures,
    );

    // Shrinking keeps the bug's identity: still admissible, still driven by an
    // adaptive step (dropping it loses the violation, so the shrinker cannot),
    // and small — the blanket fuzz-harness pin allows 8 total nodes and the
    // shrunk reproducer fits it.
    let shrunk = &counterexample.shrunk;
    assert!(shrunk.spec.admissible(), "shrinking must stay admissible");
    assert!(
        has_adaptive_step(shrunk),
        "the adaptive step is the trigger and must survive shrinking: {}",
        shrunk.describe(),
    );
    assert!(
        shrunk.spec.correct + shrunk.spec.byzantine <= 8,
        "shrunk reproducer too large: {}",
        shrunk.describe(),
    );

    // Replay parity discriminates the mutation: the reproducer fails exactly
    // while the hook is active.
    for case in [&counterexample.original, shrunk] {
        let report = run_case(case);
        assert!(
            !replay_failures(case, &report).is_empty(),
            "hook-on replay must reproduce: {}",
            case.describe(),
        );
    }
    set_decide_on_equivocation_pair(false);
    for case in [&counterexample.original, shrunk] {
        let report = run_case(case);
        assert_eq!(
            replay_failures(case, &report),
            Vec::<String>::new(),
            "hook-off replay must be green: {}",
            case.describe(),
        );
    }
}
