//! Integration tests for approximate agreement (Algorithm 4, Theorem 4), its iterated
//! and dynamic variants (Section XI) and the subset-join observation (Section XII),
//! verified through the `uba-checker` oracles.

use uba_bench::workload::{clustered_with_outliers, rolling_churn_plan, uniform_reals};
use uba_checker::approx::{check_approx, check_approx_real, check_convergence};
use uba_core::approx::{ApproxAgreement, IteratedApproxAgreement};
use uba_core::dynamic_approx::{run_dynamic_approx, subset_join_value, ChurnPlan};
use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
use uba_core::Real;
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, NodeId, SyncEngine};

#[test]
fn single_shot_satisfies_theorem_4_across_sizes_and_inputs() {
    for &(n, f) in &[(4usize, 1usize), (7, 2), (13, 4), (31, 10)] {
        let inputs = uniform_reals(n - f, -50.0, 150.0, 2_000 + n as u64);
        let report = Simulation::scenario()
            .correct(n - f)
            .byzantine(f)
            .seed(1_000 + n as u64)
            .adversary(AdversaryKind::Worst)
            .approx(&inputs)
            .run()
            .expect("approx run completes");
        let section = report.approx.as_ref().expect("approx section");
        check_approx(&section.inputs, &section.outputs)
            .assert_passed(&format!("single-shot approx with n = {n}, f = {f}"));
        assert!(section.outputs_in_range);
        assert!(section.contraction < 1.0);
    }
}

#[test]
fn sensor_style_outliers_are_trimmed_away() {
    // Most correct inputs cluster around 100; three are wild outliers. The Byzantine
    // nodes additionally push extreme values. Outputs must stay inside the *correct*
    // input range (which includes the honest outliers) and contract.
    let inputs = clustered_with_outliers(10, 100.0, 2.0, 3, 7);
    let report = Simulation::scenario()
        .correct(10)
        .byzantine(3)
        .seed(31)
        .adversary(AdversaryKind::Worst)
        .approx(&inputs)
        .run()
        .expect("approx run completes");
    let section = report.approx.as_ref().expect("approx section");
    check_approx(&section.inputs, &section.outputs)
        .assert_passed("clustered inputs with honest outliers");
}

#[test]
fn per_sender_deduplication_keeps_byzantine_stuffing_out() {
    // A single Byzantine identity sends five different extreme values to the same
    // node in round 1; only one of them may count towards R_v.
    let ids = IdSpace::default().generate(5, 17);
    let byz = NodeId::new(999_000);
    let inputs = [10.0, 11.0, 12.0, 13.0, 14.0];
    let nodes: Vec<ApproxAgreement> = ids
        .iter()
        .zip(&inputs)
        .map(|(&id, &x)| ApproxAgreement::new(id, Real::from_f64(x)))
        .collect();
    let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Real>| {
        if view.round != 1 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &to in view.correct_ids {
            for k in 0..5 {
                out.push(Directed::new(byz, to, Real::from_f64(-1e6 - k as f64)));
            }
        }
        out
    });
    let mut engine = SyncEngine::new(nodes, adversary, vec![byz]);
    engine.run_to_output(4).unwrap();
    let outputs: Vec<Real> = engine
        .outputs()
        .into_iter()
        .map(|(_, o)| o.unwrap())
        .collect();
    let input_reals: Vec<Real> = inputs.iter().map(|&x| Real::from_f64(x)).collect();
    check_approx_real(&input_reals, &outputs).assert_passed("value-stuffing adversary");
    for node in engine.nodes() {
        assert_eq!(
            node.n_v(),
            6,
            "5 correct senders + exactly one counted Byzantine sender"
        );
    }
}

#[test]
fn iterated_agreement_halves_every_iteration_and_checker_confirms() {
    let inputs = uniform_reals(12, 0.0, 640.0, 5);
    let spreads = Simulation::scenario()
        .correct(12)
        .byzantine(3)
        .seed(99)
        .iterated_approx(&inputs, 8)
        .run()
        .expect("iterated run completes")
        .spreads
        .expect("spread section")
        .per_iteration;
    assert_eq!(spreads.len(), 8);
    check_convergence(&spreads).assert_passed("iterated halving");
    assert!(*spreads.last().unwrap() < 640.0 / 2f64.powi(7) * 1.01);
}

#[test]
fn iterated_agreement_with_injected_values_recovers() {
    // Model a value injection between iterations (a proxy for a node replacing its
    // state after a reconfiguration): convergence must resume afterwards.
    let ids = IdSpace::default().generate(9, 3);
    let nodes: Vec<IteratedApproxAgreement> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| IteratedApproxAgreement::new(id, Real::from_int(i as i64 * 8), 10))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_rounds(3).unwrap();
    engine.nodes_mut()[0].inject_value(Real::from_int(10_000));
    engine.run_to_termination(20).unwrap();
    let finals: Vec<f64> = engine
        .outputs()
        .into_iter()
        .map(|(_, o)| o.unwrap().to_f64())
        .collect();
    let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 200.0,
        "convergence must resume after the injection, spread = {spread}"
    );
}

#[test]
fn dynamic_network_reconverges_after_every_join() {
    let ids = IdSpace::default().generate(10, 11);
    let inputs = uniform_reals(10, 0.0, 100.0, 13);
    let initial: Vec<(NodeId, Real)> = ids
        .iter()
        .zip(&inputs)
        .map(|(&id, &x)| (id, Real::from_f64(x)))
        .collect();
    // Churn stops at round 24; the run continues to round 32 so the system has a
    // churn-free tail to reconverge in.
    let plan = rolling_churn_plan(&ids, 24, 6, 0.0, 100.0, 17);
    let report = run_dynamic_approx(&initial, &plan, 32).expect("dynamic run completes");
    // Joiner values come from the same [0, 100] range, so the spread can never exceed
    // the original range, and well after the last join it must have collapsed again.
    assert!(report.spread_per_round.iter().all(|&s| s <= 100.0 + 1e-6));
    assert!(
        report.final_spread() < 5.0,
        "final spread {}",
        report.final_spread()
    );
}

#[test]
fn dynamic_network_without_churn_matches_the_static_iterated_protocol() {
    let ids = IdSpace::default().generate(8, 21);
    let inputs = uniform_reals(8, -10.0, 10.0, 22);
    let initial: Vec<(NodeId, Real)> = ids
        .iter()
        .zip(&inputs)
        .map(|(&id, &x)| (id, Real::from_f64(x)))
        .collect();
    let report = run_dynamic_approx(&initial, &ChurnPlan::none(), 6).expect("run completes");
    check_convergence(&report.spread_per_round[1..]).assert_passed("churn-free dynamic run");
}

#[test]
fn subset_join_brings_a_newcomer_into_the_cluster() {
    // Section XII: nodes already agree around 42; a newcomer with a wild value runs
    // one Algorithm 4 step against a 7-node subset and must land inside the cluster.
    let subset: Vec<Real> = [41.8, 41.9, 42.0, 42.0, 42.1, 42.2, 42.3]
        .iter()
        .map(|&x| Real::from_f64(x))
        .collect();
    for &outlier in &[-1e6, 0.0, 1e9] {
        let joined = subset_join_value(Real::from_f64(outlier), &subset);
        assert!(
            joined >= Real::from_f64(41.8) && joined <= Real::from_f64(42.3),
            "joiner with input {outlier} landed at {joined}, outside the cluster"
        );
    }
}
