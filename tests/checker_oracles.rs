//! End-to-end tests of the `uba-checker` oracles against live protocol executions:
//! real runs must pass, and *tampered* observations must be caught. The tampering
//! tests are what protect the rest of the suite from a silently vacuous oracle.

use std::collections::BTreeSet;

use uba_checker::broadcast::{check_reliable_broadcast, observe, NodeAcceptances, SenderTruth};
use uba_checker::chain::{check_chain_growth, check_chain_prefix, ChainObservation};
use uba_checker::consensus::{check_consensus, ConsensusCheck, ConsensusObservation};
use uba_checker::rotor::{check_rotor, RotorCheck, RotorObservation};
use uba_core::adversaries::{AnnounceThenSilent, EquivocatingSource};
use uba_core::consensus::Consensus;
use uba_core::reliable_broadcast::ReliableBroadcast;
use uba_core::rotor::RotorCoordinator;
use uba_core::total_order::{OrderedEvent, TotalOrderNode};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, NodeId, Protocol, SyncEngine};

#[test]
fn live_broadcast_run_passes_and_tampered_observations_fail() {
    let ids = IdSpace::default().generate(9, 1);
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let source = ids[0];
    let nodes: Vec<ReliableBroadcast<u64>> = ids[..7]
        .iter()
        .map(|&id| {
            if id == source {
                ReliableBroadcast::sender(id, 42u64)
            } else {
                ReliableBroadcast::receiver(id, source)
            }
        })
        .collect();
    let mut engine = SyncEngine::new(nodes, AnnounceThenSilent, byz);
    engine.run_rounds(12).unwrap();

    let observations = observe(engine.nodes());
    let truth = SenderTruth::Correct(42u64);
    check_reliable_broadcast(&truth, &observations, engine.round())
        .assert_passed("live reliable broadcast");

    // Tamper 1: pretend one node accepted a value the correct source never sent.
    let mut forged = observations.clone();
    forged[2]
        .accepted
        .push(uba_core::reliable_broadcast::Accepted {
            message: 666,
            source,
            round: 5,
        });
    let report = check_reliable_broadcast(&truth, &forged, engine.round());
    assert!(report
        .violations
        .iter()
        .any(|v| v.property == "reliable-broadcast/unforgeability"));

    // Tamper 2: erase one node's acceptance entirely.
    let mut missing = observations.clone();
    missing[3].accepted.clear();
    let report = check_reliable_broadcast(&truth, &missing, engine.round());
    assert!(report
        .violations
        .iter()
        .any(|v| v.property == "reliable-broadcast/correctness"));
}

#[test]
fn equivocating_source_run_is_consistent_across_nodes() {
    let ids = IdSpace::default().generate(9, 3);
    let byz: Vec<NodeId> = ids[7..].to_vec();
    let source = byz[0];
    let nodes: Vec<ReliableBroadcast<u64>> = ids[..7]
        .iter()
        .map(|&id| ReliableBroadcast::receiver(id, source))
        .collect();
    let mut engine = SyncEngine::new(nodes, EquivocatingSource::new(source, 1u64, 2u64), byz);
    engine.run_rounds(12).unwrap();
    let observations: Vec<NodeAcceptances<u64>> = observe(engine.nodes());
    check_reliable_broadcast(&SenderTruth::Byzantine, &observations, engine.round())
        .assert_passed("equivocating source is exposed consistently");
}

#[test]
fn live_consensus_passes_and_a_flipped_decision_fails() {
    let ids = IdSpace::default().generate(7, 5);
    let nodes: Vec<Consensus<u64>> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| Consensus::new(id, (i % 2) as u64))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_to_termination(300).unwrap();
    let observations: Vec<ConsensusObservation<u64>> = engine
        .nodes()
        .iter()
        .map(|node| ConsensusObservation {
            node: Protocol::id(node),
            input: *node.input(),
            decision: node.decision().cloned(),
        })
        .collect();
    check_consensus(&observations, ConsensusCheck::default()).assert_passed("live consensus");

    let mut tampered = observations.clone();
    if let Some(decision) = tampered[0].decision.as_mut() {
        decision.value = 1 - decision.value;
    }
    let report = check_consensus(&tampered, ConsensusCheck::default());
    assert!(report
        .violations
        .iter()
        .any(|v| v.property == "consensus/agreement"));

    // A too-tight round bound is also reported.
    let strict = check_consensus(
        &observations,
        ConsensusCheck {
            expect_termination: true,
            round_bound: Some(1),
        },
    );
    assert!(strict
        .violations
        .iter()
        .any(|v| v.property == "consensus/round-bound"));
}

#[test]
fn live_rotor_passes_and_a_fabricated_history_fails() {
    let ids = IdSpace::default().generate(7, 9);
    let nodes: Vec<RotorCoordinator<u64>> = ids
        .iter()
        .map(|&id| RotorCoordinator::new(id, id.raw()))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    engine.run_to_termination(100).unwrap();
    let correct: BTreeSet<NodeId> = engine.correct_ids().into_iter().collect();
    let observations: Vec<RotorObservation<u64>> = engine
        .nodes()
        .iter()
        .map(|node| RotorObservation {
            node: Protocol::id(node),
            history: node.state().history().to_vec(),
            terminated: node.state().terminated(),
        })
        .collect();
    check_rotor(
        &correct,
        &observations,
        RotorCheck {
            n: 7,
            expect_termination: true,
        },
    )
    .assert_passed("live rotor");

    // Tamper: rewrite one node's selections so no common correct coordinator exists.
    let mut tampered = observations.clone();
    for record in &mut tampered[0].history {
        record.coordinator = NodeId::new(123_456_789);
    }
    let report = check_rotor(
        &correct,
        &tampered,
        RotorCheck {
            n: 7,
            expect_termination: true,
        },
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.property == "rotor/good-round"));
}

#[test]
fn live_total_order_chains_pass_and_a_reordered_chain_fails() {
    // A small static total-ordering run: every node submits one event per round.
    let ids = IdSpace::default().generate(4, 13);
    let nodes: Vec<TotalOrderNode<u64>> =
        ids.iter().map(|&id| TotalOrderNode::founding(id)).collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
    for round in 0..60u64 {
        for (i, node) in engine.nodes_mut().iter_mut().enumerate() {
            if round % 4 == 0 {
                node.submit_event(1_000 * (i as u64 + 1) + round);
            }
        }
        engine.run_round().unwrap();
    }
    let observations: Vec<ChainObservation<u64>> = engine
        .nodes()
        .iter()
        .map(|node| ChainObservation {
            node: Protocol::id(node),
            chain: node.chain().to_vec(),
            joined_round: 0,
        })
        .collect();
    assert!(
        observations.iter().any(|o| !o.chain.is_empty()),
        "the run must have finalised some events"
    );
    check_chain_prefix(&observations).assert_passed("live total ordering");

    // Tamper: swap two entries of one node's chain.
    let mut tampered = observations.clone();
    if tampered[0].chain.len() >= 2 {
        tampered[0].chain.swap(0, 1);
        if tampered[0].chain[0] != observations[0].chain[0] {
            let report = check_chain_prefix(&tampered);
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.property == "total-order/chain-prefix"),
                "a reordered chain must be caught"
            );
        }
    }
}

#[test]
fn chain_growth_oracle_distinguishes_progress_from_stalls() {
    let growing = vec![
        vec![(NodeId::new(1), 0), (NodeId::new(2), 0)],
        vec![(NodeId::new(1), 3), (NodeId::new(2), 3)],
        vec![(NodeId::new(1), 6), (NodeId::new(2), 6)],
    ];
    check_chain_growth(&growing, 1).assert_passed("growing chains");
    let stalled = vec![vec![(NodeId::new(1), 4)], vec![(NodeId::new(1), 4)]];
    let report = check_chain_growth(&stalled, 1);
    assert!(report
        .violations
        .iter()
        .any(|v| v.property == "total-order/chain-growth"));
}

#[test]
fn ordered_event_round_is_what_joins_chains_across_nodes() {
    // Sanity check of the OrderedEvent shape used throughout: ordering is by round
    // first, so two nodes that finalise the same instances produce identical chains.
    let a = OrderedEvent {
        round: 1,
        witness: NodeId::new(5),
        event: 10u64,
    };
    let b = OrderedEvent {
        round: 2,
        witness: NodeId::new(4),
        event: 20u64,
    };
    assert!(a < b);
}
