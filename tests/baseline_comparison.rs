//! Integration tests comparing the id-only algorithms with the classic baselines that
//! know `n` and `f` — the empirical backing of the paper's Section XII claim that
//! removing that knowledge "does not change much" in terms of cost. Both sides of
//! every comparison run through the same `Simulation` builder, pointed at different
//! protocol factories.

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_core::quorum::max_faults;
use uba_core::sim::{AdversaryKind, ScenarioBuilder, ScenarioExt, Simulation};
use uba_simnet::IdSpace;

fn id_only(correct: usize, byzantine: usize, seed: u64) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .seed(seed)
}

fn baseline(correct: usize, byzantine: usize) -> ScenarioBuilder {
    Simulation::scenario()
        .correct(correct)
        .byzantine(byzantine)
        .ids(IdSpace::Consecutive)
        .seed(0)
}

#[test]
fn consensus_round_complexity_is_within_a_small_factor_of_phase_king() {
    for f in 1..=3usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let ours = id_only(correct, f, 11 * f as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .consensus(&inputs)
            .run()
            .unwrap();

        let king = baseline(correct, f)
            .max_rounds(300)
            .build(PhaseKingFactory::new(inputs))
            .run()
            .unwrap();
        assert!(king.completed());

        // Both are O(f); the id-only algorithm may pay a small constant factor (its
        // phases are five rounds instead of three) but no more.
        assert!(
            ours.rounds <= 4 * king.rounds + 10,
            "f = {f}: id-only took {} rounds vs phase-king {}",
            ours.rounds,
            king.rounds
        );
    }
}

#[test]
fn broadcast_message_complexity_is_within_a_small_factor_of_srikanth_toueg() {
    for &n in &[7usize, 13, 25] {
        let f = max_faults(n);
        let ours = id_only(n - f, f, n as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .broadcast(7)
            .rounds(8)
            .run()
            .unwrap();

        let st = baseline(n - f, f)
            .build(StBroadcastFactory::new(7))
            .rounds(8)
            .run()
            .unwrap();
        let st_messages = st.messages.correct.max(1);

        let ratio = ours.messages.correct as f64 / st_messages as f64;
        assert!(
            ratio < 4.0,
            "n = {n}: id-only RB used {ratio}× the messages of Srikanth–Toueg"
        );
        // Both are Θ(n²) per broadcast: the absolute counts grow quadratically.
        assert!(ours.messages.correct as usize >= (n - f) * (n - f));
    }
}

#[test]
fn rotor_uses_more_rounds_than_the_known_f_rotor_but_stays_linear() {
    for &n in &[8usize, 16, 32] {
        let f = max_faults(n);
        let ours = id_only(n - f, f, n as u64)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .rotor()
            .run()
            .unwrap();
        assert!(ours.completed());
        assert!(ours.rotor.as_ref().unwrap().good_round);

        let known = baseline(n - f, f)
            .max_rounds(3 * n as u64 + 10)
            .build(KnownRotorFactory)
            .run()
            .unwrap();
        assert!(known.completed());

        // Known-f rotor needs f + 2 rounds; the id-only rotor needs O(n) — that gap is
        // the price of not knowing f, and it must not exceed linear.
        assert!(
            ours.rounds as usize <= n + 5,
            "n = {n}: rotor took {} rounds",
            ours.rounds
        );
        assert!(known.rounds as usize <= f + 2);
    }
}

#[test]
fn approx_agreement_contraction_matches_the_dolev_baseline() {
    let correct = 11usize;
    let f = 4usize;
    let inputs: Vec<f64> = (0..correct).map(|i| i as f64 * 9.0).collect();
    let ours = id_only(correct, f, 99)
        .adversary(AdversaryKind::Worst)
        .approx(&inputs)
        .run()
        .unwrap();
    let section = ours.approx.as_ref().unwrap();
    assert!(section.outputs_in_range);
    assert!(
        section.contraction <= 0.5 + 1e-9,
        "Algorithm 4 halves the range, got {}",
        section.contraction
    );

    let dolev = baseline(correct, f)
        .max_rounds(4)
        .build(DolevApproxFactory::new(inputs))
        .run()
        .unwrap();
    // Same convergence regime (both at most ½ per round, fault-free here).
    assert!(dolev.approx.as_ref().unwrap().contraction <= 0.5 + 1e-9);
}
