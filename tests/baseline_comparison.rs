//! Integration tests comparing the id-only algorithms with the classic baselines that
//! know `n` and `f` — the empirical backing of the paper's Section XII claim that
//! removing that knowledge "does not change much" in terms of cost.

use uba_baselines::{DolevApprox, KnownRotor, PhaseKing, StBroadcast};
use uba_core::quorum::max_faults;
use uba_core::runner::{
    run_approx, run_broadcast_correct_source, run_consensus, run_rotor, AdversaryKind, Scenario,
};
use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{IdSpace, SyncEngine};

#[test]
fn consensus_round_complexity_is_within_a_small_factor_of_phase_king() {
    for f in 1..=3usize {
        let n = 3 * f + 1;
        let correct = n - f;
        let inputs: Vec<u64> = (0..correct).map(|i| (i % 2) as u64).collect();
        let scenario = Scenario::new(correct, f, 11 * f as u64);
        let ours =
            run_consensus(&scenario, &inputs, AdversaryKind::AnnounceThenSilent).unwrap();

        let ids = IdSpace::Consecutive.generate(n, 0);
        let nodes: Vec<_> = ids[..correct]
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| PhaseKing::new(id, ids.clone(), f, x))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
        engine.run_until_all_terminated(300).unwrap();
        let baseline_rounds = engine.round();

        // Both are O(f); the id-only algorithm may pay a small constant factor (its
        // phases are five rounds instead of three) but no more.
        assert!(
            ours.rounds <= 4 * baseline_rounds + 10,
            "f = {f}: id-only took {} rounds vs phase-king {baseline_rounds}",
            ours.rounds
        );
    }
}

#[test]
fn broadcast_message_complexity_is_within_a_small_factor_of_srikanth_toueg() {
    for &n in &[7usize, 13, 25] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, n as u64);
        let ours = run_broadcast_correct_source(&scenario, 7, 8).unwrap();

        let ids = IdSpace::Consecutive.generate(n, 0);
        let source = ids[0];
        let nodes: Vec<_> = ids[..n - f]
            .iter()
            .map(|&id| {
                if id == source {
                    StBroadcast::sender(id, f, 7u64)
                } else {
                    StBroadcast::receiver(id, source, f)
                }
            })
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
        engine.run_rounds(8).unwrap();
        let baseline = engine.metrics().correct_messages.max(1);

        let ratio = ours.messages as f64 / baseline as f64;
        assert!(
            ratio < 4.0,
            "n = {n}: id-only RB used {}× the messages of Srikanth–Toueg",
            ratio
        );
        // Both are Θ(n²) per broadcast: the absolute counts grow quadratically.
        assert!(ours.messages as usize >= (n - f) * (n - f));
    }
}

#[test]
fn rotor_uses_more_rounds_than_the_known_f_rotor_but_stays_linear() {
    for &n in &[8usize, 16, 32] {
        let f = max_faults(n);
        let scenario = Scenario::new(n - f, f, n as u64);
        let ours = run_rotor(&scenario, AdversaryKind::AnnounceThenSilent).unwrap();

        let ids = IdSpace::Consecutive.generate(n, 0);
        let nodes: Vec<_> =
            ids[..n - f].iter().map(|&id| KnownRotor::new(id, f, id.raw())).collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[n - f..].to_vec());
        engine.run_until_all_terminated(3 * n as u64 + 10).unwrap();
        let baseline_rounds = engine.round();

        // Known-f rotor needs f + 2 rounds; the id-only rotor needs O(n) — that gap is
        // the price of not knowing f, and it must not exceed linear.
        assert!(ours.rounds as usize <= n + 5, "n = {n}: rotor took {} rounds", ours.rounds);
        assert!(baseline_rounds as usize <= f + 2);
        assert!(ours.good_round);
    }
}

#[test]
fn approx_agreement_contraction_matches_the_dolev_baseline() {
    let correct = 11usize;
    let f = 4usize;
    let inputs: Vec<f64> = (0..correct).map(|i| i as f64 * 9.0).collect();
    let scenario = Scenario::new(correct, f, 99);
    let ours = run_approx(&scenario, &inputs).unwrap();
    assert!(ours.outputs_in_range);
    assert!(ours.contraction <= 0.5 + 1e-9, "Algorithm 4 halves the range, got {}", ours.contraction);

    let ids = IdSpace::Consecutive.generate(correct + f, 0);
    let nodes: Vec<_> = ids[..correct]
        .iter()
        .zip(&inputs)
        .map(|(&id, &x)| DolevApprox::new(id, f, (x * 1e6) as i64))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, ids[correct..].to_vec());
    engine.run_until_all_output(4).unwrap();
    let outputs: Vec<f64> =
        engine.outputs().into_iter().map(|(_, o)| o.unwrap() as f64 / 1e6).collect();
    let lo = outputs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = outputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let baseline_contraction = (hi - lo) / 90.0;
    // Same convergence regime (both at most ½ per round, fault-free here).
    assert!(baseline_contraction <= 0.5 + 1e-9);
}
