//! Event-engine equivalence suite: the discrete-event scheduler behind
//! `EngineKind::Event` must be a *conservative extension* of the synchronous
//! engine. Three layers of evidence:
//!
//! 1. under zero-jitter timing (`TimingSpec::synchronous()`) every protocol
//!    family and baseline produces a `RunReport` **byte-identical** to the
//!    synchronous engine's — same rounds, message counts, deliveries,
//!    per-round metrics, outputs and verdicts, serial and parallel alike;
//! 2. the timing features the synchronous engine cannot express are
//!    deterministic: seeded same-instant reordering reproduces exactly, and
//!    every family runs reproducibly under a GST partial-synchrony model;
//! 3. a GST scenario demonstrates behaviour outside the synchronous model:
//!    under a late stabilisation time the network is totally silent — zero
//!    deliveries, a state the synchronous engine cannot express, where round-1
//!    traffic always arrives in round 2 — and the queued announcements only
//!    materialise once virtual time crosses GST, too late for the
//!    round-programmed protocol to act on them.

use uba_baselines::{DolevApproxFactory, KnownRotorFactory, PhaseKingFactory, StBroadcastFactory};
use uba_core::sim::{
    AdversaryKind, ParallelConsensusFactory, RunReport, ScenarioExt, Simulation, TotalOrderPlan,
};
use uba_simnet::{DelaySpec, EngineKind, IdSpace, StopCondition, TimingSpec};

/// One scenario family: a closure building and running the harness under the
/// given engine (None = synchronous) and step mode.
type Build = Box<dyn Fn(Option<EngineKind>, bool) -> RunReport>;

/// The ten protocol/baseline families, with the exact recipes of the
/// engine-equivalence suite (tests/engine_equivalence.rs).
fn families() -> Vec<(&'static str, Build)> {
    let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
    let approx_inputs: Vec<f64> = (0..7).map(|i| i as f64 * 5.0).collect();
    let pairs: Vec<(u64, u64)> = (0..4).map(|i| (i, 50 + i)).collect();
    // Per-closure copies: every family! body is a `move` closure.
    let consensus_inputs = inputs.clone();
    let phase_king_inputs = inputs;

    // Applies the engine choice to a builder, then the step mode to the
    // harness, without ever touching `engine_mut()` (which is sync-only).
    macro_rules! family {
        ($name:literal, |$scenario:ident| $harness:expr) => {
            ($name, {
                Box::new(move |engine: Option<EngineKind>, parallel: bool| {
                    let mut $scenario = Simulation::scenario();
                    if let Some(engine) = engine {
                        $scenario = $scenario.engine(engine);
                    }
                    let mut harness = $harness;
                    if parallel {
                        harness = harness.parallel_stepping().parallel_threshold(1);
                    }
                    harness.run().unwrap()
                }) as Build
            })
        };
    }

    vec![
        family!("consensus", |s| {
            let inputs = consensus_inputs.clone();
            s.correct(7)
                .byzantine(2)
                .seed(42)
                .adversary(AdversaryKind::SplitVote)
                .consensus(&inputs)
        }),
        family!("reliable-broadcast", |s| s
            .correct(7)
            .byzantine(2)
            .seed(43)
            .adversary(AdversaryKind::PartialAnnounce)
            .broadcast(42)
            .rounds(12)),
        family!("rotor", |s| s
            .correct(7)
            .byzantine(2)
            .seed(44)
            .adversary(AdversaryKind::AnnounceThenSilent)
            .rotor()),
        family!("approx", |s| {
            let approx_inputs = approx_inputs.clone();
            s.correct(7)
                .byzantine(2)
                .seed(45)
                .adversary(AdversaryKind::Worst)
                .approx(&approx_inputs)
        }),
        family!("parallel-consensus", |s| {
            let pairs = pairs.clone();
            s.correct(7)
                .byzantine(2)
                .seed(46)
                .max_rounds(500)
                .adversary(AdversaryKind::Worst)
                .build(ParallelConsensusFactory::new(pairs))
        }),
        family!("total-order", |s| {
            let plan = TotalOrderPlan::rounds(20)
                .event(2, 0, 11)
                .event(3, 1, 22)
                .leave(10, 2);
            s.correct(7)
                .byzantine(2)
                .seed(0xE0)
                .max_rounds(100)
                .adversary(AdversaryKind::Worst)
                .total_order(plan)
        }),
        family!("phase-king", |s| {
            let inputs = phase_king_inputs.clone();
            s.correct(7)
                .byzantine(2)
                .ids(IdSpace::Consecutive)
                .seed(0)
                .max_rounds(300)
                .build(PhaseKingFactory::new(inputs))
        }),
        family!("srikanth-toueg", |s| s
            .correct(7)
            .byzantine(2)
            .ids(IdSpace::Consecutive)
            .seed(0)
            .build(StBroadcastFactory::new(42))
            .rounds(8)),
        family!("known-rotor", |s| s
            .correct(7)
            .byzantine(2)
            .ids(IdSpace::Consecutive)
            .seed(0)
            .max_rounds(100)
            .build(KnownRotorFactory)),
        family!("dolev-approx", |s| {
            let inputs: Vec<f64> = (0..8).map(|i| i as f64 * 3.0).collect();
            s.correct(8)
                .byzantine(2)
                .ids(IdSpace::Consecutive)
                .seed(0)
                .build(DolevApproxFactory::new(inputs))
        }),
    ]
}

/// Strips the engine marker so sync and zero-jitter event reports can be
/// compared field-for-field: the scenario *axis* necessarily differs, the
/// behaviour must not.
fn normalized(mut report: RunReport) -> RunReport {
    report.scenario.engine = None;
    report
}

fn assert_byte_identical(name: &str, sync: RunReport, event: RunReport) {
    let sync = normalized(sync);
    let event = normalized(event);
    assert_eq!(sync, event, "{name}: event engine changed the report");
    // Field equality plus serialisation equality: the recorded-artifact
    // pipeline consumes the JSON, so pin the bytes too.
    let sync_json = serde_json::to_string(&sync).expect("reports serialise");
    let event_json = serde_json::to_string(&event).expect("reports serialise");
    assert_eq!(
        sync_json, event_json,
        "{name}: serialised reports are not byte-identical"
    );
}

#[test]
fn zero_jitter_event_reports_are_byte_identical_to_sync_serial() {
    for (name, build) in &families() {
        let sync = build(None, false);
        let event = build(Some(EngineKind::event()), false);
        assert!(sync.completed(), "{name}: sync run hit its round cap");
        assert_byte_identical(name, sync, event);
    }
}

#[test]
fn zero_jitter_event_reports_are_byte_identical_to_sync_parallel() {
    for (name, build) in &families() {
        let sync = build(None, true);
        let event = build(Some(EngineKind::event()), true);
        assert_byte_identical(name, sync, event);
        // And the event engine's parallel path matches its own serial path.
        let event_serial = build(Some(EngineKind::event()), false);
        assert_eq!(
            normalized(event_serial),
            normalized(build(Some(EngineKind::event()), true)),
            "{name}: parallel stepping changed the event engine's report"
        );
    }
}

#[test]
fn seeded_reordering_is_deterministic() {
    let run = |seed: u64| {
        let inputs: Vec<u64> = (0..7).map(|i| i % 2).collect();
        Simulation::scenario()
            .correct(7)
            .byzantine(2)
            .seed(42)
            .engine(EngineKind::Event(TimingSpec::synchronous().reorder(seed)))
            .adversary(AdversaryKind::SplitVote)
            .consensus(&inputs)
            .run()
            .unwrap()
    };
    // Same reorder seed ⇒ byte-identical report, across independent harnesses.
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "seeded reordering must be reproducible");
    assert!(a.completed());
    // Reordering only permutes same-instant deliveries: the aggregate counts
    // match the unreordered run even when the seed differs.
    let c = run(8);
    assert_eq!(a.rounds, c.rounds);
    assert_eq!(a.messages, c.messages);
}

#[test]
fn gst_withholds_every_delivery_until_stabilisation() {
    let run = |max_rounds: u64| {
        Simulation::scenario()
            .correct(5)
            .byzantine(0)
            .seed(9)
            .max_rounds(max_rounds)
            .engine(EngineKind::Event(
                TimingSpec::synchronous().with_delay(DelaySpec::Gst { gst: 50, bound: 1 }),
            ))
            .broadcast(42)
            .stop_when(StopCondition::AllOutput)
            .run()
            .unwrap()
    };
    // The synchronous control: the broadcast is announced, echoed and accepted
    // within a few rounds.
    let sync = Simulation::scenario()
        .correct(5)
        .byzantine(0)
        .seed(9)
        .max_rounds(20)
        .broadcast(42)
        .stop_when(StopCondition::AllOutput)
        .run()
        .unwrap();
    assert!(sync.completed(), "sync control must accept the broadcast");
    assert!(sync.messages.deliveries > 0);

    // Below GST the network is *totally* silent: not a single delivery, a
    // state the synchronous engine cannot express — there, the round-1
    // announcements always arrive in round 2.
    let stalled = run(20);
    assert!(
        !stalled.completed(),
        "no delivery can happen before GST: {:?}",
        stalled.status
    );
    assert_eq!(stalled.messages.deliveries, 0, "pre-GST silence is total");

    // With a cap past GST the queued round-1 announcements finally arrive at
    // gst + bound — but the round-programmed protocol has long moved past its
    // echo rounds, so the late traffic can no longer trigger acceptance: the
    // silent prologue costs liveness permanently, exactly as in the DLS-style
    // partial-synchrony argument. The delivery count jumping from zero to the
    // full round-1 batch is the post-stabilisation flow.
    let late = run(100);
    assert!(
        !late.completed(),
        "the late announcements cannot resurrect the echo cascade: {:?}",
        late.status
    );
    assert_eq!(
        late.messages.deliveries, 25,
        "the withheld round-1 batch (5 senders x 5 recipients) flows after GST"
    );
}

#[test]
fn every_family_runs_deterministically_under_gst() {
    // Families react differently to a silent prologue — some recover after
    // stabilisation, some lose liveness for good (the id-only algorithms
    // freeze their member estimate during the silent initialisation rounds).
    // Either way the execution must be a pure function of the spec: two
    // harnesses over the same GST scenario produce identical reports.
    let gst = EngineKind::Event(
        TimingSpec::synchronous().with_delay(DelaySpec::Gst { gst: 3, bound: 2 }),
    );
    for (name, build) in &families() {
        let first = build(Some(gst.clone()), false);
        let second = build(Some(gst.clone()), false);
        assert_eq!(first, second, "{name}: GST run is not deterministic");
    }
}
