//! Deterministic random number generation.
//!
//! Every randomized component in the repository (identifier generation, adversary
//! strategies, workload generators) derives its randomness from an explicit `u64`
//! seed through this module, so that every experiment run is exactly reproducible.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the simulator. ChaCha8 is fast, portable and has stable
/// output across platforms and releases, which keeps recorded experiment results
/// comparable over time.
pub type SimRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to give independent deterministic streams to different components of a single
/// experiment (e.g. one stream for identifier generation, another for the adversary)
/// without the streams being correlated.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer: a cheap, well-distributed mixing function.
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Determinism.
        assert_eq!(derive_seed(7, 0), s0);
    }
}
