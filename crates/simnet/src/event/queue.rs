//! The deterministic delivery queue.
//!
//! Every scheduled message is a [`Flight`]: a payload handle plus its arrival
//! time, a seeded reorder key and a global sequence number. The queue pops
//! flights in `(when, key, seq)` order — virtual arrival time first, then the
//! reorder key (all zero when reordering is off, so scheduling order is
//! preserved), then the sequence number as the final, always-distinct
//! tie-break. Because the comparison never inspects the payload, determinism
//! holds for any payload type and the queue needs no `Ord` bound on `P`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::NodeId;
use crate::shared::Shared;

/// A message in flight: scheduled, not yet delivered.
#[derive(Clone, Debug)]
pub struct Flight<P> {
    /// Virtual time at which the message arrives.
    pub when: u64,
    /// Seeded reorder key; 0 when reordering is disabled.
    pub key: u64,
    /// Global scheduling sequence number (unique per engine run).
    pub seq: u64,
    /// The engine round in which the message was sent (for metrics attribution).
    pub sent_round: u64,
    /// True sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload handle, shared with the traffic plane — no copy.
    pub payload: Shared<P>,
}

/// Heap entry wrapper so ordering lives here rather than on `Flight` itself
/// (flights are plain data; only the queue cares about priority).
struct Entry<P>(Flight<P>);

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}

impl<P> Eq for Entry<P> {}

impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest flight on top.
        (other.0.when, other.0.key, other.0.seq).cmp(&(self.0.when, self.0.key, self.0.seq))
    }
}

impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of [`Flight`]s ordered by `(when, key, seq)`.
pub struct DeliveryQueue<P> {
    heap: BinaryHeap<Entry<P>>,
}

impl<P> Default for DeliveryQueue<P> {
    fn default() -> Self {
        DeliveryQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<P> DeliveryQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        DeliveryQueue::default()
    }

    /// Schedules a flight.
    pub fn push(&mut self, flight: Flight<P>) {
        self.heap.push(Entry(flight));
    }

    /// Pops the earliest flight arriving at or before `horizon`, if any.
    pub fn pop_due(&mut self, horizon: u64) -> Option<Flight<P>> {
        if self
            .heap
            .peek()
            .is_some_and(|entry| entry.0.when <= horizon)
        {
            self.heap.pop().map(|entry| entry.0)
        } else {
            None
        }
    }

    /// Arrival time of the earliest pending flight.
    pub fn peek_when(&self) -> Option<u64> {
        self.heap.peek().map(|entry| entry.0.when)
    }

    /// Number of messages still in flight.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(when: u64, key: u64, seq: u64) -> Flight<u32> {
        Flight {
            when,
            key,
            seq,
            sent_round: 1,
            from: NodeId::new(1),
            to: NodeId::new(2),
            payload: Shared::new(0),
        }
    }

    #[test]
    fn pops_in_time_key_seq_order() {
        let mut queue = DeliveryQueue::new();
        queue.push(flight(5, 0, 3));
        queue.push(flight(3, 9, 1));
        queue.push(flight(3, 1, 2));
        queue.push(flight(3, 1, 0));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_due(u64::MAX))
            .map(|f| f.seq)
            .collect();
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn respects_the_horizon() {
        let mut queue = DeliveryQueue::new();
        queue.push(flight(10, 0, 0));
        queue.push(flight(4, 0, 1));
        assert_eq!(queue.pop_due(5).map(|f| f.seq), Some(1));
        assert_eq!(queue.pop_due(5).map(|f| f.seq), None);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.peek_when(), Some(10));
    }
}
