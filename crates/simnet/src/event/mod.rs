//! Discrete-event simulation: virtual time, per-link delays, reordering and
//! partial synchrony behind the same `Simulation` plumbing as the synchronous
//! engine.
//!
//! The paper's hardest results are *about* timing: Section IX proves that
//! agreement without knowledge of `n` and `f` is impossible in asynchronous
//! and semi-synchronous systems, and the constructions behind Lemmas 14/15 are
//! delay schedules. This module generalises the repository's scenario space
//! from "synchronous rounds only" to arbitrary deterministic timing:
//!
//! * [`VirtualClock`] / [`NodeTimers`] — virtual time and seeded per-node
//!   round timers (zero skew degenerates to lock-step rounds);
//! * [`DeliveryQueue`] / [`Flight`] — a deterministic priority queue of
//!   timestamped deliveries, ordered by `(arrival, reorder key, sequence)`;
//! * [`DelaySpec`] / [`TimingSpec`] / [`EngineKind`] — the serialisable
//!   timing axis carried by [`ScenarioSpec`](crate::sim::ScenarioSpec);
//! * [`LinkDelay`] / [`EventTiming`] — the resolved runtime delay models
//!   (constant, seeded jitter, partitioned, GST partial synchrony);
//! * [`EventEngine`] — the engine itself, byte-identical to
//!   [`SyncEngine`](crate::SyncEngine) under [`EventTiming::synchronous`].

pub mod clock;
pub mod delay;
pub mod engine;
pub mod queue;

pub use clock::{NodeTimers, VirtualClock};
pub use delay::{DelaySpec, EngineKind, EventTiming, LinkDelay, TimingSpec};
pub use engine::EventEngine;
pub use queue::{DeliveryQueue, Flight};
