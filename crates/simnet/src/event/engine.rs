//! The discrete-event engine.
//!
//! [`EventEngine`] drives the same [`Protocol`] state machines and [`Adversary`]
//! strategies as the synchronous engine, but replaces the global round barrier
//! with a [`VirtualClock`], per-node round timers ([`NodeTimers`]) and a
//! deterministic [`DeliveryQueue`] of timestamped message flights. Each call to
//! [`EventEngine::run_round`] executes one *batch*:
//!
//! 1. **schedule (clock)** — advance the virtual clock to the earliest due
//!    timer;
//! 2. **step** — apply churn, then hand every node whose timer fired its
//!    accumulated inbox (when all timers fire together — the zero-skew case —
//!    this reuses the synchronous engine's serial and parallel steppers
//!    verbatim, so executions are bit-for-bit identical to [`SyncEngine`]);
//! 3. **adversary** — the rushing adversary observes the batch's correct
//!    traffic and injects its own messages, exactly as in the sync engine;
//! 4. **schedule (expand)** — every point-to-point message is assigned an
//!    arrival time by the [`LinkDelay`] model and pushed into the queue as a
//!    [`Flight`] (a `None` arrival drops the message — the asynchronous
//!    omission case);
//! 5. **dispatch** — every flight due before the next timer batch is popped in
//!    deterministic `(arrival, reorder key, sequence)` order and delivered into
//!    the recipient's inbox through the same dedup path the sync engine uses.
//!
//! With [`EventTiming::synchronous`] — constant one-round delays, zero skew, no
//! reordering — step 5 pops exactly the messages sent in step 4, in scheduling
//! order, so the engine produces **byte-identical** metrics, traces and reports
//! to [`SyncEngine`] (pinned by `tests/event_equivalence.rs`). Every other
//! timing opens scenario space the round barrier cannot express: per-link
//! jitter, partitions, and GST partial synchrony where pre-GST messages stall
//! until stabilisation.
//!
//! [`SyncEngine`]: crate::SyncEngine

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use crate::adversary::{Adversary, AdversaryView};
use crate::dynamic::{ChurnEvent, ChurnSchedule};
use crate::engine::{
    deliver, elapsed_ns, step_parallel, step_serial, ChurnDriver, EngineConfig, FastState, Inbox,
    PhaseTimings, RunOutcome, StepperFn,
};
use crate::error::SimError;
use crate::id::NodeId;
use crate::message::{Destination, Directed, Envelope};
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::{Protocol, RoundContext};
use crate::rng::derive_seed;
use crate::trace::TraceLog;
use crate::traffic::{RoundTraffic, TrafficItem};
use crate::wal::{RecoveryManager, RestartPolicy, RestartRecord, Snapshotter, WalConfig};

use super::clock::{NodeTimers, VirtualClock};
use super::delay::{EventTiming, LinkDelay};
use super::queue::{DeliveryQueue, Flight};

/// The discrete-event engine (see module docs).
pub struct EventEngine<N: Protocol, A: Adversary<N::Payload>> {
    nodes: Vec<N>,
    adversary: A,
    byzantine_ids: Vec<NodeId>,
    correct_index: HashSet<NodeId>,
    byzantine_index: HashSet<NodeId>,
    inboxes: HashMap<NodeId, Inbox<N::Payload>, FastState>,
    spare_inboxes: Vec<Inbox<N::Payload>>,
    step_inboxes: Vec<Option<Inbox<N::Payload>>>,
    traffic: RoundTraffic<N::Payload>,
    queue: DeliveryQueue<N::Payload>,
    clock: VirtualClock,
    timers: NodeTimers,
    delay: LinkDelay,
    reorder_seed: Option<u64>,
    /// Global scheduling sequence number — the last deterministic tie-break of
    /// the delivery queue and the stream index of the reorder key.
    seq: u64,
    parallel_stepper: Option<StepperFn<N>>,
    round: u64,
    metrics: Metrics,
    timings: PhaseTimings,
    trace: Option<TraceLog<N::Payload>>,
    config: EngineConfig,
    churn: Option<ChurnDriver<N>>,
    /// The crash-recovery subsystem; `None` until [`EventEngine::enable_recovery`].
    recovery: Option<RecoveryManager<N>>,
    /// Retired-traffic GC; off until [`EventEngine::enable_traffic_gc`].
    traffic_gc: bool,
}

impl<N: Protocol, A: Adversary<N::Payload>> EventEngine<N, A> {
    /// Creates an event engine with the default [`EngineConfig`].
    pub fn new(
        nodes: Vec<N>,
        adversary: A,
        byzantine_ids: Vec<NodeId>,
        timing: EventTiming,
    ) -> Self {
        Self::with_config(
            nodes,
            adversary,
            byzantine_ids,
            timing,
            EngineConfig::default(),
        )
    }

    /// Creates an event engine with an explicit configuration.
    pub fn with_config(
        nodes: Vec<N>,
        adversary: A,
        byzantine_ids: Vec<NodeId>,
        timing: EventTiming,
        config: EngineConfig,
    ) -> Self {
        let trace = config
            .trace
            .then(|| TraceLog::with_capacity(config.trace_capacity));
        let correct_index: HashSet<NodeId> = nodes.iter().map(|n| n.id()).collect();
        let byzantine_index = byzantine_ids.iter().copied().collect();
        let mut timers = NodeTimers::new(timing.round_units, timing.max_skew, timing.skew_seed);
        for node in &nodes {
            timers.register(node.id());
        }
        EventEngine {
            nodes,
            adversary,
            byzantine_ids,
            correct_index,
            byzantine_index,
            inboxes: HashMap::default(),
            spare_inboxes: Vec::new(),
            step_inboxes: Vec::new(),
            traffic: RoundTraffic::new(),
            queue: DeliveryQueue::new(),
            clock: VirtualClock::new(),
            timers,
            delay: timing.delay,
            reorder_seed: timing.reorder_seed,
            seq: 0,
            parallel_stepper: None,
            round: 0,
            metrics: Metrics::new(),
            timings: PhaseTimings::default(),
            trace,
            config,
            churn: None,
            recovery: None,
            traffic_gc: false,
        }
    }

    /// Registers a churn plan, applied before each batch exactly as the sync
    /// engine applies it before each round (see [`SyncEngine::set_churn`]).
    ///
    /// [`SyncEngine::set_churn`]: crate::SyncEngine::set_churn
    pub fn set_churn(
        &mut self,
        schedule: ChurnSchedule,
        joiner: impl FnMut(NodeId) -> N + 'static,
    ) {
        self.churn = Some(ChurnDriver {
            schedule,
            joiner: Box::new(joiner),
            applied_upto: 0,
        });
    }

    fn apply_churn(&mut self, round: u64) -> Result<(), SimError> {
        let Some(mut driver) = self.churn.take() else {
            return Ok(());
        };
        if round <= driver.applied_upto {
            self.churn = Some(driver);
            return Ok(());
        }
        driver.applied_upto = round;
        let mut result = Ok(());
        for event in driver.schedule.events_before_round(round) {
            let applied = match event {
                ChurnEvent::JoinCorrect(id) => self.add_node((driver.joiner)(id)),
                ChurnEvent::LeaveCorrect(id) => self.remove_node(id).map(|_| ()),
                ChurnEvent::JoinByzantine(id) => self.add_byzantine_id(id),
                ChurnEvent::LeaveByzantine(id) => self.remove_byzantine_id(id),
                ChurnEvent::Crash(id) => self.crash_node(id, round),
                ChurnEvent::Restart { id, policy } => self.restart_node(id, policy, round),
            };
            if let Err(error) = applied {
                result = Err(error);
                break;
            }
        }
        self.churn = Some(driver);
        result
    }

    /// Crashes a node before the batch for `round` executes (see
    /// [`SyncEngine::set_churn`] for the crash semantics — identical here).
    ///
    /// [`SyncEngine::set_churn`]: crate::SyncEngine::set_churn
    fn crash_node(&mut self, id: NodeId, round: u64) -> Result<(), SimError> {
        if self.recovery.is_none() {
            return Err(SimError::RecoveryDisabled(id));
        }
        if self.byzantine_index.contains(&id) {
            self.remove_byzantine_id(id)?;
            self.recovery
                .as_mut()
                .expect("checked above")
                .crash_byzantine(id);
            return Ok(());
        }
        let node = self.remove_node(id)?;
        self.recovery
            .as_mut()
            .expect("checked above")
            .crash(node, round);
        Ok(())
    }

    /// Restarts a crashed node before the batch for `round` executes: replays
    /// its log per the policy and re-admits it through the ordinary membership
    /// path, which arms its timer for the batch that admitted it.
    fn restart_node(
        &mut self,
        id: NodeId,
        policy: RestartPolicy,
        round: u64,
    ) -> Result<(), SimError> {
        let Some(recovery) = self.recovery.as_mut() else {
            return Err(SimError::RecoveryDisabled(id));
        };
        if recovery.take_crashed_byzantine(id) {
            return self.add_byzantine_id(id);
        }
        let node = recovery.restart(id, policy, round)?;
        self.add_node(node)
    }

    /// Validates that no identifier is used twice across correct and Byzantine nodes.
    pub fn validate_ids(&self) -> Result<(), SimError> {
        let mut seen = HashSet::new();
        for id in self
            .nodes
            .iter()
            .map(|n| n.id())
            .chain(self.byzantine_ids.iter().copied())
        {
            if !seen.insert(id) {
                return Err(SimError::DuplicateId(id));
            }
        }
        Ok(())
    }

    /// The number of batches executed so far (the engine-level round count).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Number of messages still in flight (scheduled, not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// The correct nodes, in insertion order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the correct nodes.
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Looks up a correct node by identifier.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Identifiers of the correct nodes currently in the system.
    pub fn correct_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    /// Identifiers currently controlled by the adversary.
    pub fn byzantine_ids(&self) -> &[NodeId] {
        &self.byzantine_ids
    }

    /// Whether `id` is currently a correct node (O(1)).
    pub fn is_correct(&self, id: NodeId) -> bool {
        self.correct_index.contains(&id)
    }

    /// Whether `id` is currently controlled by the adversary (O(1)).
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        self.byzantine_index.contains(&id)
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Wall-clock time accumulated per phase (`schedule` / `step` / `produce` /
    /// `adversary` / `dispatch`); measurement-only.
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings.clone()
    }

    /// Overrides the node count at which the parallel step path engages.
    pub fn set_parallel_node_threshold(&mut self, threshold: usize) {
        self.config.parallel_node_threshold = threshold;
    }

    /// The trace log, if tracing was enabled in the configuration.
    pub fn trace(&self) -> Option<&TraceLog<N::Payload>> {
        self.trace.as_ref()
    }

    /// Enables crash recovery with the default [`WalConfig`] (see
    /// [`SyncEngine::enable_recovery`] — the semantics are identical, with the
    /// write-ahead hooks running per batch on the due nodes).
    ///
    /// [`SyncEngine::enable_recovery`]: crate::SyncEngine::enable_recovery
    pub fn enable_recovery(&mut self, snapshot: Snapshotter<N>) {
        self.enable_recovery_with(snapshot, WalConfig::default());
    }

    /// Enables crash recovery with an explicit log configuration.
    pub fn enable_recovery_with(&mut self, snapshot: Snapshotter<N>, config: WalConfig) {
        self.recovery = Some(RecoveryManager::with_config(snapshot, config));
    }

    /// Whether crash recovery is enabled.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Enables retired-traffic garbage collection: after each batch's dispatch
    /// the engine prunes queued *inbox* envelopes whose
    /// [`Protocol::instance_of`] tag lies below the minimum
    /// [`Protocol::retired_frontier`] over the live nodes. In-flight messages
    /// (the delivery queue) are never pruned — deliveries are counted when a
    /// flight lands in an inbox, so dropping a flight would change the
    /// metrics; an inbox entry's delivery is already on the books. Same
    /// observational-silence contract as `SyncEngine::enable_traffic_gc`.
    pub fn enable_traffic_gc(&mut self) {
        self.traffic_gc = true;
    }

    /// Whether retired-traffic GC is enabled.
    pub fn traffic_gc_enabled(&self) -> bool {
        self.traffic_gc
    }

    /// Every restart performed so far (empty if recovery is disabled or no
    /// crash/restart cycle has completed yet).
    pub fn recovery_restarts(&self) -> &[RestartRecord] {
        self.recovery.as_ref().map_or(&[], |r| r.restarts())
    }

    /// Envelopes currently queued across all accumulated inboxes — one
    /// component of the soak driver's memory proxy.
    pub fn queued_envelopes(&self) -> usize {
        self.inboxes
            .values()
            .map(|inbox| inbox.messages.len())
            .sum()
    }

    /// Records currently held across all write-ahead logs (0 if recovery is
    /// disabled) — the other component of the soak memory proxy.
    pub fn wal_entries(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.wal_entries())
    }

    /// Adds a correct node. Before the first batch the node joins the initial
    /// timer schedule; mid-run (churn) its timer is armed at the current
    /// virtual time, so it steps together with the batch that admitted it —
    /// matching the sync engine, where a joiner participates in the round its
    /// churn event precedes.
    pub fn add_node(&mut self, node: N) -> Result<(), SimError> {
        let id = node.id();
        if self.correct_index.contains(&id) || self.byzantine_index.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        if self.round == 0 {
            self.timers.register(id);
        } else {
            self.timers.register_at(id, self.clock.now());
        }
        self.correct_index.insert(id);
        self.nodes.push(node);
        Ok(())
    }

    /// Removes a correct node. Pending inbox contents are dropped; flights
    /// still addressed to it are discarded when they come due.
    pub fn remove_node(&mut self, id: NodeId) -> Result<N, SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id() == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.correct_index.remove(&id);
        self.timers.remove(id);
        if let Some(mut inbox) = self.inboxes.remove(&id) {
            inbox.recycle();
            self.spare_inboxes.push(inbox);
        }
        Ok(self.nodes.remove(idx))
    }

    /// Registers an additional Byzantine identity.
    pub fn add_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        if self.correct_index.contains(&id) || self.byzantine_index.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        self.byzantine_index.insert(id);
        self.byzantine_ids.push(id);
        Ok(())
    }

    /// Removes a Byzantine identity.
    pub fn remove_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        let idx = self
            .byzantine_ids
            .iter()
            .position(|&b| b == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.byzantine_index.remove(&id);
        self.byzantine_ids.remove(idx);
        Ok(())
    }

    /// Executes one batch (see module docs). Returns an error only if the
    /// adversary forged a sender identity or a churn event was inapplicable.
    pub fn run_round(&mut self) -> Result<(), SimError> {
        // Phase 0 (schedule): advance the virtual clock to the earliest due
        // timer. With no timers left (every correct node gone) time still
        // moves by one period so the run cap is eventually reached.
        let schedule_started = Instant::now();
        let target = self
            .timers
            .next_due()
            .unwrap_or_else(|| self.clock.now() + self.timers.period());
        self.clock.advance_to(target);
        self.timings.add("schedule", elapsed_ns(schedule_started));

        let step_started = Instant::now();
        self.apply_churn(self.round + 1)?;
        self.round += 1;
        let now = self.clock.now();
        let correct_ids = self.correct_ids();

        // Phase 1 (step/produce): hand every due, live node its accumulated
        // inbox. When every timer fired (the zero-skew case, and any batch
        // where skews happen to align) the sync engine's steppers run
        // unchanged; a partial batch steps the due subset with their local
        // round numbers.
        self.traffic.begin_round(
            correct_ids
                .iter()
                .copied()
                .chain(self.byzantine_ids.iter().copied()),
        );
        let due: Vec<bool> = self
            .nodes
            .iter()
            .map(|n| self.timers.due_at(n.id(), now))
            .collect();
        let batch_full = due.iter().all(|&d| d);
        self.step_inboxes.clear();
        for (node, &is_due) in self.nodes.iter().zip(&due) {
            self.step_inboxes.push(if is_due && !node.terminated() {
                self.inboxes.remove(&node.id())
            } else {
                None
            });
        }
        // Write-ahead: log each due node's inbox under the round number its
        // step context will carry (the batch round when every timer fired, the
        // node's local round in a skewed partial batch) before it steps.
        if let Some(recovery) = &mut self.recovery {
            for (index, node) in self.nodes.iter().enumerate() {
                if !due[index] || node.terminated() {
                    continue;
                }
                let node_round = if batch_full {
                    self.round
                } else {
                    self.timers.fires(node.id()) + 1
                };
                let empty: &[Envelope<N::Payload>] = &[];
                let inbox = self.step_inboxes[index]
                    .as_ref()
                    .map_or(empty, |b| b.messages.as_slice());
                recovery.begin_step(node, node_round, inbox);
            }
        }
        self.timings.add("step", elapsed_ns(step_started));

        let produce_started = Instant::now();
        let live = if batch_full {
            let ctx = RoundContext::new(self.round);
            let stepper = match self.parallel_stepper {
                Some(parallel) if self.nodes.len() >= self.config.parallel_node_threshold => {
                    parallel
                }
                _ => step_serial::<N>,
            };
            stepper(
                &mut self.nodes,
                &ctx,
                &mut self.step_inboxes,
                &mut self.traffic,
            )
        } else {
            let mut live = 0u64;
            for (index, node) in self.nodes.iter_mut().enumerate() {
                if !due[index] || node.terminated() {
                    continue;
                }
                live += 1;
                let id = node.id();
                // A skewed node's round number is local: how many times its own
                // timer has fired, not the engine's batch count.
                let ctx = RoundContext::new(self.timers.fires(id) + 1);
                let empty: &[Envelope<N::Payload>] = &[];
                let inbox = self.step_inboxes[index]
                    .as_ref()
                    .map_or(empty, |b| b.messages.as_slice());
                for message in node.step(&ctx, inbox) {
                    match message.dest {
                        Destination::Broadcast => self.traffic.push_broadcast(id, message.payload),
                        Destination::Unicast(to) => {
                            self.traffic
                                .push_unicast(Directed::new(id, to, message.payload))
                        }
                    }
                }
            }
            live
        };
        self.timings.add("produce", elapsed_ns(produce_started));

        let step_started = Instant::now();
        // Re-arm every fired timer — including terminated nodes', so the batch
        // cadence continues while non-terminating peers are still running.
        for (node, &is_due) in self.nodes.iter().zip(&due) {
            if is_due {
                self.timers.fire(node.id());
            }
        }
        for mut inbox in self.step_inboxes.drain(..).flatten() {
            inbox.recycle();
            self.spare_inboxes.push(inbox);
        }
        let correct_index = &self.correct_index;
        self.inboxes.retain(|id, _| correct_index.contains(id));
        // Log the digests of every produced message and commit the batch's open
        // rounds — *before* the adversary phase: a send becomes network-visible
        // only once it is durable in its sender's log.
        if let Some(recovery) = &mut self.recovery {
            for item in self.traffic.items() {
                match item {
                    TrafficItem::Broadcast { from, payload } => {
                        recovery.log_sent(*from, payload.digest())
                    }
                    TrafficItem::Unicast(message) => {
                        recovery.log_sent(message.from, message.payload.digest())
                    }
                }
            }
            for node in &self.nodes {
                recovery.commit_step(node);
            }
        }
        self.timings.add("step", elapsed_ns(step_started));

        // Phase 2 (adversary): identical to the sync engine — the rushing view
        // exposes the batch's correct traffic.
        let adversary_started = Instant::now();
        let view = AdversaryView {
            round: self.round,
            correct_ids: &correct_ids,
            byzantine_ids: &self.byzantine_ids,
            correct_traffic: &self.traffic,
        };
        let byzantine_traffic = self.adversary.step(&view);
        for msg in &byzantine_traffic {
            if !self.byzantine_index.contains(&msg.from) {
                return Err(SimError::ForgedSender { claimed: msg.from });
            }
        }
        self.timings.add("adversary", elapsed_ns(adversary_started));

        // Phase 3 (schedule): expand the compact traffic towards correct
        // recipients and assign each point-to-point message an arrival time.
        // The expansion order matches the sync engine's delivery order exactly
        // (items in production order, broadcasts fanned over the correct nodes
        // in membership order, Byzantine traffic last), so with equal arrival
        // times and no reorder key the queue pops in the same order the sync
        // engine delivers.
        let schedule_started = Instant::now();
        let correct_count = self.traffic.point_to_point_count();
        let byz_count = byzantine_traffic.len() as u64;
        {
            let EventEngine {
                traffic,
                queue,
                delay,
                reorder_seed,
                seq,
                correct_index,
                round,
                ..
            } = self;
            let mut schedule =
                |from: NodeId, to: NodeId, payload: &crate::shared::Shared<N::Payload>| {
                    *seq += 1;
                    if let Some(when) = delay.arrival(from, to, now, *seq) {
                        let key = reorder_seed.map_or(0, |s| derive_seed(s, *seq));
                        queue.push(Flight {
                            when,
                            key,
                            seq: *seq,
                            sent_round: *round,
                            from,
                            to,
                            payload: payload.clone(),
                        });
                    }
                };
            for item in traffic.items() {
                match item {
                    TrafficItem::Broadcast { from, payload } => {
                        for &to in &correct_ids {
                            schedule(*from, to, payload);
                        }
                    }
                    TrafficItem::Unicast(message) => {
                        if correct_index.contains(&message.to) {
                            schedule(message.from, message.to, &message.payload);
                        }
                    }
                }
            }
            for message in &byzantine_traffic {
                if correct_index.contains(&message.to) {
                    schedule(message.from, message.to, &message.payload);
                }
            }
        }
        self.metrics.record_round(RoundMetrics {
            round: self.round,
            correct_messages: correct_count,
            byzantine_messages: byz_count,
            deliveries: 0,
            live_correct_nodes: live,
        });
        self.timings.add("schedule", elapsed_ns(schedule_started));

        // Phase 4 (dispatch): pop every flight due before the next timer batch
        // into its recipient's inbox. Popping at the end of the sending batch
        // is safe for any delay model — no node steps again before the horizon
        // — and it is what makes the zero-jitter case byte-identical to the
        // sync engine, whose final round also delivers messages nobody will
        // ever consume. Deliveries are attributed to the *sending* batch's
        // metrics row, matching the sync engine's accounting.
        let dispatch_started = Instant::now();
        let horizon = self
            .timers
            .next_due()
            .unwrap_or_else(|| self.clock.now() + self.timers.period());
        while let Some(flight) = self.queue.pop_due(horizon) {
            if !self.correct_index.contains(&flight.to) {
                continue;
            }
            let mut inbox = self
                .inboxes
                .remove(&flight.to)
                .unwrap_or_else(|| self.spare_inboxes.pop().unwrap_or_default());
            let mut delivered = 0u64;
            deliver(
                &mut inbox,
                &mut self.trace,
                &self.byzantine_index,
                self.round + 1,
                flight.from,
                flight.to,
                &flight.payload,
                &mut delivered,
            );
            if delivered > 0 {
                self.metrics.deliveries += delivered;
                if let Some(row) = self
                    .metrics
                    .per_round
                    .get_mut(flight.sent_round.saturating_sub(1) as usize)
                {
                    row.deliveries += delivered;
                }
            }
            self.inboxes.insert(flight.to, inbox);
        }

        // Retired-traffic GC (see [`EventEngine::enable_traffic_gc`]): prune
        // inbox envelopes for instances below every live node's retired
        // frontier. Flights stay untouched; `seen` dedup sets stay untouched.
        if self.traffic_gc {
            let frontier = self
                .nodes
                .iter()
                .map(|node| node.retired_frontier())
                .min()
                .unwrap_or(0);
            if frontier > 0 {
                let nodes = &self.nodes;
                if let Some(probe) = nodes.first() {
                    for inbox in self.inboxes.values_mut() {
                        inbox.messages.retain(|envelope| {
                            match probe.instance_of(envelope.payload.get()) {
                                Some(tag) => tag >= frontier,
                                None => true,
                            }
                        });
                    }
                }
            }
        }
        self.timings.add("dispatch", elapsed_ns(dispatch_started));
        Ok(())
    }

    /// Runs batches until `stop` returns true (checked after every batch) or
    /// the configured round cap is hit.
    pub fn run_until<F>(&mut self, mut stop: F) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Self) -> bool,
    {
        if stop(self) {
            return Ok(RunOutcome::Completed { rounds: self.round });
        }
        while self.round < self.config.max_rounds {
            self.run_round()?;
            if stop(self) {
                return Ok(RunOutcome::Completed { rounds: self.round });
            }
        }
        Ok(RunOutcome::MaxRoundsExceeded {
            limit: self.config.max_rounds,
        })
    }

    /// Runs batches until every correct node has terminated, or at most
    /// `max_rounds`.
    pub fn run_until_all_terminated(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.terminated()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs batches until every correct node has produced an output, or at
    /// most `max_rounds`.
    pub fn run_until_all_output(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.output().is_some()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs exactly `rounds` additional batches.
    pub fn run_rounds(&mut self, rounds: u64) -> Result<(), SimError> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// The `(id, output)` pairs of all correct nodes, in insertion order.
    pub fn outputs(&self) -> Vec<(NodeId, Option<N::Output>)> {
        self.nodes.iter().map(|n| (n.id(), n.output())).collect()
    }

    /// Consumes the engine and returns its parts (nodes, adversary, metrics).
    pub fn into_parts(self) -> (Vec<N>, A, Metrics) {
        (self.nodes, self.adversary, self.metrics)
    }
}

impl<N, A> EventEngine<N, A>
where
    N: Protocol + Send,
    N::Payload: Send + Sync,
    A: Adversary<N::Payload>,
{
    /// Opts in to the parallel node-step path for full batches (see
    /// [`SyncEngine::enable_parallel_stepping`]); partial batches always step
    /// serially — the due subset is typically small.
    ///
    /// [`SyncEngine::enable_parallel_stepping`]: crate::SyncEngine::enable_parallel_stepping
    pub fn enable_parallel_stepping(&mut self) {
        self.parallel_stepper = Some(step_parallel::<N>);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SilentAdversary;
    use crate::engine::SyncEngine;
    use crate::event::delay::{DelaySpec, TimingSpec};
    use crate::message::Outgoing;

    /// Broadcasts its id's parity in round 1; from `decide_round` on, outputs
    /// the number of distinct senders heard so far.
    #[derive(Clone, Debug)]
    struct Counter {
        id: NodeId,
        senders: std::collections::HashSet<NodeId>,
        decided: Option<usize>,
        decide_round: u64,
    }

    impl Counter {
        fn new(id: NodeId, decide_round: u64) -> Self {
            Counter {
                id,
                senders: Default::default(),
                decided: None,
                decide_round,
            }
        }
    }

    impl Protocol for Counter {
        type Payload = u64;
        type Output = usize;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            self.senders.extend(inbox.iter().map(|e| e.from));
            if ctx.round >= self.decide_round {
                self.decided = Some(self.senders.len());
                vec![]
            } else {
                vec![Outgoing::broadcast(self.id.raw())]
            }
        }

        fn output(&self) -> Option<usize> {
            self.decided
        }
    }

    fn counters(n: u64) -> Vec<Counter> {
        (0..n)
            .map(|i| Counter::new(NodeId::new(10 + i), 3))
            .collect()
    }

    fn event_engine(n: u64, timing: EventTiming) -> EventEngine<Counter, SilentAdversary> {
        EventEngine::new(counters(n), SilentAdversary, vec![], timing)
    }

    #[test]
    fn zero_jitter_batches_match_the_sync_engine_exactly() {
        let mut sync = SyncEngine::new(counters(5), SilentAdversary, vec![]);
        let mut event = event_engine(5, EventTiming::synchronous());
        assert!(sync.run_until_all_terminated(10).unwrap().is_completed());
        assert!(event.run_until_all_terminated(10).unwrap().is_completed());
        assert_eq!(sync.round(), event.round());
        assert_eq!(sync.metrics(), event.metrics());
        let sync_outputs: Vec<_> = sync.outputs();
        let event_outputs: Vec<_> = event.outputs();
        assert_eq!(sync_outputs.len(), event_outputs.len());
        for ((id_a, out_a), (id_b, out_b)) in sync_outputs.iter().zip(&event_outputs) {
            assert_eq!(id_a, id_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn constant_delay_postpones_hearing_from_peers() {
        // With a 3-unit link delay and 1-unit rounds, round-1 broadcasts arrive
        // for the round-4 step — after everyone decided in round 3 having heard
        // nobody.
        let timing = EventTiming {
            delay: LinkDelay::Constant(3),
            ..EventTiming::synchronous()
        };
        let mut engine = event_engine(4, timing);
        assert!(engine.run_until_all_terminated(10).unwrap().is_completed());
        for (_, output) in engine.outputs() {
            assert_eq!(output, Some(0), "messages arrived only after deciding");
        }
    }

    #[test]
    fn gst_stalls_deliveries_until_stabilisation() {
        let timing = EventTiming {
            delay: LinkDelay::Gst { gst: 50, bound: 1 },
            ..EventTiming::synchronous()
        };
        let mut engine = event_engine(3, EventTiming::synchronous());
        engine.run_rounds(2).unwrap();
        assert_eq!(
            engine.in_flight(),
            0,
            "synchronous flights land immediately"
        );

        let mut engine = event_engine(3, timing);
        engine.run_rounds(2).unwrap();
        // Two broadcast rounds before deciding, 3 × 3 flights each.
        assert_eq!(
            engine.in_flight(),
            2 * 3 * 3,
            "pre-GST broadcasts stay queued"
        );
        // Long after GST the flights have landed.
        engine.run_rounds(60).unwrap();
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn skewed_timers_still_terminate_and_stay_deterministic() {
        let run = || {
            let timing =
                EventTiming::from_spec(&TimingSpec::synchronous().units(4).skew(3), 99, &[]);
            let mut engine = event_engine(6, timing);
            assert!(engine.run_until_all_terminated(50).unwrap().is_completed());
            (engine.round(), engine.metrics().clone(), engine.outputs())
        };
        let (rounds_a, metrics_a, outputs_a) = run();
        let (rounds_b, metrics_b, outputs_b) = run();
        assert_eq!(rounds_a, rounds_b);
        assert_eq!(metrics_a, metrics_b);
        assert_eq!(outputs_a.len(), outputs_b.len());
        for ((id_a, out_a), (id_b, out_b)) in outputs_a.iter().zip(&outputs_b) {
            assert_eq!(id_a, id_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn reordering_is_seeded_and_reproducible() {
        let run = |seed: u64| {
            let timing = EventTiming {
                reorder_seed: Some(seed),
                ..EventTiming::synchronous()
            };
            let mut engine = event_engine(5, timing);
            assert!(engine.run_until_all_terminated(10).unwrap().is_completed());
            engine.metrics().clone()
        };
        assert_eq!(run(7), run(7), "same seed, same execution");
    }

    #[test]
    fn crash_restart_cycles_match_the_sync_engine_exactly() {
        use crate::dynamic::ChurnSchedule;
        use crate::wal::RestartPolicy;
        let crashed = NodeId::new(11);
        let schedule = || {
            ChurnSchedule::empty()
                .with(2, ChurnEvent::Crash(crashed))
                .with(
                    3,
                    ChurnEvent::Restart {
                        id: crashed,
                        policy: RestartPolicy::Clean,
                    },
                )
        };
        let mut sync = SyncEngine::new(counters(4), SilentAdversary, vec![]);
        sync.enable_recovery(Box::new(Counter::clone));
        sync.set_churn(schedule(), |id| Counter::new(id, 3));
        sync.run_rounds(3).unwrap();

        let mut event = event_engine(4, EventTiming::synchronous());
        event.enable_recovery(Box::new(Counter::clone));
        event.set_churn(schedule(), |id| Counter::new(id, 3));
        event.run_rounds(3).unwrap();

        assert_eq!(sync.recovery_restarts(), event.recovery_restarts());
        assert_eq!(event.recovery_restarts().len(), 1);
        assert_eq!(event.recovery_restarts()[0].send_conflicts, 0);
        assert_eq!(sync.metrics(), event.metrics());
        let sync_outputs = sync.outputs();
        let event_outputs = event.outputs();
        assert_eq!(sync_outputs.len(), event_outputs.len());
        for ((id_a, out_a), (id_b, out_b)) in sync_outputs.iter().zip(&event_outputs) {
            assert_eq!(id_a, id_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn delay_spec_none_cross_drops_messages_for_good() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(10 + i)).collect();
        let timing = EventTiming::from_spec(
            &TimingSpec::synchronous().with_delay(DelaySpec::PartitionHalves { cross: None }),
            0,
            &ids,
        );
        let mut engine = event_engine(4, timing);
        assert!(engine.run_until_all_terminated(10).unwrap().is_completed());
        for (_, output) in engine.outputs() {
            assert_eq!(output, Some(2), "each half hears only its own two members");
        }
        assert_eq!(engine.in_flight(), 0, "dropped flights are never queued");
    }
}
