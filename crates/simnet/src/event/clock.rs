//! Virtual time and per-node round timers.
//!
//! The event engine does not tick a global barrier: every node owns a
//! [`NodeTimers`] entry that says when it next wakes up. The engine advances a
//! [`VirtualClock`] to the earliest due timer, steps exactly the nodes whose
//! timers fired, and re-arms them one period later. With zero skew every timer
//! fires at the same instants — `period, 2·period, …` — and the schedule
//! degenerates to the lock-step rounds of the synchronous engine; with a
//! non-zero skew budget each node is offset by a seeded, per-identifier phase,
//! so "round `r`" becomes a purely local notion.

use std::collections::HashMap;

use crate::engine::FastState;
use crate::id::NodeId;
use crate::rng::derive_seed;

/// A monotone virtual clock measured in abstract time units. One synchronous
/// round corresponds to `round_units` of virtual time (see
/// [`EventTiming`](super::EventTiming)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock to `to`. Time never moves backwards; an earlier
    /// target leaves the clock unchanged.
    pub fn advance_to(&mut self, to: u64) {
        self.now = self.now.max(to);
    }
}

/// The per-node wake-up state: when the node's timer next fires and how many
/// times it has fired so far (the node's *local* round count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct NodeTimer {
    next_fire: u64,
    fires: u64,
}

/// Seeded, per-node round timers.
///
/// Every registered node fires every `period` units, phase-shifted by a
/// deterministic skew in `0..=max_skew` derived from `(skew_seed, id)`. A zero
/// `max_skew` puts all nodes on the same schedule, which is what the
/// zero-jitter equivalence with the synchronous engine relies on.
#[derive(Debug)]
pub struct NodeTimers {
    period: u64,
    max_skew: u64,
    skew_seed: u64,
    timers: HashMap<NodeId, NodeTimer, FastState>,
}

impl NodeTimers {
    /// Creates an empty timer table. `period` must be non-zero (it is clamped
    /// to at least 1 so a degenerate spec cannot stall virtual time).
    pub fn new(period: u64, max_skew: u64, skew_seed: u64) -> Self {
        NodeTimers {
            period: period.max(1),
            max_skew,
            skew_seed,
            timers: HashMap::default(),
        }
    }

    /// The tick period shared by every node.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The deterministic phase offset of `id` in `0..=max_skew`.
    fn skew(&self, id: NodeId) -> u64 {
        if self.max_skew == 0 {
            0
        } else {
            derive_seed(self.skew_seed, id.raw()) % (self.max_skew + 1)
        }
    }

    /// Registers a node whose first fire is one period (plus skew) after time
    /// zero — the schedule every initial member starts on.
    pub fn register(&mut self, id: NodeId) {
        let next_fire = self.period + self.skew(id);
        self.timers.insert(
            id,
            NodeTimer {
                next_fire,
                fires: 0,
            },
        );
    }

    /// Registers a node joining mid-run: its first fire is at time `at`, so a
    /// churn joiner steps together with the batch that admitted it.
    pub fn register_at(&mut self, id: NodeId, at: u64) {
        self.timers.insert(
            id,
            NodeTimer {
                next_fire: at,
                fires: 0,
            },
        );
    }

    /// Removes a node's timer (dynamic leave).
    pub fn remove(&mut self, id: NodeId) {
        self.timers.remove(&id);
    }

    /// The earliest pending fire time across all registered nodes, or `None`
    /// if no node is registered.
    pub fn next_due(&self) -> Option<u64> {
        self.timers.values().map(|t| t.next_fire).min()
    }

    /// Whether `id`'s timer is due at or before time `t`.
    pub fn due_at(&self, id: NodeId, t: u64) -> bool {
        self.timers
            .get(&id)
            .is_some_and(|timer| timer.next_fire <= t)
    }

    /// Fires `id`'s timer: re-arms it one period later and bumps its local
    /// round count. A node without a timer is ignored.
    pub fn fire(&mut self, id: NodeId) {
        if let Some(timer) = self.timers.get_mut(&id) {
            timer.next_fire += self.period;
            timer.fires += 1;
        }
    }

    /// How many times `id`'s timer has fired — the node's local round count.
    pub fn fires(&self, id: NodeId) -> u64 {
        self.timers.get(&id).map_or(0, |timer| timer.fires)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut clock = VirtualClock::new();
        clock.advance_to(5);
        clock.advance_to(3);
        assert_eq!(clock.now(), 5);
        clock.advance_to(9);
        assert_eq!(clock.now(), 9);
    }

    #[test]
    fn zero_skew_timers_fire_in_lock_step() {
        let mut timers = NodeTimers::new(4, 0, 0);
        for raw in [3u64, 17, 42] {
            timers.register(NodeId::new(raw));
        }
        assert_eq!(timers.next_due(), Some(4));
        for raw in [3u64, 17, 42] {
            assert!(timers.due_at(NodeId::new(raw), 4));
            timers.fire(NodeId::new(raw));
        }
        assert_eq!(timers.next_due(), Some(8));
        assert_eq!(timers.fires(NodeId::new(17)), 1);
    }

    #[test]
    fn skewed_timers_are_deterministic_and_bounded() {
        let a = NodeTimers::new(10, 3, 77);
        let b = NodeTimers::new(10, 3, 77);
        for raw in 0..20u64 {
            let id = NodeId::new(raw);
            assert_eq!(a.skew(id), b.skew(id), "skew must be a pure function");
            assert!(a.skew(id) <= 3, "skew exceeds its budget");
        }
    }

    #[test]
    fn joiners_fire_with_the_admitting_batch() {
        let mut timers = NodeTimers::new(5, 0, 0);
        timers.register(NodeId::new(1));
        timers.register_at(NodeId::new(2), 15);
        assert!(timers.due_at(NodeId::new(2), 15));
        assert!(!timers.due_at(NodeId::new(2), 14));
    }
}
