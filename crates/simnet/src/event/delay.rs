//! Delay models and the serialisable timing axis of a scenario.
//!
//! Two layers live here:
//!
//! * the **serde layer** — [`DelaySpec`], [`TimingSpec`] and [`EngineKind`] —
//!   the declarative, replayable description stored on a
//!   [`ScenarioSpec`](crate::sim::ScenarioSpec) and enumerated by sweep grids;
//! * the **runtime layer** — [`LinkDelay`] and [`EventTiming`] — the resolved
//!   form the [`EventEngine`](super::EventEngine) actually consults per
//!   message, produced by [`EventTiming::from_spec`] once the scenario's node
//!   set and seed are known (a partition spec needs concrete identifiers; a
//!   jitter model needs a derived seed stream).
//!
//! All models are pure functions of `(from, to, send time, sequence number)`,
//! so executions stay bit-for-bit deterministic for a fixed scenario seed.

use serde::{Deserialize, Serialize};

use crate::delay::PartitionSpec;
use crate::id::NodeId;
use crate::rng::derive_seed;

/// Seed stream tag for the jitter delay model (see [`EventTiming::from_spec`]).
const JITTER_STREAM: u64 = 0x6a69_7474; // "jitt"
/// Seed stream tag for the per-node round skew.
const SKEW_STREAM: u64 = 0x736b_6577; // "skew"

/// Declarative per-link delay model (the serialisable scenario axis).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelaySpec {
    /// Every message arrives at the recipient's next activation — the
    /// zero-jitter special case that is byte-identical to the synchronous
    /// engine.
    Synchronous,
    /// Every message takes exactly `units` virtual time units.
    Constant {
        /// Fixed link delay (clamped to at least 1 unit when resolved).
        units: u64,
    },
    /// Seeded uniform delay in `min..=max` units, derived from the scenario
    /// seed and the message sequence number.
    Jitter {
        /// Smallest possible delay in units.
        min: u64,
        /// Largest possible delay in units.
        max: u64,
    },
    /// The Lemma 14/15 construction as a declarative axis: the correct nodes
    /// are split into two halves (first half = group 0), intra-half messages
    /// take one round, cross-half messages take `cross` units — or are never
    /// delivered when `cross` is `None` (the asynchronous case).
    PartitionHalves {
        /// Cross-partition delay (`None` = dropped, the Lemma 14 omission).
        cross: Option<u64>,
    },
    /// Partial synchrony with a global stabilisation time: a message sent at
    /// `t < gst` may be delayed until `gst + bound`; a message sent at
    /// `t >= gst` arrives within `bound` units. The adversary-worst-case
    /// schedule (every pre-GST message held as long as allowed) is used, which
    /// is what makes pre-GST executions indistinguishable from asynchrony.
    Gst {
        /// Global stabilisation time, in virtual units.
        gst: u64,
        /// Post-GST delivery bound, in units (clamped to at least 1).
        bound: u64,
    },
}

/// The full timing axis of an event-engine scenario.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Virtual time units per node round (the timer period). Purely a scale
    /// factor; 1 keeps virtual time equal to round numbers.
    pub round_units: u64,
    /// Per-link delay model.
    pub delay: DelaySpec,
    /// When set, deliveries due at the same instant are shuffled by a seeded
    /// key derived from this seed (same seed ⇒ same order, always).
    pub reorder_seed: Option<u64>,
    /// Per-node round-timer skew budget in units (0 = lock-step timers).
    pub max_skew: u64,
}

impl TimingSpec {
    /// The timing under which the event engine is byte-identical to the
    /// synchronous engine: one unit per round, synchronous delays, no
    /// reordering, no skew.
    pub fn synchronous() -> Self {
        TimingSpec {
            round_units: 1,
            delay: DelaySpec::Synchronous,
            reorder_seed: None,
            max_skew: 0,
        }
    }

    /// Replaces the delay model.
    pub fn with_delay(mut self, delay: DelaySpec) -> Self {
        self.delay = delay;
        self
    }

    /// Enables seeded same-instant reordering.
    pub fn reorder(mut self, seed: u64) -> Self {
        self.reorder_seed = Some(seed);
        self
    }

    /// Sets the per-node timer skew budget.
    pub fn skew(mut self, max_skew: u64) -> Self {
        self.max_skew = max_skew;
        self
    }

    /// Sets the virtual units per round.
    pub fn units(mut self, round_units: u64) -> Self {
        self.round_units = round_units;
        self
    }

    /// Whether this timing is the zero-jitter special case (equivalent to the
    /// synchronous engine, and admissible under the paper's theorems).
    pub fn is_synchronous(&self) -> bool {
        self.delay == DelaySpec::Synchronous && self.max_skew == 0 && self.reorder_seed.is_none()
    }
}

impl Default for TimingSpec {
    fn default() -> Self {
        TimingSpec::synchronous()
    }
}

/// Which engine executes a scenario — the axis stored on
/// [`ScenarioSpec`](crate::sim::ScenarioSpec). Serde-compatible with older
/// recorded scenarios: an absent field deserialises as "sync" through the
/// `Option<EngineKind>` the spec carries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The lock-step [`SyncEngine`](crate::SyncEngine).
    #[default]
    Sync,
    /// The discrete-event [`EventEngine`](super::EventEngine) under the given
    /// timing.
    Event(TimingSpec),
}

impl EngineKind {
    /// The event engine under synchronous timing (the zero-jitter case).
    pub fn event() -> Self {
        EngineKind::Event(TimingSpec::synchronous())
    }
}

/// The resolved per-link delay function the engine consults per message.
#[derive(Clone, Debug)]
pub enum LinkDelay {
    /// Fixed delay in units.
    Constant(u64),
    /// Seeded uniform delay in `min..=max`.
    Jitter {
        /// Smallest delay.
        min: u64,
        /// Largest delay.
        max: u64,
        /// Derived seed for the per-message draw.
        seed: u64,
    },
    /// Partitioned links: `same` units within a group, `cross` across groups
    /// (`None` = never delivered).
    Partitioned {
        /// Node-to-group assignment.
        spec: PartitionSpec,
        /// Intra-group delay.
        same: u64,
        /// Cross-group delay (`None` = dropped).
        cross: Option<u64>,
    },
    /// GST partial synchrony (see [`DelaySpec::Gst`]).
    Gst {
        /// Global stabilisation time.
        gst: u64,
        /// Post-GST delivery bound.
        bound: u64,
    },
}

impl LinkDelay {
    /// Arrival time of a message sent `from → to` at time `now` with global
    /// sequence number `seq`, or `None` if the message is never delivered.
    pub fn arrival(&self, from: NodeId, to: NodeId, now: u64, seq: u64) -> Option<u64> {
        match self {
            LinkDelay::Constant(units) => Some(now + units),
            LinkDelay::Jitter { min, max, seed } => {
                let span = max.saturating_sub(*min) + 1;
                Some(now + min + derive_seed(*seed, seq) % span)
            }
            LinkDelay::Partitioned { spec, same, cross } => {
                if spec.same_group(from, to) {
                    Some(now + same)
                } else {
                    cross.map(|units| now + units)
                }
            }
            LinkDelay::Gst { gst, bound } => {
                // Worst-case partially-synchronous schedule: pre-GST messages
                // are held until the stabilisation time plus the bound.
                if now >= *gst {
                    Some(now + bound)
                } else {
                    Some(gst + bound)
                }
            }
        }
    }
}

/// The fully resolved timing configuration of an [`EventEngine`](super::EventEngine).
#[derive(Clone, Debug)]
pub struct EventTiming {
    /// Virtual units per node round (the timer period).
    pub round_units: u64,
    /// Resolved per-link delay function.
    pub delay: LinkDelay,
    /// Seeded same-instant reordering (see [`TimingSpec::reorder_seed`]).
    pub reorder_seed: Option<u64>,
    /// Per-node timer skew budget.
    pub max_skew: u64,
    /// Derived seed for the per-node skew draw.
    pub skew_seed: u64,
}

impl EventTiming {
    /// The zero-jitter timing equivalent to the synchronous engine.
    pub fn synchronous() -> Self {
        EventTiming {
            round_units: 1,
            delay: LinkDelay::Constant(1),
            reorder_seed: None,
            max_skew: 0,
            skew_seed: 0,
        }
    }

    /// Resolves a declarative [`TimingSpec`] against a concrete scenario: the
    /// seed feeds the jitter and skew streams, and the correct-node list
    /// anchors the `PartitionHalves` group assignment (first half = group 0),
    /// mirroring the Lemma 14/15 constructions.
    pub fn from_spec(spec: &TimingSpec, seed: u64, correct_ids: &[NodeId]) -> Self {
        let round_units = spec.round_units.max(1);
        let delay = match &spec.delay {
            DelaySpec::Synchronous => LinkDelay::Constant(round_units),
            DelaySpec::Constant { units } => LinkDelay::Constant((*units).max(1)),
            DelaySpec::Jitter { min, max } => {
                let min = (*min).max(1);
                LinkDelay::Jitter {
                    min,
                    max: (*max).max(min),
                    seed: derive_seed(seed, JITTER_STREAM),
                }
            }
            DelaySpec::PartitionHalves { cross } => {
                let half = correct_ids.len() / 2;
                let partition = PartitionSpec::new()
                    .with_group(0, correct_ids.iter().take(half).copied())
                    .with_group(1, correct_ids.iter().skip(half).copied());
                LinkDelay::Partitioned {
                    spec: partition,
                    same: round_units,
                    cross: *cross,
                }
            }
            DelaySpec::Gst { gst, bound } => LinkDelay::Gst {
                gst: *gst,
                bound: (*bound).max(1),
            },
        };
        EventTiming {
            round_units,
            delay,
            reorder_seed: spec.reorder_seed,
            max_skew: spec.max_skew,
            skew_seed: derive_seed(seed, SKEW_STREAM),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_spec_round_trips_through_serde() {
        let specs = vec![
            TimingSpec::synchronous(),
            TimingSpec::synchronous()
                .with_delay(DelaySpec::Jitter { min: 1, max: 4 })
                .reorder(9)
                .skew(2),
            TimingSpec::synchronous().with_delay(DelaySpec::Gst { gst: 40, bound: 2 }),
            TimingSpec::synchronous().with_delay(DelaySpec::PartitionHalves { cross: None }),
        ];
        for spec in specs {
            let kind = EngineKind::Event(spec);
            let back: EngineKind =
                Deserialize::from_value(&Serialize::to_value(&kind)).expect("round trip");
            assert_eq!(back, kind);
        }
        let sync: EngineKind =
            Deserialize::from_value(&Serialize::to_value(&EngineKind::Sync)).unwrap();
        assert_eq!(sync, EngineKind::Sync);
    }

    #[test]
    fn synchronous_timing_is_flagged_as_such() {
        assert!(TimingSpec::synchronous().is_synchronous());
        assert!(!TimingSpec::synchronous().reorder(1).is_synchronous());
        assert!(!TimingSpec::synchronous().skew(1).is_synchronous());
        assert!(!TimingSpec::synchronous()
            .with_delay(DelaySpec::Constant { units: 3 })
            .is_synchronous());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let delay = LinkDelay::Jitter {
            min: 2,
            max: 5,
            seed: 123,
        };
        for seq in 0..50 {
            let a = delay
                .arrival(NodeId::new(1), NodeId::new(2), 10, seq)
                .unwrap();
            let b = delay
                .arrival(NodeId::new(1), NodeId::new(2), 10, seq)
                .unwrap();
            assert_eq!(a, b);
            assert!((12..=15).contains(&a));
        }
    }

    #[test]
    fn gst_holds_early_messages_until_stabilisation() {
        let delay = LinkDelay::Gst { gst: 100, bound: 3 };
        let pre = delay.arrival(NodeId::new(1), NodeId::new(2), 7, 0).unwrap();
        assert_eq!(pre, 103, "pre-GST messages are held until gst + bound");
        let post = delay
            .arrival(NodeId::new(1), NodeId::new(2), 150, 1)
            .unwrap();
        assert_eq!(post, 153, "post-GST messages respect the bound");
    }

    #[test]
    fn partition_halves_split_the_correct_ids() {
        let ids: Vec<NodeId> = (1..=6).map(NodeId::new).collect();
        let timing = EventTiming::from_spec(
            &TimingSpec::synchronous().with_delay(DelaySpec::PartitionHalves { cross: None }),
            0,
            &ids,
        );
        let LinkDelay::Partitioned { spec, .. } = &timing.delay else {
            panic!("expected a partitioned link delay");
        };
        assert!(spec.same_group(ids[0], ids[2]));
        assert!(spec.same_group(ids[3], ids[5]));
        assert!(!spec.same_group(ids[0], ids[3]));
    }
}
