//! The synchronous, lock-step round engine.
//!
//! [`SyncEngine`] owns the correct nodes (any [`Protocol`] implementation) and one
//! [`Adversary`]. Each call to [`SyncEngine::run_round`] performs one synchronous
//! round of the id-only model, with the following phases and per-round costs (for
//! `n` nodes, `m` compact traffic items produced this round, and `d` point-to-point
//! deliveries to correct nodes):
//!
//! 1. **Produce — O(n + m).** Every live correct node is handed the inbox
//!    accumulated for it in the previous round and produces its outgoing messages.
//!    Broadcasts are *not* expanded: a broadcast is stored once as a compact
//!    [`TrafficItem`](crate::traffic::TrafficItem) in the round's
//!    [`RoundTraffic`], and its payload is wrapped into a [`Shared`] handle —
//!    **the only payload allocation it will ever cost**, with the dedup digest
//!    computed right there; inbox buffers are recycled across rounds instead of
//!    reallocated. An opt-in parallel path
//!    ([`SyncEngine::enable_parallel_stepping`]) fans the stepping out over
//!    `std::thread::scope` threads once the node count reaches
//!    [`EngineConfig::parallel_node_threshold`], merging per-thread traffic in node
//!    order so executions stay bit-for-bit deterministic.
//! 2. **Adversary — O(1) + whatever the strategy reads.** The rushing adversary
//!    observes the full point-to-point expansion of the round's correct traffic
//!    through the lazy [`AdversaryView`] iterators (nothing is allocated by the
//!    engine) and injects arbitrary directed messages — forwarded honest traffic
//!    rides on cloned handles, only fabricated payloads allocate; sender
//!    identities are verified against an O(1) membership index.
//! 3. **Deliver — O(d) expected, zero-copy.** The compact traffic is expanded
//!    *only towards correct recipients* (messages to Byzantine identities never
//!    materialise — the adversary already saw everything via its view), grouped
//!    into next-round inboxes, and deduplicated per `(sender, payload)` pair
//!    through a per-inbox `(sender, digest)` set. A delivery is a
//!    reference-count bump plus a set insert of the payload's **cached** digest:
//!    no payload clone and no payload hash, regardless of fan-out.
//!
//! The wall-clock cost of each phase is accumulated in [`PhaseTimings`]
//! (`produce` / `adversary` / `deliver` / `step`, where *step* is the bookkeeping
//! around the phases: churn, inbox staging and recycling, metrics); the scaling
//! benchmark records the split so "delivery no longer dominates" is a measured
//! statement.
//!
//! The engine supports **dynamic membership** (nodes joining and leaving between
//! rounds), which Section XI of the paper relies on, via [`SyncEngine::add_node`],
//! [`SyncEngine::remove_node`], [`SyncEngine::add_byzantine_id`] and
//! [`SyncEngine::remove_byzantine_id`]; the membership indices are maintained
//! incrementally, so none of these paths rescans the node vectors.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

use crate::adversary::{Adversary, AdversaryView};
use crate::dynamic::{ChurnEvent, ChurnSchedule};
use crate::error::SimError;
use crate::id::NodeId;
use crate::message::{Destination, Directed, Envelope};
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::{Protocol, RoundContext};
use crate::shared::Shared;
use crate::trace::{TraceEvent, TraceLog};
use crate::traffic::{RoundTraffic, TrafficItem};
use crate::wal::{RecoveryManager, RestartPolicy, RestartRecord, Snapshotter, WalConfig};

/// Knobs controlling an engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Hard cap on the number of rounds executed by the `run_until*` helpers; a run
    /// that reaches the cap stops with [`RunOutcome::MaxRoundsExceeded`]. This
    /// protects experiments against livelock caused by a bug or by a too-strong
    /// adversary.
    pub max_rounds: u64,
    /// Whether to keep a [`TraceLog`] of every delivery (memory-heavy; off by default).
    pub trace: bool,
    /// Capacity of the trace log when tracing is enabled.
    pub trace_capacity: usize,
    /// Minimum node count at which the parallel node-step path kicks in. Only
    /// consulted after [`SyncEngine::enable_parallel_stepping`] was called; below
    /// the threshold stepping stays serial (the fan-out overhead would dominate).
    pub parallel_node_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 10_000,
            trace: false,
            trace_capacity: 1 << 20,
            parallel_node_threshold: 64,
        }
    }
}

/// Why a `run_until*` helper stopped.
///
/// Cap exhaustion is part of the *outcome*, not an error: outside the `n > 3f`
/// resiliency bound a protocol may legitimately never meet its stop condition, and
/// experiments record that as a result rather than aborting. Engine errors
/// ([`SimError`]) remain reserved for genuine rule violations such as forged sender
/// identities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "check whether the run completed or exhausted its round cap"]
pub enum RunOutcome {
    /// The stop condition was satisfied after the recorded number of rounds.
    Completed {
        /// Rounds executed in total when the condition became true.
        rounds: u64,
    },
    /// The configured round cap was reached before the stop condition was met.
    MaxRoundsExceeded {
        /// The cap that was hit (also the number of rounds executed).
        limit: u64,
    },
}

impl RunOutcome {
    /// Whether the stop condition was met before the round cap.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Rounds executed when the run stopped, regardless of why it stopped.
    pub fn rounds(&self) -> u64 {
        match *self {
            RunOutcome::Completed { rounds } => rounds,
            RunOutcome::MaxRoundsExceeded { limit } => limit,
        }
    }

    /// Converts cap exhaustion into [`SimError::MaxRoundsExceeded`] for callers that
    /// treat an unfinished run as a hard failure (the pre-redesign behaviour).
    pub fn expect_completed(self) -> Result<u64, SimError> {
        match self {
            RunOutcome::Completed { rounds } => Ok(rounds),
            RunOutcome::MaxRoundsExceeded { limit } => Err(SimError::MaxRoundsExceeded { limit }),
        }
    }
}

/// A churn plan bound to a node constructor, applied by the engine between rounds.
///
/// The schedule says *who* joins or leaves and *when*; the `joiner` callback says how
/// to construct a correct node for a joining identifier (the engine cannot know how
/// to initialise protocol state). Registered with [`SyncEngine::set_churn`].
pub(crate) struct ChurnDriver<N> {
    pub(crate) schedule: ChurnSchedule,
    pub(crate) joiner: Box<dyn FnMut(NodeId) -> N>,
    /// Highest round whose events have been (at least partially) applied. Guards a
    /// retried `run_round` after a failed event from re-applying the round's earlier
    /// events (which would turn one inapplicable event into spurious DuplicateId
    /// errors for the events that did apply).
    pub(crate) applied_upto: u64,
}

/// A deterministic, multiply-rotate hasher for the engine's *internal* maps
/// (inbox registry, dedup sets, delivery slot index). These maps are hot — the
/// dedup set is touched once per delivery — and never observed through their
/// iteration order, so the default SipHash's DoS resistance buys nothing here.
/// Collisions are harmless for correctness: the maps store full keys, and a
/// payload-digest collision still falls back to the exact scan in [`deliver`].
#[derive(Clone, Copy, Default)]
pub(crate) struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, value: u64) {
        self.0 = (self.0.rotate_left(5) ^ value).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so the high bits (hashbrown's control bytes) carry
        // entropy from every mixed word.
        let mut hash = self.0;
        hash ^= hash >> 32;
        hash = hash.wrapping_mul(0xd6e8_feb8_6659_fd93);
        hash ^= hash >> 32;
        hash
    }
}

pub(crate) type FastState = BuildHasherDefault<FastHasher>;

/// A recipient's accumulating inbox: the delivered envelopes plus the
/// `(sender, payload digest)` pairs already seen, for O(1)-expected
/// deduplication. Buffers are recycled through the engine's spare pool rather
/// than reallocated.
#[derive(Debug)]
pub(crate) struct Inbox<P> {
    pub(crate) messages: Vec<Envelope<P>>,
    pub(crate) seen: HashSet<(NodeId, u64), FastState>,
}

impl<P> Default for Inbox<P> {
    fn default() -> Self {
        Inbox {
            messages: Vec::new(),
            seen: HashSet::default(),
        }
    }
}

impl<P> Inbox<P> {
    pub(crate) fn recycle(&mut self) {
        self.messages.clear();
        self.seen.clear();
    }
}

/// Wall-clock time accumulated per named phase of an engine's round loop, in
/// nanoseconds. The phase set is engine-specific: [`SyncEngine`] accumulates
/// `produce` (phase 1, nodes consuming inboxes and producing traffic),
/// `adversary` (phase 2), `deliver` (phase 3) and `step` (the per-round
/// bookkeeping around them: churn application, inbox staging and recycling,
/// membership maintenance, metrics); the event engine additionally reports
/// `schedule` (clock advance plus delay-model expansion into the delivery
/// queue) and `dispatch` (popping due deliveries into inboxes). Timings are
/// measurement-only: they never influence execution, and reports never contain
/// them, so runs stay bit-for-bit reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// `(phase name, accumulated nanoseconds)`, in first-recorded order.
    slots: Vec<(&'static str, u64)>,
}

impl PhaseTimings {
    /// An empty record (no phase measured yet).
    pub fn new() -> Self {
        PhaseTimings::default()
    }

    /// Adds `ns` nanoseconds to a named phase, creating the slot on first use.
    pub fn add(&mut self, phase: &'static str, ns: u64) {
        match self.slots.iter_mut().find(|(name, _)| *name == phase) {
            Some(slot) => slot.1 += ns,
            None => self.slots.push((phase, ns)),
        }
    }

    /// Accumulated nanoseconds of a named phase (0 if never recorded).
    pub fn get(&self, phase: &str) -> u64 {
        self.slots
            .iter()
            .find(|(name, _)| *name == phase)
            .map_or(0, |(_, ns)| *ns)
    }

    /// The recorded `(phase, nanoseconds)` slots, in first-recorded order.
    pub fn phases(&self) -> &[(&'static str, u64)] {
        &self.slots
    }

    /// Total time spent across all phases.
    pub fn total_ns(&self) -> u64 {
        self.slots.iter().map(|(_, ns)| ns).sum()
    }

    /// Name of the phase with the largest accumulated time (`"idle"` if nothing
    /// was recorded yet).
    pub fn dominant(&self) -> &'static str {
        self.slots
            .iter()
            .max_by_key(|(_, ns)| *ns)
            .map(|(name, _)| *name)
            .unwrap_or("idle")
    }
}

pub(crate) fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Delivers one point-to-point message into a recipient's next-round inbox,
/// deduplicating identical `(sender, payload)` pairs as the model prescribes.
///
/// Zero-copy and zero-hash: the payload handle is cloned (a reference-count
/// bump) and its **cached** digest keys the dedup set — neither a payload clone
/// nor a payload hash happens here. The caller already resolved the recipient's
/// inbox to a per-round slot, so the common path is one fast-hashed set insert
/// plus a vector push, regardless of payload size or fan-out.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver<P: PartialEq>(
    inbox: &mut Inbox<P>,
    trace: &mut Option<TraceLog<P>>,
    byzantine_index: &HashSet<NodeId>,
    delivery_round: u64,
    from: NodeId,
    to: NodeId,
    payload: &Shared<P>,
    deliveries: &mut u64,
) {
    if !inbox.seen.insert((from, payload.digest())) {
        // The digest pair was already present: either a true duplicate (drop it)
        // or a 64-bit collision between distinct payloads (deliver anyway). The
        // exact check runs only on digest hits, so the common path stays O(1).
        if inbox
            .messages
            .iter()
            .any(|e| e.from == from && e.payload == *payload)
        {
            return;
        }
    }
    *deliveries += 1;
    if let Some(trace) = trace {
        trace.record(TraceEvent {
            round: delivery_round,
            from,
            to,
            byzantine: byzantine_index.contains(&from),
            payload: payload.clone(),
        });
    }
    inbox.messages.push(Envelope::new(from, payload.clone()));
}

/// The phase-1 node stepper: consumes the extracted per-node inboxes (aligned with
/// `nodes`) and appends the produced traffic, returning the live-node count. Stored
/// as a plain function pointer so the parallel variant — which needs `N: Send` —
/// can be installed without putting that bound on the whole engine.
pub(crate) type StepperFn<N> = fn(
    &mut [N],
    &RoundContext,
    &mut [Option<Inbox<<N as Protocol>::Payload>>],
    &mut RoundTraffic<<N as Protocol>::Payload>,
) -> u64;

pub(crate) fn step_serial<N: Protocol>(
    nodes: &mut [N],
    ctx: &RoundContext,
    inboxes: &mut [Option<Inbox<N::Payload>>],
    traffic: &mut RoundTraffic<N::Payload>,
) -> u64 {
    let mut live = 0u64;
    for (node, slot) in nodes.iter_mut().zip(inboxes.iter_mut()) {
        if node.terminated() {
            continue;
        }
        live += 1;
        let id = node.id();
        let empty: &[Envelope<N::Payload>] = &[];
        let inbox = slot.as_ref().map_or(empty, |b| b.messages.as_slice());
        for message in node.step(ctx, inbox) {
            match message.dest {
                Destination::Broadcast => traffic.push_broadcast(id, message.payload),
                Destination::Unicast(to) => {
                    traffic.push_unicast(Directed::new(id, to, message.payload))
                }
            }
        }
    }
    live
}

pub(crate) fn step_parallel<N>(
    nodes: &mut [N],
    ctx: &RoundContext,
    inboxes: &mut [Option<Inbox<N::Payload>>],
    traffic: &mut RoundTraffic<N::Payload>,
) -> u64
where
    N: Protocol + Send,
    N::Payload: Send + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(nodes.len().max(1));
    if workers <= 1 {
        return step_serial::<N>(nodes, ctx, inboxes, traffic);
    }
    let chunk = nodes.len().div_ceil(workers);
    let mut results: Vec<(u64, Vec<TrafficItem<N::Payload>>)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (node_chunk, inbox_chunk) in nodes.chunks_mut(chunk).zip(inboxes.chunks_mut(chunk)) {
            handles.push(scope.spawn(move || {
                let mut items: Vec<TrafficItem<N::Payload>> = Vec::new();
                let mut live = 0u64;
                for (node, slot) in node_chunk.iter_mut().zip(inbox_chunk.iter_mut()) {
                    if node.terminated() {
                        continue;
                    }
                    live += 1;
                    let id = node.id();
                    let empty: &[Envelope<N::Payload>] = &[];
                    let inbox = slot.as_ref().map_or(empty, |b| b.messages.as_slice());
                    for message in node.step(ctx, inbox) {
                        items.push(match message.dest {
                            Destination::Broadcast => TrafficItem::Broadcast {
                                from: id,
                                payload: Shared::new(message.payload),
                            },
                            Destination::Unicast(to) => {
                                TrafficItem::Unicast(Directed::new(id, to, message.payload))
                            }
                        });
                    }
                }
                (live, items)
            }));
        }
        // Joining in spawn order merges the per-chunk traffic in node order, which
        // keeps the execution identical to the serial stepper.
        for handle in handles {
            results.push(handle.join().expect("node-step worker panicked"));
        }
    });
    let mut live = 0u64;
    for (chunk_live, items) in results {
        live += chunk_live;
        traffic.extend_items(items);
    }
    live
}

/// The synchronous round engine (see module docs).
pub struct SyncEngine<N: Protocol, A: Adversary<N::Payload>> {
    nodes: Vec<N>,
    adversary: A,
    byzantine_ids: Vec<NodeId>,
    /// O(1) membership index mirroring `nodes` (by id).
    correct_index: HashSet<NodeId>,
    /// O(1) membership index mirroring `byzantine_ids`.
    byzantine_index: HashSet<NodeId>,
    inboxes: HashMap<NodeId, Inbox<N::Payload>, FastState>,
    /// Recycled inbox buffers, reused instead of reallocating every round.
    spare_inboxes: Vec<Inbox<N::Payload>>,
    /// Reusable per-node inbox slots for the step phase (aligned with `nodes`).
    step_inboxes: Vec<Option<Inbox<N::Payload>>>,
    /// Reusable delivery slots (aligned with the round's correct recipients), so
    /// a broadcast's fan-out indexes straight into its targets instead of paying
    /// a map lookup per delivery.
    delivery_slots: Vec<Inbox<N::Payload>>,
    /// Reusable `NodeId → delivery slot` index, rebuilt each round (one hash op
    /// per *member* per round instead of one per *delivery*).
    slot_index: HashMap<NodeId, usize, FastState>,
    /// Reusable compact traffic buffer for the current round.
    traffic: RoundTraffic<N::Payload>,
    /// Installed by [`SyncEngine::enable_parallel_stepping`]; `None` means serial.
    parallel_stepper: Option<StepperFn<N>>,
    round: u64,
    metrics: Metrics,
    timings: PhaseTimings,
    trace: Option<TraceLog<N::Payload>>,
    config: EngineConfig,
    churn: Option<ChurnDriver<N>>,
    /// The crash-recovery subsystem; `None` until [`SyncEngine::enable_recovery`].
    recovery: Option<RecoveryManager<N>>,
    /// Retired-traffic GC; off until [`SyncEngine::enable_traffic_gc`].
    traffic_gc: bool,
}

impl<N: Protocol, A: Adversary<N::Payload>> SyncEngine<N, A> {
    /// Creates an engine with the default [`EngineConfig`].
    ///
    /// `byzantine_ids` are the identities controlled by `adversary`; they may overlap
    /// with nothing (a purely silent adversary may control zero identities).
    pub fn new(nodes: Vec<N>, adversary: A, byzantine_ids: Vec<NodeId>) -> Self {
        Self::with_config(nodes, adversary, byzantine_ids, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(
        nodes: Vec<N>,
        adversary: A,
        byzantine_ids: Vec<NodeId>,
        config: EngineConfig,
    ) -> Self {
        let trace = config
            .trace
            .then(|| TraceLog::with_capacity(config.trace_capacity));
        let correct_index = nodes.iter().map(|n| n.id()).collect();
        let byzantine_index = byzantine_ids.iter().copied().collect();
        SyncEngine {
            nodes,
            adversary,
            byzantine_ids,
            correct_index,
            byzantine_index,
            inboxes: HashMap::default(),
            spare_inboxes: Vec::new(),
            step_inboxes: Vec::new(),
            delivery_slots: Vec::new(),
            slot_index: HashMap::default(),
            traffic: RoundTraffic::new(),
            parallel_stepper: None,
            round: 0,
            metrics: Metrics::new(),
            timings: PhaseTimings::default(),
            trace,
            config,
            churn: None,
            recovery: None,
            traffic_gc: false,
        }
    }

    /// Registers a churn plan that the engine applies itself: before executing round
    /// `r`, every [`ChurnEvent`] scheduled for `r` takes effect — correct joiners are
    /// constructed through `joiner`, leavers are removed, and Byzantine identities
    /// are handed to (or taken from) the adversary. This replaces the older pattern
    /// of drivers interleaving `add_node` / `remove_node` calls with `run_rounds`.
    pub fn set_churn(
        &mut self,
        schedule: ChurnSchedule,
        joiner: impl FnMut(NodeId) -> N + 'static,
    ) {
        self.churn = Some(ChurnDriver {
            schedule,
            joiner: Box::new(joiner),
            applied_upto: 0,
        });
    }

    /// Applies the churn events scheduled to take effect before `round`. Each round's
    /// events are applied at most once, even if an error made the caller retry
    /// `run_round`; the error surfaces once and a retry proceeds with whatever did
    /// apply.
    fn apply_churn(&mut self, round: u64) -> Result<(), SimError> {
        let Some(mut driver) = self.churn.take() else {
            return Ok(());
        };
        if round <= driver.applied_upto {
            self.churn = Some(driver);
            return Ok(());
        }
        driver.applied_upto = round;
        let mut result = Ok(());
        for event in driver.schedule.events_before_round(round) {
            let applied = match event {
                ChurnEvent::JoinCorrect(id) => self.add_node((driver.joiner)(id)),
                ChurnEvent::LeaveCorrect(id) => self.remove_node(id).map(|_| ()),
                ChurnEvent::JoinByzantine(id) => self.add_byzantine_id(id),
                ChurnEvent::LeaveByzantine(id) => self.remove_byzantine_id(id),
                ChurnEvent::Crash(id) => self.crash_node(id, round),
                ChurnEvent::Restart { id, policy } => self.restart_node(id, policy, round),
            };
            if let Err(error) = applied {
                result = Err(error);
                break;
            }
        }
        self.churn = Some(driver);
        result
    }

    /// Crashes a node before `round` executes: a Byzantine identity is handed
    /// back by the adversary (only bookkeeping — its "state" is the
    /// adversary's); a correct node is removed and its volatile state dropped,
    /// leaving the base snapshot plus write-ahead log as the only survivors.
    fn crash_node(&mut self, id: NodeId, round: u64) -> Result<(), SimError> {
        if self.recovery.is_none() {
            return Err(SimError::RecoveryDisabled(id));
        }
        if self.byzantine_index.contains(&id) {
            self.remove_byzantine_id(id)?;
            self.recovery
                .as_mut()
                .expect("checked above")
                .crash_byzantine(id);
            return Ok(());
        }
        let node = self.remove_node(id)?;
        self.recovery
            .as_mut()
            .expect("checked above")
            .crash(node, round);
        Ok(())
    }

    /// Restarts a crashed node before `round` executes: replays its log per
    /// the policy and re-admits it through the ordinary membership path (so it
    /// re-announces exactly like a churn joiner).
    fn restart_node(
        &mut self,
        id: NodeId,
        policy: RestartPolicy,
        round: u64,
    ) -> Result<(), SimError> {
        let Some(recovery) = self.recovery.as_mut() else {
            return Err(SimError::RecoveryDisabled(id));
        };
        if recovery.take_crashed_byzantine(id) {
            return self.add_byzantine_id(id);
        }
        let node = recovery.restart(id, policy, round)?;
        self.add_node(node)
    }

    /// Validates that no identifier is used twice across correct and Byzantine nodes.
    pub fn validate_ids(&self) -> Result<(), SimError> {
        let mut seen = HashSet::new();
        for id in self
            .nodes
            .iter()
            .map(|n| n.id())
            .chain(self.byzantine_ids.iter().copied())
        {
            if !seen.insert(id) {
                return Err(SimError::DuplicateId(id));
            }
        }
        Ok(())
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The correct nodes, in insertion order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the correct nodes (used by dynamic-network drivers that need
    /// to feed external inputs, e.g. events to order, between rounds).
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Looks up a correct node by identifier.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Identifiers of the correct nodes currently in the system.
    pub fn correct_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    /// Identifiers currently controlled by the adversary.
    pub fn byzantine_ids(&self) -> &[NodeId] {
        &self.byzantine_ids
    }

    /// Whether `id` is currently a correct node (O(1)).
    pub fn is_correct(&self, id: NodeId) -> bool {
        self.correct_index.contains(&id)
    }

    /// Whether `id` is currently controlled by the adversary (O(1)).
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        self.byzantine_index.contains(&id)
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Wall-clock time accumulated per round phase since the engine was created
    /// (see [`PhaseTimings`]). Measurement-only; never part of a report.
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings.clone()
    }

    /// Overrides the node count at which the parallel step path engages (see
    /// [`EngineConfig::parallel_node_threshold`]). Mostly useful for equivalence
    /// tests that want to force the parallel path at small sizes.
    pub fn set_parallel_node_threshold(&mut self, threshold: usize) {
        self.config.parallel_node_threshold = threshold;
    }

    /// The trace log, if tracing was enabled in the configuration.
    pub fn trace(&self) -> Option<&TraceLog<N::Payload>> {
        self.trace.as_ref()
    }

    /// Enables crash recovery with the default [`WalConfig`]: every correct
    /// node's rounds are write-ahead logged (inbox consumed, message digests
    /// sent, round committed) so [`ChurnEvent::Crash`] / [`ChurnEvent::Restart`]
    /// events become applicable. `snapshot` clones protocol state (for a
    /// [`Recoverable`](crate::node::Recoverable) node, `|n| n.snapshot()`).
    /// On a crash-free run the logging is observationally silent: reports,
    /// metrics and traces are byte-identical to a run without recovery.
    pub fn enable_recovery(&mut self, snapshot: Snapshotter<N>) {
        self.enable_recovery_with(snapshot, WalConfig::default());
    }

    /// Enables crash recovery with an explicit log configuration (tests use a
    /// `sync_every > 1` cadence to open an unsynced suffix for fault injection).
    pub fn enable_recovery_with(&mut self, snapshot: Snapshotter<N>, config: WalConfig) {
        self.recovery = Some(RecoveryManager::with_config(snapshot, config));
    }

    /// Whether crash recovery is enabled.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Enables retired-traffic garbage collection. After each round's delivery
    /// the engine computes the minimum [`Protocol::retired_frontier`] over the
    /// live nodes and prunes queued envelopes whose
    /// [`Protocol::instance_of`] tag lies below it — traffic no node will ever
    /// read again (a decided instance neither sends nor consumes).
    ///
    /// GC is observationally silent on reports: deliveries are counted when a
    /// message enters an inbox, and a pruned message is by construction one
    /// its recipient would have dropped unread. The one contract it relies on
    /// is that correct nodes never *resend* a payload for a globally retired
    /// instance (pruning also forgets the message from the exact-match dedup
    /// fallback, so such a resend could double-deliver) — true for every
    /// stream protocol here, which stops sending at decide time.
    pub fn enable_traffic_gc(&mut self) {
        self.traffic_gc = true;
    }

    /// Whether retired-traffic GC is enabled.
    pub fn traffic_gc_enabled(&self) -> bool {
        self.traffic_gc
    }

    /// Every restart performed so far (empty if recovery is disabled or no
    /// crash/restart cycle has completed yet).
    pub fn recovery_restarts(&self) -> &[RestartRecord] {
        self.recovery.as_ref().map_or(&[], |r| r.restarts())
    }

    /// Envelopes currently queued across all accumulated inboxes — one
    /// component of the soak driver's memory proxy.
    pub fn queued_envelopes(&self) -> usize {
        self.inboxes
            .values()
            .map(|inbox| inbox.messages.len())
            .sum()
    }

    /// Records currently held across all write-ahead logs (0 if recovery is
    /// disabled) — the other component of the soak memory proxy.
    pub fn wal_entries(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.wal_entries())
    }

    /// Adds a correct node between rounds (dynamic join). The node starts executing
    /// from its own round 1 in the next engine round; its inbox starts empty.
    pub fn add_node(&mut self, node: N) -> Result<(), SimError> {
        let id = node.id();
        if self.correct_index.contains(&id) || self.byzantine_index.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        self.correct_index.insert(id);
        self.nodes.push(node);
        Ok(())
    }

    /// Removes a correct node between rounds (dynamic leave). Pending messages to the
    /// node are dropped. Returns the removed node.
    pub fn remove_node(&mut self, id: NodeId) -> Result<N, SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id() == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.correct_index.remove(&id);
        if let Some(mut inbox) = self.inboxes.remove(&id) {
            inbox.recycle();
            self.spare_inboxes.push(inbox);
        }
        Ok(self.nodes.remove(idx))
    }

    /// Registers an additional Byzantine identity (dynamic join of a faulty node).
    pub fn add_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        if self.correct_index.contains(&id) || self.byzantine_index.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        self.byzantine_index.insert(id);
        self.byzantine_ids.push(id);
        Ok(())
    }

    /// Removes a Byzantine identity (dynamic leave of a faulty node).
    pub fn remove_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        let idx = self
            .byzantine_ids
            .iter()
            .position(|&b| b == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.byzantine_index.remove(&id);
        self.byzantine_ids.remove(idx);
        Ok(())
    }

    /// Executes one synchronous round. Returns an error only if the adversary tried
    /// to forge a sender identity or a registered churn event was inapplicable.
    pub fn run_round(&mut self) -> Result<(), SimError> {
        let step_started = Instant::now();
        self.apply_churn(self.round + 1)?;
        self.round += 1;
        let ctx = RoundContext::new(self.round);
        let correct_ids = self.correct_ids();

        // Phase 1 (produce): correct nodes consume their inboxes and produce
        // outgoing messages, kept compact (broadcasts unexpanded, payloads
        // allocated once into shared handles) in the round traffic.
        self.traffic.begin_round(
            correct_ids
                .iter()
                .copied()
                .chain(self.byzantine_ids.iter().copied()),
        );
        self.step_inboxes.clear();
        for node in &self.nodes {
            self.step_inboxes.push(if node.terminated() {
                None
            } else {
                self.inboxes.remove(&node.id())
            });
        }
        // Write-ahead: the inbox a node is about to consume is logged before
        // the node steps, so a crash mid-round loses the step, never tears it.
        if let Some(recovery) = &mut self.recovery {
            for (node, slot) in self.nodes.iter().zip(&self.step_inboxes) {
                if node.terminated() {
                    continue;
                }
                let empty: &[Envelope<N::Payload>] = &[];
                let inbox = slot.as_ref().map_or(empty, |b| b.messages.as_slice());
                recovery.begin_step(node, self.round, inbox);
            }
        }
        let stepper = match self.parallel_stepper {
            Some(parallel) if self.nodes.len() >= self.config.parallel_node_threshold => parallel,
            _ => step_serial::<N>,
        };
        self.timings.add("step", elapsed_ns(step_started));
        let produce_started = Instant::now();
        let live = stepper(
            &mut self.nodes,
            &ctx,
            &mut self.step_inboxes,
            &mut self.traffic,
        );
        self.timings.add("produce", elapsed_ns(produce_started));
        let step_started = Instant::now();
        for mut inbox in self.step_inboxes.drain(..).flatten() {
            inbox.recycle();
            self.spare_inboxes.push(inbox);
        }

        // Inboxes left unconsumed belong to terminated nodes, whose dedup state
        // must persist; any entry whose id is no longer a correct node is dropped
        // (O(1) membership check per entry).
        let correct_index = &self.correct_index;
        self.inboxes.retain(|id, _| correct_index.contains(id));
        // Log the digests of every produced message and commit the round —
        // *before* the adversary phase: a send becomes network-visible only
        // once it is durable in its sender's log.
        if let Some(recovery) = &mut self.recovery {
            for item in self.traffic.items() {
                match item {
                    TrafficItem::Broadcast { from, payload } => {
                        recovery.log_sent(*from, payload.digest())
                    }
                    TrafficItem::Unicast(message) => {
                        recovery.log_sent(message.from, message.payload.digest())
                    }
                }
            }
            for node in &self.nodes {
                recovery.commit_step(node);
            }
        }
        self.timings.add("step", elapsed_ns(step_started));

        // Phase 2 (adversary): the rushing adversary observes the round's traffic
        // (lazily expanded) and injects its own directed messages.
        let adversary_started = Instant::now();
        let view = AdversaryView {
            round: self.round,
            correct_ids: &correct_ids,
            byzantine_ids: &self.byzantine_ids,
            correct_traffic: &self.traffic,
        };
        let byzantine_traffic = self.adversary.step(&view);
        for msg in &byzantine_traffic {
            if !self.byzantine_index.contains(&msg.from) {
                return Err(SimError::ForgedSender { claimed: msg.from });
            }
        }
        self.timings.add("adversary", elapsed_ns(adversary_started));

        // Phase 3 (deliver): build next-round inboxes. A broadcast reaches each
        // *correct* recipient as a reference-count bump of its one shared payload
        // allocation — messages to Byzantine identities are "delivered" to the
        // adversary, which already saw everything via the rushing view, so
        // nothing is stored (or cloned) for them.
        let deliver_started = Instant::now();
        let correct_count = self.traffic.point_to_point_count();
        let byz_count = byzantine_traffic.len() as u64;
        let delivery_round = self.round + 1;
        let mut deliveries = 0u64;
        let do_gc = self.traffic_gc;
        let SyncEngine {
            nodes,
            traffic,
            inboxes,
            spare_inboxes,
            delivery_slots,
            slot_index,
            trace,
            byzantine_index,
            ..
        } = self;
        // Stage the correct recipients' inboxes into index-aligned slots (the
        // round's recipient list leads with the correct nodes, in this exact
        // order), so a broadcast's fan-out is a straight array walk and a
        // unicast target costs one fast-map lookup — no per-delivery hashing of
        // recipient ids.
        slot_index.clear();
        delivery_slots.clear();
        for &id in &correct_ids {
            let inbox = inboxes
                .remove(&id)
                .unwrap_or_else(|| spare_inboxes.pop().unwrap_or_default());
            slot_index.insert(id, delivery_slots.len());
            delivery_slots.push(inbox);
        }
        for item in traffic.items() {
            match item {
                TrafficItem::Broadcast { from, payload } => {
                    for (slot, &to) in delivery_slots.iter_mut().zip(&correct_ids) {
                        deliver(
                            slot,
                            trace,
                            byzantine_index,
                            delivery_round,
                            *from,
                            to,
                            payload,
                            &mut deliveries,
                        );
                    }
                }
                TrafficItem::Unicast(message) => {
                    if let Some(&slot) = slot_index.get(&message.to) {
                        deliver(
                            &mut delivery_slots[slot],
                            trace,
                            byzantine_index,
                            delivery_round,
                            message.from,
                            message.to,
                            &message.payload,
                            &mut deliveries,
                        );
                    }
                }
            }
        }
        for message in &byzantine_traffic {
            if let Some(&slot) = slot_index.get(&message.to) {
                deliver(
                    &mut delivery_slots[slot],
                    trace,
                    byzantine_index,
                    delivery_round,
                    message.from,
                    message.to,
                    &message.payload,
                    &mut deliveries,
                );
            }
        }
        // Unstage: inboxes that accumulated state go back into the registry;
        // untouched ones return to the spare pool (matching the old lazy
        // behaviour, which materialised an inbox only on first delivery).
        for (&id, inbox) in correct_ids.iter().zip(delivery_slots.drain(..)) {
            if inbox.messages.is_empty() && inbox.seen.is_empty() {
                spare_inboxes.push(inbox);
            } else {
                inboxes.insert(id, inbox);
            }
        }

        // Retired-traffic GC (see [`SyncEngine::enable_traffic_gc`]): prune
        // queued envelopes for instances below every live node's retired
        // frontier. Payload classification is payload-only, so any node can
        // serve as the probe; the `seen` dedup sets are deliberately left
        // alone (dedup state persists exactly as for terminated nodes).
        if do_gc {
            let frontier = nodes
                .iter()
                .map(|node| node.retired_frontier())
                .min()
                .unwrap_or(0);
            if frontier > 0 {
                if let Some(probe) = nodes.first() {
                    for inbox in inboxes.values_mut() {
                        inbox.messages.retain(|envelope| {
                            match probe.instance_of(envelope.payload.get()) {
                                Some(tag) => tag >= frontier,
                                None => true,
                            }
                        });
                    }
                }
            }
        }

        self.timings.add("deliver", elapsed_ns(deliver_started));

        let step_started = Instant::now();
        self.metrics.record_round(RoundMetrics {
            round: self.round,
            correct_messages: correct_count,
            byzantine_messages: byz_count,
            deliveries,
            live_correct_nodes: live,
        });
        self.timings.add("step", elapsed_ns(step_started));
        Ok(())
    }

    /// Runs rounds until `stop` returns true (checked after every round) or the
    /// configured round limit is hit.
    ///
    /// Cap exhaustion is reported as [`RunOutcome::MaxRoundsExceeded`], not as an
    /// error — use [`RunOutcome::expect_completed`] where an unfinished run should be
    /// treated as a failure.
    pub fn run_until<F>(&mut self, mut stop: F) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Self) -> bool,
    {
        if stop(self) {
            return Ok(RunOutcome::Completed { rounds: self.round });
        }
        while self.round < self.config.max_rounds {
            self.run_round()?;
            if stop(self) {
                return Ok(RunOutcome::Completed { rounds: self.round });
            }
        }
        Ok(RunOutcome::MaxRoundsExceeded {
            limit: self.config.max_rounds,
        })
    }

    /// Runs rounds until every correct node has terminated, or at most `max_rounds`.
    pub fn run_until_all_terminated(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.terminated()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs rounds until every correct node has produced an output, or at most
    /// `max_rounds`. Useful for primitives (like reliable broadcast) that produce an
    /// output without terminating.
    pub fn run_until_all_output(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.output().is_some()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs until every correct node has terminated, treating cap exhaustion as
    /// [`SimError::MaxRoundsExceeded`]; returns the rounds executed. Convenience for
    /// callers (mostly tests) for which an unfinished run *is* a failure.
    pub fn run_to_termination(&mut self, max_rounds: u64) -> Result<u64, SimError> {
        self.run_until_all_terminated(max_rounds)?
            .expect_completed()
    }

    /// Runs until every correct node has produced an output, treating cap exhaustion
    /// as [`SimError::MaxRoundsExceeded`]; returns the rounds executed.
    pub fn run_to_output(&mut self, max_rounds: u64) -> Result<u64, SimError> {
        self.run_until_all_output(max_rounds)?.expect_completed()
    }

    /// Runs exactly `rounds` additional rounds.
    pub fn run_rounds(&mut self, rounds: u64) -> Result<(), SimError> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// The `(id, output)` pairs of all correct nodes, in insertion order.
    pub fn outputs(&self) -> Vec<(NodeId, Option<N::Output>)> {
        self.nodes.iter().map(|n| (n.id(), n.output())).collect()
    }

    /// Consumes the engine and returns its parts (nodes, adversary, metrics) — used by
    /// drivers that want to inspect adversary state after a run.
    pub fn into_parts(self) -> (Vec<N>, A, Metrics) {
        (self.nodes, self.adversary, self.metrics)
    }
}

impl<N, A> SyncEngine<N, A>
where
    N: Protocol + Send,
    N::Payload: Send + Sync,
    A: Adversary<N::Payload>,
{
    /// Opts in to the parallel node-step path: once the node count reaches
    /// [`EngineConfig::parallel_node_threshold`], phase 1 fans the `step` calls out
    /// over scoped threads (one contiguous chunk per available core) and merges the
    /// produced traffic in node order. Executions are bit-for-bit identical to the
    /// serial path — protocols are independent deterministic state machines, and
    /// the merge preserves the serial traffic order — so this is purely a
    /// wall-clock optimisation for large systems.
    pub fn enable_parallel_stepping(&mut self) {
        self.parallel_stepper = Some(step_parallel::<N>);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FnAdversary, SilentAdversary};
    use crate::message::Outgoing;

    /// A node that broadcasts its id's parity in round 1 and from round 2 on outputs
    /// the number of distinct senders it has heard from.
    #[derive(Clone, Debug)]
    struct Counter {
        id: NodeId,
        senders: std::collections::HashSet<NodeId>,
        decided: Option<usize>,
        decide_round: u64,
    }

    impl Counter {
        fn new(id: NodeId, decide_round: u64) -> Self {
            Counter {
                id,
                senders: Default::default(),
                decided: None,
                decide_round,
            }
        }
    }

    impl Protocol for Counter {
        type Payload = u64;
        type Output = usize;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            self.senders.extend(inbox.iter().map(|e| e.from));
            if ctx.round >= self.decide_round {
                self.decided = Some(self.senders.len());
                vec![]
            } else {
                vec![Outgoing::broadcast(self.id.raw())]
            }
        }

        fn output(&self) -> Option<usize> {
            self.decided
        }
    }

    fn nodes(n: usize) -> Vec<Counter> {
        (0..n)
            .map(|i| Counter::new(NodeId::new(10 + 3 * i as u64), 3))
            .collect()
    }

    #[test]
    fn all_nodes_hear_everyone_without_adversary() {
        let mut engine = SyncEngine::new(nodes(5), SilentAdversary, vec![]);
        engine.validate_ids().unwrap();
        let outcome = engine.run_until_all_terminated(10).unwrap();
        assert_eq!(outcome, RunOutcome::Completed { rounds: 3 });
        for (_, out) in engine.outputs() {
            assert_eq!(out, Some(5));
        }
    }

    #[test]
    fn byzantine_messages_reach_correct_nodes() {
        let byz = NodeId::new(999);
        let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
            v.correct_ids
                .iter()
                .map(|&to| Directed::new(byz, to, 4242))
                .collect()
        });
        let mut engine = SyncEngine::new(nodes(4), adv, vec![byz]);
        engine.run_to_termination(10).unwrap();
        for (_, out) in engine.outputs() {
            assert_eq!(out, Some(5)); // 4 correct + 1 byzantine sender seen
        }
        assert!(engine.metrics().byzantine_messages > 0);
    }

    #[test]
    fn forged_sender_is_rejected() {
        let adv = FnAdversary::new(|v: &AdversaryView<'_, u64>| {
            // Claim to be a correct node — must be rejected.
            vec![Directed::new(v.correct_ids[0], v.correct_ids[1], 1)]
        });
        let mut engine = SyncEngine::new(nodes(3), adv, vec![NodeId::new(999)]);
        let err = engine.run_rounds(1).unwrap_err();
        assert!(matches!(err, SimError::ForgedSender { .. }));
    }

    #[test]
    fn duplicate_payload_from_same_sender_is_deduplicated() {
        let byz = NodeId::new(777);
        let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
            // Send the same payload to the first correct node 5 times.
            vec![Directed::new(byz, v.correct_ids[0], 1); 5]
        });
        let mut engine = SyncEngine::new(nodes(3), adv, vec![byz]);
        engine.run_rounds(1).unwrap();
        // 3 broadcasts × 4 recipients (3 correct + 1 byz) = 12 correct messages;
        // deliveries to correct nodes: each correct node gets 3 correct messages,
        // plus exactly ONE deduplicated byzantine delivery to the first node.
        let m = engine.metrics();
        assert_eq!(m.correct_messages, 12);
        assert_eq!(m.byzantine_messages, 5);
        assert_eq!(m.deliveries, 9 + 1);
    }

    #[test]
    fn dedup_state_persists_for_terminated_nodes() {
        // Every correct node decides in round 1 (decide_round 1 → no broadcasts);
        // the adversary keeps sending the identical (sender, payload) pair. The
        // accumulated inbox of a terminated node is never consumed, so the pair
        // must be delivered exactly once across all rounds — the behaviour the
        // linear-scan dedup of the eager engine had.
        let byz = NodeId::new(777);
        let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
            vec![Directed::new(byz, v.correct_ids[0], 42)]
        });
        let ns: Vec<Counter> = (0..2).map(|i| Counter::new(NodeId::new(i), 1)).collect();
        let mut engine = SyncEngine::new(ns, adv, vec![byz]);
        engine.run_rounds(4).unwrap();
        assert_eq!(engine.metrics().byzantine_messages, 4);
        assert_eq!(
            engine.metrics().deliveries,
            1,
            "cross-round duplicate dropped"
        );
    }

    #[test]
    fn membership_queries_are_maintained_incrementally() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![NodeId::new(900)]);
        assert!(engine.is_correct(NodeId::new(10)));
        assert!(!engine.is_byzantine(NodeId::new(10)));
        assert!(engine.is_byzantine(NodeId::new(900)));
        engine.remove_node(NodeId::new(10)).unwrap();
        assert!(!engine.is_correct(NodeId::new(10)));
        engine.add_node(Counter::new(NodeId::new(10), 3)).unwrap();
        assert!(engine.is_correct(NodeId::new(10)));
        engine.remove_byzantine_id(NodeId::new(900)).unwrap();
        assert!(!engine.is_byzantine(NodeId::new(900)));
    }

    #[test]
    fn parallel_stepping_matches_serial_execution() {
        let run = |parallel: bool| {
            let byz = NodeId::new(999);
            let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
                v.correct_ids
                    .iter()
                    .map(|&to| Directed::new(byz, to, v.round))
                    .collect()
            });
            let config = EngineConfig {
                parallel_node_threshold: 1,
                trace: true,
                trace_capacity: 1 << 16,
                ..Default::default()
            };
            let ns: Vec<Counter> = (0..33)
                .map(|i| Counter::new(NodeId::new(10 + 3 * i as u64), 4))
                .collect();
            let mut engine = SyncEngine::with_config(ns, adv, vec![byz], config);
            if parallel {
                engine.enable_parallel_stepping();
            }
            engine.run_to_termination(10).unwrap();
            (
                engine.metrics().clone(),
                engine.outputs(),
                engine.trace().unwrap().events().to_vec(),
            )
        };
        let (serial_metrics, serial_outputs, serial_trace) = run(false);
        let (parallel_metrics, parallel_outputs, parallel_trace) = run(true);
        assert_eq!(serial_metrics, parallel_metrics);
        assert_eq!(
            serial_outputs
                .iter()
                .map(|(id, out)| (*id, *out))
                .collect::<Vec<_>>(),
            parallel_outputs
                .iter()
                .map(|(id, out)| (*id, *out))
                .collect::<Vec<_>>(),
        );
        assert_eq!(serial_trace, parallel_trace, "delivery order is identical");
    }

    #[test]
    fn phase_timings_accumulate_and_name_a_dominant_phase() {
        let mut engine = SyncEngine::new(nodes(5), SilentAdversary, vec![]);
        assert_eq!(engine.phase_timings(), PhaseTimings::default());
        engine.run_rounds(3).unwrap();
        let timings = engine.phase_timings();
        assert!(timings.total_ns() > 0, "rounds take measurable time");
        assert!(
            timings.total_ns()
                >= timings
                    .get("produce")
                    .max(timings.get("adversary"))
                    .max(timings.get("deliver")),
            "the total covers every phase"
        );
        assert!(["produce", "adversary", "deliver", "step"].contains(&timings.dominant()));
    }

    #[test]
    fn duplicate_ids_are_detected() {
        let mut ns = nodes(3);
        ns.push(Counter::new(NodeId::new(10), 3));
        let engine = SyncEngine::new(ns, SilentAdversary, vec![]);
        assert_eq!(
            engine.validate_ids().unwrap_err(),
            SimError::DuplicateId(NodeId::new(10))
        );
    }

    #[test]
    fn run_until_respects_max_rounds() {
        // Nodes decide at round 100, cap at 5 rounds.
        let ns: Vec<Counter> = (0..3).map(|i| Counter::new(NodeId::new(i), 100)).collect();
        let mut engine = SyncEngine::new(ns, SilentAdversary, vec![]);
        let outcome = engine.run_until_all_terminated(5).unwrap();
        assert_eq!(outcome, RunOutcome::MaxRoundsExceeded { limit: 5 });
        assert!(!outcome.is_completed());
        assert_eq!(outcome.rounds(), 5);
        assert_eq!(
            outcome.expect_completed().unwrap_err(),
            SimError::MaxRoundsExceeded { limit: 5 }
        );
        assert_eq!(engine.round(), 5);
    }

    #[test]
    fn completed_outcome_reports_rounds() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let outcome = engine.run_until_all_terminated(10).unwrap();
        assert!(outcome.is_completed());
        assert_eq!(outcome.rounds(), 3);
        assert_eq!(outcome.expect_completed().unwrap(), 3);
    }

    #[test]
    fn engine_applies_registered_churn() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::JoinCorrect(NodeId::new(500)))
            .with(2, ChurnEvent::JoinByzantine(NodeId::new(600)))
            .with(3, ChurnEvent::LeaveCorrect(NodeId::new(500)))
            .with(3, ChurnEvent::LeaveByzantine(NodeId::new(600)));
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        engine.run_rounds(1).unwrap();
        assert_eq!(engine.correct_ids().len(), 3);
        engine.run_rounds(1).unwrap();
        assert_eq!(
            engine.correct_ids().len(),
            4,
            "joiner arrives before round 2"
        );
        assert_eq!(engine.byzantine_ids().len(), 1);
        engine.run_rounds(1).unwrap();
        assert_eq!(
            engine.correct_ids().len(),
            3,
            "leaver departs before round 3"
        );
        assert!(engine.byzantine_ids().is_empty());
    }

    #[test]
    fn inapplicable_churn_event_is_an_error() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let schedule =
            ChurnSchedule::empty().with(1, ChurnEvent::LeaveCorrect(NodeId::new(424_242)));
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        assert_eq!(
            engine.run_rounds(1).unwrap_err(),
            SimError::UnknownNode(NodeId::new(424_242))
        );
    }

    #[test]
    fn dynamic_join_and_leave() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        engine.run_rounds(1).unwrap();
        engine.add_node(Counter::new(NodeId::new(500), 4)).unwrap();
        assert_eq!(engine.correct_ids().len(), 4);
        // Duplicate join is rejected.
        assert!(engine.add_node(Counter::new(NodeId::new(500), 4)).is_err());
        let removed = engine.remove_node(NodeId::new(500)).unwrap();
        assert_eq!(removed.id(), NodeId::new(500));
        assert!(engine.remove_node(NodeId::new(500)).is_err());
        // Byzantine identity management.
        engine.add_byzantine_id(NodeId::new(600)).unwrap();
        assert!(engine.add_byzantine_id(NodeId::new(600)).is_err());
        engine.remove_byzantine_id(NodeId::new(600)).unwrap();
        assert!(engine.remove_byzantine_id(NodeId::new(600)).is_err());
    }

    #[test]
    fn crash_without_recovery_is_an_error() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let schedule = ChurnSchedule::empty().with(1, ChurnEvent::Crash(NodeId::new(10)));
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        assert_eq!(
            engine.run_rounds(1).unwrap_err(),
            SimError::RecoveryDisabled(NodeId::new(10))
        );
    }

    #[test]
    fn crash_and_restart_recover_a_correct_node_through_the_wal() {
        let crashed = NodeId::new(10);
        let mut engine = SyncEngine::new(nodes(4), SilentAdversary, vec![]);
        engine.enable_recovery(Box::new(Counter::clone));
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::Crash(crashed))
            .with(
                3,
                ChurnEvent::Restart {
                    id: crashed,
                    policy: RestartPolicy::Clean,
                },
            );
        engine.set_churn(schedule, |id| Counter::new(id, 3));
        engine.run_rounds(3).unwrap();
        // Round 2 ran without the crashed node.
        assert_eq!(engine.metrics().per_round[1].live_correct_nodes, 3);
        // The restart replayed the one committed pre-crash round faithfully.
        let restarts = engine.recovery_restarts();
        assert_eq!(restarts.len(), 1);
        assert_eq!(restarts[0].node, crashed);
        assert_eq!(restarts[0].crash_round, 2);
        assert_eq!(restarts[0].restart_round, 3);
        assert_eq!(restarts[0].recovered_rounds, 1);
        assert_eq!(restarts[0].replayed_rounds, 1);
        assert_eq!(restarts[0].send_conflicts, 0);
        assert!(restarts[0].consumed_monotone);
        // The survivors heard all four senders; the crashed node lost the
        // deliveries addressed to it while it was down but still decided.
        for (id, out) in engine.outputs() {
            if id == crashed {
                assert_eq!(out, Some(0), "inboxes queued while down are dropped");
            } else {
                assert_eq!(out, Some(4));
            }
        }
    }

    #[test]
    fn byzantine_crash_cycle_moves_the_identity_out_and_back() {
        let byz = NodeId::new(900);
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![byz]);
        engine.enable_recovery(Box::new(Counter::clone));
        let schedule = ChurnSchedule::empty().with(1, ChurnEvent::Crash(byz)).with(
            2,
            ChurnEvent::Restart {
                id: byz,
                policy: RestartPolicy::Clean,
            },
        );
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        engine.run_rounds(1).unwrap();
        assert!(engine.byzantine_ids().is_empty(), "crashed before round 1");
        engine.run_rounds(1).unwrap();
        assert_eq!(engine.byzantine_ids(), &[byz], "restored before round 2");
        assert!(
            engine.recovery_restarts().is_empty(),
            "a Byzantine cycle is membership bookkeeping, not a WAL replay"
        );
    }

    #[test]
    fn restart_of_a_never_crashed_node_is_unknown() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        engine.enable_recovery(Box::new(Counter::clone));
        let schedule = ChurnSchedule::empty().with(
            1,
            ChurnEvent::Restart {
                id: NodeId::new(77),
                policy: RestartPolicy::Clean,
            },
        );
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        assert_eq!(
            engine.run_rounds(1).unwrap_err(),
            SimError::UnknownNode(NodeId::new(77))
        );
    }

    #[test]
    fn recovery_on_a_crash_free_run_is_observationally_silent() {
        let run = |recover: bool| {
            let mut engine = SyncEngine::new(nodes(5), SilentAdversary, vec![]);
            if recover {
                engine.enable_recovery(Box::new(Counter::clone));
            }
            engine.run_to_termination(10).unwrap();
            (engine.metrics().clone(), engine.outputs())
        };
        let (plain_metrics, plain_outputs) = run(false);
        let (recovery_metrics, recovery_outputs) = run(true);
        assert_eq!(plain_metrics, recovery_metrics);
        assert_eq!(plain_outputs.len(), recovery_outputs.len());
        for ((id_a, out_a), (id_b, out_b)) in plain_outputs.iter().zip(&recovery_outputs) {
            assert_eq!(id_a, id_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn trace_records_deliveries_when_enabled() {
        let config = EngineConfig {
            trace: true,
            trace_capacity: 1000,
            ..Default::default()
        };
        let mut engine = SyncEngine::with_config(nodes(3), SilentAdversary, vec![], config);
        engine.run_rounds(2).unwrap();
        let trace = engine.trace().expect("tracing enabled");
        assert!(!trace.events().is_empty());
        // All traced events are from correct nodes here.
        assert!(trace.events().iter().all(|e| !e.byzantine));
    }

    #[test]
    fn terminated_nodes_stop_sending() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        engine.run_to_termination(10).unwrap();
        let msgs_after_done = {
            let before = engine.metrics().correct_messages;
            engine.run_rounds(2).unwrap();
            engine.metrics().correct_messages - before
        };
        assert_eq!(msgs_after_done, 0);
    }
}
