//! The synchronous, lock-step round engine.
//!
//! [`SyncEngine`] owns the correct nodes (any [`Protocol`] implementation) and one
//! [`Adversary`]. Each call to [`SyncEngine::run_round`] performs one synchronous
//! round of the id-only model:
//!
//! 1. every live correct node is handed the inbox accumulated for it in the previous
//!    round and produces its outgoing messages;
//! 2. the outgoing messages are expanded to point-to-point deliveries (a broadcast is
//!    delivered to every current member, including the sender);
//! 3. the adversary observes all of the round's correct traffic (rushing adversary)
//!    and injects arbitrary directed messages under its own identities;
//! 4. the deliveries are grouped into next-round inboxes, deduplicating identical
//!    `(sender, payload)` pairs as the model prescribes.
//!
//! The engine supports **dynamic membership** (nodes joining and leaving between
//! rounds), which Section XI of the paper relies on, via [`SyncEngine::add_node`],
//! [`SyncEngine::remove_node`], [`SyncEngine::add_byzantine_id`] and
//! [`SyncEngine::remove_byzantine_id`].

use std::collections::HashMap;

use crate::adversary::{Adversary, AdversaryView};
use crate::dynamic::{ChurnEvent, ChurnSchedule};
use crate::error::SimError;
use crate::id::NodeId;
use crate::message::{Destination, Directed, Envelope};
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::{Protocol, RoundContext};
use crate::trace::{TraceEvent, TraceLog};

/// Knobs controlling an engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Hard cap on the number of rounds executed by the `run_until*` helpers; a run
    /// that reaches the cap stops with [`RunOutcome::MaxRoundsExceeded`]. This
    /// protects experiments against livelock caused by a bug or by a too-strong
    /// adversary.
    pub max_rounds: u64,
    /// Whether to keep a [`TraceLog`] of every delivery (memory-heavy; off by default).
    pub trace: bool,
    /// Capacity of the trace log when tracing is enabled.
    pub trace_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 10_000,
            trace: false,
            trace_capacity: 1 << 20,
        }
    }
}

/// Why a `run_until*` helper stopped.
///
/// Cap exhaustion is part of the *outcome*, not an error: outside the `n > 3f`
/// resiliency bound a protocol may legitimately never meet its stop condition, and
/// experiments record that as a result rather than aborting. Engine errors
/// ([`SimError`]) remain reserved for genuine rule violations such as forged sender
/// identities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "check whether the run completed or exhausted its round cap"]
pub enum RunOutcome {
    /// The stop condition was satisfied after the recorded number of rounds.
    Completed {
        /// Rounds executed in total when the condition became true.
        rounds: u64,
    },
    /// The configured round cap was reached before the stop condition was met.
    MaxRoundsExceeded {
        /// The cap that was hit (also the number of rounds executed).
        limit: u64,
    },
}

impl RunOutcome {
    /// Whether the stop condition was met before the round cap.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Rounds executed when the run stopped, regardless of why it stopped.
    pub fn rounds(&self) -> u64 {
        match *self {
            RunOutcome::Completed { rounds } => rounds,
            RunOutcome::MaxRoundsExceeded { limit } => limit,
        }
    }

    /// Converts cap exhaustion into [`SimError::MaxRoundsExceeded`] for callers that
    /// treat an unfinished run as a hard failure (the pre-redesign behaviour).
    pub fn expect_completed(self) -> Result<u64, SimError> {
        match self {
            RunOutcome::Completed { rounds } => Ok(rounds),
            RunOutcome::MaxRoundsExceeded { limit } => Err(SimError::MaxRoundsExceeded { limit }),
        }
    }
}

/// A churn plan bound to a node constructor, applied by the engine between rounds.
///
/// The schedule says *who* joins or leaves and *when*; the `joiner` callback says how
/// to construct a correct node for a joining identifier (the engine cannot know how
/// to initialise protocol state). Registered with [`SyncEngine::set_churn`].
struct ChurnDriver<N> {
    schedule: ChurnSchedule,
    joiner: Box<dyn FnMut(NodeId) -> N>,
    /// Highest round whose events have been (at least partially) applied. Guards a
    /// retried `run_round` after a failed event from re-applying the round's earlier
    /// events (which would turn one inapplicable event into spurious DuplicateId
    /// errors for the events that did apply).
    applied_upto: u64,
}

/// The synchronous round engine (see module docs).
pub struct SyncEngine<N: Protocol, A: Adversary<N::Payload>> {
    nodes: Vec<N>,
    adversary: A,
    byzantine_ids: Vec<NodeId>,
    inboxes: HashMap<NodeId, Vec<Envelope<N::Payload>>>,
    round: u64,
    metrics: Metrics,
    trace: Option<TraceLog<N::Payload>>,
    config: EngineConfig,
    churn: Option<ChurnDriver<N>>,
}

impl<N: Protocol, A: Adversary<N::Payload>> SyncEngine<N, A> {
    /// Creates an engine with the default [`EngineConfig`].
    ///
    /// `byzantine_ids` are the identities controlled by `adversary`; they may overlap
    /// with nothing (a purely silent adversary may control zero identities).
    pub fn new(nodes: Vec<N>, adversary: A, byzantine_ids: Vec<NodeId>) -> Self {
        Self::with_config(nodes, adversary, byzantine_ids, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(
        nodes: Vec<N>,
        adversary: A,
        byzantine_ids: Vec<NodeId>,
        config: EngineConfig,
    ) -> Self {
        let trace = config
            .trace
            .then(|| TraceLog::with_capacity(config.trace_capacity));
        SyncEngine {
            nodes,
            adversary,
            byzantine_ids,
            inboxes: HashMap::new(),
            round: 0,
            metrics: Metrics::new(),
            trace,
            config,
            churn: None,
        }
    }

    /// Registers a churn plan that the engine applies itself: before executing round
    /// `r`, every [`ChurnEvent`] scheduled for `r` takes effect — correct joiners are
    /// constructed through `joiner`, leavers are removed, and Byzantine identities
    /// are handed to (or taken from) the adversary. This replaces the older pattern
    /// of drivers interleaving `add_node` / `remove_node` calls with `run_rounds`.
    pub fn set_churn(
        &mut self,
        schedule: ChurnSchedule,
        joiner: impl FnMut(NodeId) -> N + 'static,
    ) {
        self.churn = Some(ChurnDriver {
            schedule,
            joiner: Box::new(joiner),
            applied_upto: 0,
        });
    }

    /// Applies the churn events scheduled to take effect before `round`. Each round's
    /// events are applied at most once, even if an error made the caller retry
    /// `run_round`; the error surfaces once and a retry proceeds with whatever did
    /// apply.
    fn apply_churn(&mut self, round: u64) -> Result<(), SimError> {
        let Some(mut driver) = self.churn.take() else {
            return Ok(());
        };
        if round <= driver.applied_upto {
            self.churn = Some(driver);
            return Ok(());
        }
        driver.applied_upto = round;
        let mut result = Ok(());
        for event in driver.schedule.events_before_round(round) {
            let applied = match event {
                ChurnEvent::JoinCorrect(id) => self.add_node((driver.joiner)(id)),
                ChurnEvent::LeaveCorrect(id) => self.remove_node(id).map(|_| ()),
                ChurnEvent::JoinByzantine(id) => self.add_byzantine_id(id),
                ChurnEvent::LeaveByzantine(id) => self.remove_byzantine_id(id),
            };
            if let Err(error) = applied {
                result = Err(error);
                break;
            }
        }
        self.churn = Some(driver);
        result
    }

    /// Validates that no identifier is used twice across correct and Byzantine nodes.
    pub fn validate_ids(&self) -> Result<(), SimError> {
        let mut seen = std::collections::HashSet::new();
        for id in self
            .nodes
            .iter()
            .map(|n| n.id())
            .chain(self.byzantine_ids.iter().copied())
        {
            if !seen.insert(id) {
                return Err(SimError::DuplicateId(id));
            }
        }
        Ok(())
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The correct nodes, in insertion order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the correct nodes (used by dynamic-network drivers that need
    /// to feed external inputs, e.g. events to order, between rounds).
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Looks up a correct node by identifier.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Identifiers of the correct nodes currently in the system.
    pub fn correct_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id()).collect()
    }

    /// Identifiers currently controlled by the adversary.
    pub fn byzantine_ids(&self) -> &[NodeId] {
        &self.byzantine_ids
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace log, if tracing was enabled in the configuration.
    pub fn trace(&self) -> Option<&TraceLog<N::Payload>> {
        self.trace.as_ref()
    }

    /// Adds a correct node between rounds (dynamic join). The node starts executing
    /// from its own round 1 in the next engine round; its inbox starts empty.
    pub fn add_node(&mut self, node: N) -> Result<(), SimError> {
        let id = node.id();
        if self.nodes.iter().any(|n| n.id() == id) || self.byzantine_ids.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        self.nodes.push(node);
        Ok(())
    }

    /// Removes a correct node between rounds (dynamic leave). Pending messages to the
    /// node are dropped. Returns the removed node.
    pub fn remove_node(&mut self, id: NodeId) -> Result<N, SimError> {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id() == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.inboxes.remove(&id);
        Ok(self.nodes.remove(idx))
    }

    /// Registers an additional Byzantine identity (dynamic join of a faulty node).
    pub fn add_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        if self.nodes.iter().any(|n| n.id() == id) || self.byzantine_ids.contains(&id) {
            return Err(SimError::DuplicateId(id));
        }
        self.byzantine_ids.push(id);
        Ok(())
    }

    /// Removes a Byzantine identity (dynamic leave of a faulty node).
    pub fn remove_byzantine_id(&mut self, id: NodeId) -> Result<(), SimError> {
        let idx = self
            .byzantine_ids
            .iter()
            .position(|&b| b == id)
            .ok_or(SimError::UnknownNode(id))?;
        self.byzantine_ids.remove(idx);
        Ok(())
    }

    /// Executes one synchronous round. Returns an error only if the adversary tried
    /// to forge a sender identity or a registered churn event was inapplicable.
    pub fn run_round(&mut self) -> Result<(), SimError> {
        self.apply_churn(self.round + 1)?;
        self.round += 1;
        let ctx = RoundContext::new(self.round);
        let correct_ids = self.correct_ids();

        // Phase 1: correct nodes consume their inboxes and produce outgoing messages.
        let mut correct_traffic: Vec<Directed<N::Payload>> = Vec::new();
        let mut live = 0u64;
        for node in &mut self.nodes {
            if node.terminated() {
                continue;
            }
            live += 1;
            let id = node.id();
            let inbox = self.inboxes.remove(&id).unwrap_or_default();
            let outgoing = node.step(&ctx, &inbox);
            for msg in outgoing {
                match msg.dest {
                    Destination::Broadcast => {
                        for &to in correct_ids.iter().chain(self.byzantine_ids.iter()) {
                            correct_traffic.push(Directed::new(id, to, msg.payload.clone()));
                        }
                    }
                    Destination::Unicast(to) => {
                        correct_traffic.push(Directed::new(id, to, msg.payload.clone()));
                    }
                }
            }
        }

        // Terminated nodes' stale inboxes are dropped so memory does not grow.
        self.inboxes.retain(|id, _| correct_ids.contains(id));

        // Phase 2: the rushing adversary observes the round's traffic and injects its
        // own directed messages.
        let view = AdversaryView {
            round: self.round,
            correct_ids: &correct_ids,
            byzantine_ids: &self.byzantine_ids,
            correct_traffic: &correct_traffic,
        };
        let byzantine_traffic = self.adversary.step(&view);
        for msg in &byzantine_traffic {
            if !self.byzantine_ids.contains(&msg.from) {
                return Err(SimError::ForgedSender { claimed: msg.from });
            }
        }

        // Phase 3: build next-round inboxes, deduplicating identical (sender, payload)
        // pairs per recipient.
        let correct_count = correct_traffic.len() as u64;
        let byz_count = byzantine_traffic.len() as u64;
        let mut deliveries = 0u64;
        let byz_ids = self.byzantine_ids.clone();
        for msg in correct_traffic.into_iter().chain(byzantine_traffic) {
            if !correct_ids.contains(&msg.to) {
                // Messages to Byzantine nodes are "delivered" to the adversary, which
                // already saw everything via the rushing view; nothing to store.
                continue;
            }
            let inbox = self.inboxes.entry(msg.to).or_default();
            let dup = inbox
                .iter()
                .any(|e| e.from == msg.from && e.payload == msg.payload);
            if dup {
                continue;
            }
            deliveries += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent {
                    round: self.round + 1,
                    from: msg.from,
                    to: msg.to,
                    byzantine: byz_ids.contains(&msg.from),
                    payload: msg.payload.clone(),
                });
            }
            inbox.push(Envelope::new(msg.from, msg.payload));
        }

        self.metrics.record_round(RoundMetrics {
            round: self.round,
            correct_messages: correct_count,
            byzantine_messages: byz_count,
            deliveries,
            live_correct_nodes: live,
        });
        Ok(())
    }

    /// Runs rounds until `stop` returns true (checked after every round) or the
    /// configured round limit is hit.
    ///
    /// Cap exhaustion is reported as [`RunOutcome::MaxRoundsExceeded`], not as an
    /// error — use [`RunOutcome::expect_completed`] where an unfinished run should be
    /// treated as a failure.
    pub fn run_until<F>(&mut self, mut stop: F) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Self) -> bool,
    {
        if stop(self) {
            return Ok(RunOutcome::Completed { rounds: self.round });
        }
        while self.round < self.config.max_rounds {
            self.run_round()?;
            if stop(self) {
                return Ok(RunOutcome::Completed { rounds: self.round });
            }
        }
        Ok(RunOutcome::MaxRoundsExceeded {
            limit: self.config.max_rounds,
        })
    }

    /// Runs rounds until every correct node has terminated, or at most `max_rounds`.
    pub fn run_until_all_terminated(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.terminated()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs rounds until every correct node has produced an output, or at most
    /// `max_rounds`. Useful for primitives (like reliable broadcast) that produce an
    /// output without terminating.
    pub fn run_until_all_output(&mut self, max_rounds: u64) -> Result<RunOutcome, SimError> {
        let previous = self.config.max_rounds;
        self.config.max_rounds = max_rounds;
        let result = self.run_until(|engine| engine.nodes.iter().all(|n| n.output().is_some()));
        self.config.max_rounds = previous;
        result
    }

    /// Runs until every correct node has terminated, treating cap exhaustion as
    /// [`SimError::MaxRoundsExceeded`]; returns the rounds executed. Convenience for
    /// callers (mostly tests) for which an unfinished run *is* a failure.
    pub fn run_to_termination(&mut self, max_rounds: u64) -> Result<u64, SimError> {
        self.run_until_all_terminated(max_rounds)?
            .expect_completed()
    }

    /// Runs until every correct node has produced an output, treating cap exhaustion
    /// as [`SimError::MaxRoundsExceeded`]; returns the rounds executed.
    pub fn run_to_output(&mut self, max_rounds: u64) -> Result<u64, SimError> {
        self.run_until_all_output(max_rounds)?.expect_completed()
    }

    /// Runs exactly `rounds` additional rounds.
    pub fn run_rounds(&mut self, rounds: u64) -> Result<(), SimError> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// The `(id, output)` pairs of all correct nodes, in insertion order.
    pub fn outputs(&self) -> Vec<(NodeId, Option<N::Output>)> {
        self.nodes.iter().map(|n| (n.id(), n.output())).collect()
    }

    /// Consumes the engine and returns its parts (nodes, adversary, metrics) — used by
    /// drivers that want to inspect adversary state after a run.
    pub fn into_parts(self) -> (Vec<N>, A, Metrics) {
        (self.nodes, self.adversary, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FnAdversary, SilentAdversary};
    use crate::message::Outgoing;

    /// A node that broadcasts its id's parity in round 1 and from round 2 on outputs
    /// the number of distinct senders it has heard from.
    #[derive(Debug)]
    struct Counter {
        id: NodeId,
        senders: std::collections::HashSet<NodeId>,
        decided: Option<usize>,
        decide_round: u64,
    }

    impl Counter {
        fn new(id: NodeId, decide_round: u64) -> Self {
            Counter {
                id,
                senders: Default::default(),
                decided: None,
                decide_round,
            }
        }
    }

    impl Protocol for Counter {
        type Payload = u64;
        type Output = usize;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            self.senders.extend(inbox.iter().map(|e| e.from));
            if ctx.round >= self.decide_round {
                self.decided = Some(self.senders.len());
                vec![]
            } else {
                vec![Outgoing::broadcast(self.id.raw())]
            }
        }

        fn output(&self) -> Option<usize> {
            self.decided
        }
    }

    fn nodes(n: usize) -> Vec<Counter> {
        (0..n)
            .map(|i| Counter::new(NodeId::new(10 + 3 * i as u64), 3))
            .collect()
    }

    #[test]
    fn all_nodes_hear_everyone_without_adversary() {
        let mut engine = SyncEngine::new(nodes(5), SilentAdversary, vec![]);
        engine.validate_ids().unwrap();
        let outcome = engine.run_until_all_terminated(10).unwrap();
        assert_eq!(outcome, RunOutcome::Completed { rounds: 3 });
        for (_, out) in engine.outputs() {
            assert_eq!(out, Some(5));
        }
    }

    #[test]
    fn byzantine_messages_reach_correct_nodes() {
        let byz = NodeId::new(999);
        let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
            v.correct_ids
                .iter()
                .map(|&to| Directed::new(byz, to, 4242))
                .collect()
        });
        let mut engine = SyncEngine::new(nodes(4), adv, vec![byz]);
        engine.run_to_termination(10).unwrap();
        for (_, out) in engine.outputs() {
            assert_eq!(out, Some(5)); // 4 correct + 1 byzantine sender seen
        }
        assert!(engine.metrics().byzantine_messages > 0);
    }

    #[test]
    fn forged_sender_is_rejected() {
        let adv = FnAdversary::new(|v: &AdversaryView<'_, u64>| {
            // Claim to be a correct node — must be rejected.
            vec![Directed::new(v.correct_ids[0], v.correct_ids[1], 1)]
        });
        let mut engine = SyncEngine::new(nodes(3), adv, vec![NodeId::new(999)]);
        let err = engine.run_rounds(1).unwrap_err();
        assert!(matches!(err, SimError::ForgedSender { .. }));
    }

    #[test]
    fn duplicate_payload_from_same_sender_is_deduplicated() {
        let byz = NodeId::new(777);
        let adv = FnAdversary::new(move |v: &AdversaryView<'_, u64>| {
            // Send the same payload to the first correct node 5 times.
            vec![Directed::new(byz, v.correct_ids[0], 1); 5]
        });
        let mut engine = SyncEngine::new(nodes(3), adv, vec![byz]);
        engine.run_rounds(1).unwrap();
        // 3 broadcasts × 4 recipients (3 correct + 1 byz) = 12 correct messages;
        // deliveries to correct nodes: each correct node gets 3 correct messages,
        // plus exactly ONE deduplicated byzantine delivery to the first node.
        let m = engine.metrics();
        assert_eq!(m.correct_messages, 12);
        assert_eq!(m.byzantine_messages, 5);
        assert_eq!(m.deliveries, 9 + 1);
    }

    #[test]
    fn duplicate_ids_are_detected() {
        let mut ns = nodes(3);
        ns.push(Counter::new(NodeId::new(10), 3));
        let engine = SyncEngine::new(ns, SilentAdversary, vec![]);
        assert_eq!(
            engine.validate_ids().unwrap_err(),
            SimError::DuplicateId(NodeId::new(10))
        );
    }

    #[test]
    fn run_until_respects_max_rounds() {
        // Nodes decide at round 100, cap at 5 rounds.
        let ns: Vec<Counter> = (0..3).map(|i| Counter::new(NodeId::new(i), 100)).collect();
        let mut engine = SyncEngine::new(ns, SilentAdversary, vec![]);
        let outcome = engine.run_until_all_terminated(5).unwrap();
        assert_eq!(outcome, RunOutcome::MaxRoundsExceeded { limit: 5 });
        assert!(!outcome.is_completed());
        assert_eq!(outcome.rounds(), 5);
        assert_eq!(
            outcome.expect_completed().unwrap_err(),
            SimError::MaxRoundsExceeded { limit: 5 }
        );
        assert_eq!(engine.round(), 5);
    }

    #[test]
    fn completed_outcome_reports_rounds() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let outcome = engine.run_until_all_terminated(10).unwrap();
        assert!(outcome.is_completed());
        assert_eq!(outcome.rounds(), 3);
        assert_eq!(outcome.expect_completed().unwrap(), 3);
    }

    #[test]
    fn engine_applies_registered_churn() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::JoinCorrect(NodeId::new(500)))
            .with(2, ChurnEvent::JoinByzantine(NodeId::new(600)))
            .with(3, ChurnEvent::LeaveCorrect(NodeId::new(500)))
            .with(3, ChurnEvent::LeaveByzantine(NodeId::new(600)));
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        engine.run_rounds(1).unwrap();
        assert_eq!(engine.correct_ids().len(), 3);
        engine.run_rounds(1).unwrap();
        assert_eq!(
            engine.correct_ids().len(),
            4,
            "joiner arrives before round 2"
        );
        assert_eq!(engine.byzantine_ids().len(), 1);
        engine.run_rounds(1).unwrap();
        assert_eq!(
            engine.correct_ids().len(),
            3,
            "leaver departs before round 3"
        );
        assert!(engine.byzantine_ids().is_empty());
    }

    #[test]
    fn inapplicable_churn_event_is_an_error() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        let schedule =
            ChurnSchedule::empty().with(1, ChurnEvent::LeaveCorrect(NodeId::new(424_242)));
        engine.set_churn(schedule, |id| Counter::new(id, 100));
        assert_eq!(
            engine.run_rounds(1).unwrap_err(),
            SimError::UnknownNode(NodeId::new(424_242))
        );
    }

    #[test]
    fn dynamic_join_and_leave() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        engine.run_rounds(1).unwrap();
        engine.add_node(Counter::new(NodeId::new(500), 4)).unwrap();
        assert_eq!(engine.correct_ids().len(), 4);
        // Duplicate join is rejected.
        assert!(engine.add_node(Counter::new(NodeId::new(500), 4)).is_err());
        let removed = engine.remove_node(NodeId::new(500)).unwrap();
        assert_eq!(removed.id(), NodeId::new(500));
        assert!(engine.remove_node(NodeId::new(500)).is_err());
        // Byzantine identity management.
        engine.add_byzantine_id(NodeId::new(600)).unwrap();
        assert!(engine.add_byzantine_id(NodeId::new(600)).is_err());
        engine.remove_byzantine_id(NodeId::new(600)).unwrap();
        assert!(engine.remove_byzantine_id(NodeId::new(600)).is_err());
    }

    #[test]
    fn trace_records_deliveries_when_enabled() {
        let config = EngineConfig {
            trace: true,
            trace_capacity: 1000,
            ..Default::default()
        };
        let mut engine = SyncEngine::with_config(nodes(3), SilentAdversary, vec![], config);
        engine.run_rounds(2).unwrap();
        let trace = engine.trace().expect("tracing enabled");
        assert!(!trace.events().is_empty());
        // All traced events are from correct nodes here.
        assert!(trace.events().iter().all(|e| !e.byzantine));
    }

    #[test]
    fn terminated_nodes_stop_sending() {
        let mut engine = SyncEngine::new(nodes(3), SilentAdversary, vec![]);
        engine.run_to_termination(10).unwrap();
        let msgs_after_done = {
            let before = engine.metrics().correct_messages;
            engine.run_rounds(2).unwrap();
            engine.metrics().correct_messages - before
        };
        assert_eq!(msgs_after_done, 0);
    }
}
