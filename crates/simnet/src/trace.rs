//! Execution tracing.
//!
//! A [`TraceLog`] records every delivered message. It is disabled by default (tracing
//! every message of a large sweep would dominate memory), and enabled by the tests
//! and by the experiment runner when a detailed view of an execution is needed — for
//! instance to verify the *relay* property of reliable broadcast, which is a statement
//! about the rounds in which different correct nodes accept.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// A single delivered message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent<P> {
    /// Round at the beginning of which the message was delivered.
    pub round: u64,
    /// True sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Whether the sender was controlled by the adversary.
    pub byzantine: bool,
    /// Payload as delivered.
    pub payload: P,
}

/// A bounded log of delivered messages.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog<P> {
    events: Vec<TraceEvent<P>>,
    capacity: usize,
    dropped: u64,
}

impl<P> TraceLog<P> {
    /// Creates a trace log that keeps at most `capacity` events; further events are
    /// counted but not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, respecting the capacity bound.
    pub fn record(&mut self, event: TraceEvent<P>) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent<P>] {
        &self.events
    }

    /// Number of events that exceeded the capacity and were dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events delivered in a specific round.
    pub fn in_round(&self, round: u64) -> impl Iterator<Item = &TraceEvent<P>> {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// Events delivered to a specific node.
    pub fn to_node(&self, to: NodeId) -> impl Iterator<Item = &TraceEvent<P>> {
        self.events.iter().filter(move |e| e.to == to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, from: u64, to: u64, byz: bool) -> TraceEvent<u32> {
        TraceEvent {
            round,
            from: NodeId::new(from),
            to: NodeId::new(to),
            byzantine: byz,
            payload: 0,
        }
    }

    #[test]
    fn records_up_to_capacity_and_counts_drops() {
        let mut log = TraceLog::with_capacity(2);
        log.record(ev(1, 1, 2, false));
        log.record(ev(1, 2, 1, false));
        log.record(ev(2, 1, 2, true));
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn filters_by_round_and_recipient() {
        let mut log = TraceLog::with_capacity(16);
        log.record(ev(1, 1, 2, false));
        log.record(ev(2, 2, 3, false));
        log.record(ev(2, 3, 2, true));
        assert_eq!(log.in_round(2).count(), 2);
        assert_eq!(log.to_node(NodeId::new(2)).count(), 2);
        assert_eq!(log.to_node(NodeId::new(9)).count(), 0);
    }
}
