//! Execution tracing.
//!
//! A [`TraceLog`] records every delivered message. It is disabled by default (tracing
//! every message of a large sweep would dominate memory), and enabled by the tests
//! and by the experiment runner when a detailed view of an execution is needed — for
//! instance to verify the *relay* property of reliable broadcast, which is a statement
//! about the rounds in which different correct nodes accept.
//!
//! Events hold their payload behind the same [`Shared`] handle the inboxes use, so
//! tracing a broadcast-heavy run costs one payload allocation per *message*, not per
//! delivery — and the handle tokens let consumers (see `uba_checker`'s trace
//! attribution) verify that a delivery fan-out really shared its payload instead of
//! silently re-materialising it.

use std::hash::Hash;

use serde::{Deserialize, Error, Serialize, Value};

use crate::id::NodeId;
use crate::shared::Shared;

/// A single delivered message.
#[derive(Debug)]
pub struct TraceEvent<P> {
    /// Round at the beginning of which the message was delivered.
    pub round: u64,
    /// True sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Whether the sender was controlled by the adversary.
    pub byzantine: bool,
    /// Payload as delivered (a handle shared with the recipient's inbox).
    pub payload: Shared<P>,
}

impl<P> TraceEvent<P> {
    /// The payload value (method shadowing the field, for ergonomic matching).
    pub fn payload(&self) -> &P {
        &self.payload
    }
}

impl<P> Clone for TraceEvent<P> {
    /// A handle clone — no payload copy, regardless of `P`.
    fn clone(&self) -> Self {
        TraceEvent {
            round: self.round,
            from: self.from,
            to: self.to,
            byzantine: self.byzantine,
            payload: self.payload.clone(),
        }
    }
}

impl<P: PartialEq> PartialEq for TraceEvent<P> {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.from == other.from
            && self.to == other.to
            && self.byzantine == other.byzantine
            && self.payload == other.payload
    }
}

impl<P: Eq> Eq for TraceEvent<P> {}

impl<P: Serialize> Serialize for TraceEvent<P> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("round".to_string(), self.round.to_value()),
            ("from".to_string(), self.from.to_value()),
            ("to".to_string(), self.to.to_value()),
            ("byzantine".to_string(), self.byzantine.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<P: Deserialize + Hash> Deserialize for TraceEvent<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(TraceEvent {
            round: field(value, "round")?,
            from: field(value, "from")?,
            to: field(value, "to")?,
            byzantine: field(value, "byzantine")?,
            payload: field(value, "payload")?,
        })
    }
}

/// A bounded log of delivered messages.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog<P> {
    events: Vec<TraceEvent<P>>,
    capacity: usize,
    dropped: u64,
}

impl<P: Eq> Eq for TraceLog<P> {}

impl<P> TraceLog<P> {
    /// Creates a trace log that keeps at most `capacity` events; further events are
    /// counted but not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, respecting the capacity bound.
    pub fn record(&mut self, event: TraceEvent<P>) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent<P>] {
        &self.events
    }

    /// Number of events that exceeded the capacity and were dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events delivered in a specific round.
    pub fn in_round(&self, round: u64) -> impl Iterator<Item = &TraceEvent<P>> {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// Events delivered to a specific node.
    pub fn to_node(&self, to: NodeId) -> impl Iterator<Item = &TraceEvent<P>> {
        self.events.iter().filter(move |e| e.to == to)
    }
}

impl<P: Serialize> Serialize for TraceLog<P> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("events".to_string(), self.events.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            ("dropped".to_string(), self.dropped.to_value()),
        ])
    }
}

impl<P: Deserialize + Hash> Deserialize for TraceLog<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(TraceLog {
            events: field(value, "events")?,
            capacity: field(value, "capacity")?,
            dropped: field(value, "dropped")?,
        })
    }
}

/// Deserialises one named field of an object [`Value`] (the impls above are
/// hand-written because the shared payload field needs a `P: Hash` bound the
/// derive does not know to add).
fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::from_value(value.field(name)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, from: u64, to: u64, byz: bool) -> TraceEvent<u32> {
        TraceEvent {
            round,
            from: NodeId::new(from),
            to: NodeId::new(to),
            byzantine: byz,
            payload: Shared::new(0),
        }
    }

    #[test]
    fn records_up_to_capacity_and_counts_drops() {
        let mut log = TraceLog::with_capacity(2);
        log.record(ev(1, 1, 2, false));
        log.record(ev(1, 2, 1, false));
        log.record(ev(2, 1, 2, true));
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn filters_by_round_and_recipient() {
        let mut log = TraceLog::with_capacity(16);
        log.record(ev(1, 1, 2, false));
        log.record(ev(2, 2, 3, false));
        log.record(ev(2, 3, 2, true));
        assert_eq!(log.in_round(2).count(), 2);
        assert_eq!(log.to_node(NodeId::new(2)).count(), 2);
        assert_eq!(log.to_node(NodeId::new(9)).count(), 0);
    }

    #[test]
    fn serde_round_trips_events_and_logs() {
        let mut log = TraceLog::with_capacity(4);
        log.record(ev(1, 1, 2, false));
        log.record(ev(2, 3, 1, true));
        let back: TraceLog<u32> = Deserialize::from_value(&Serialize::to_value(&log)).unwrap();
        assert_eq!(back, log);
    }
}
