//! Node identifiers for the id-only model.
//!
//! The paper requires identifiers to be *unique* but **not necessarily consecutive**:
//! a node cannot infer the number of participants from the identifier space. This
//! module provides the [`NodeId`] newtype and the [`IdSpace`] generator, which produces
//! deterministic, unique, non-consecutive identifier sets for experiments.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::seeded_rng;

/// Identifier of a node in the id-only model.
///
/// Identifiers are unique but carry no structural information: they are not
/// consecutive, not dense, and reveal nothing about `n` or `f`. Protocol code must
/// therefore never use arithmetic on identifiers beyond ordering and equality — the
/// rotor-coordinator, for instance, orders its candidate set by identifier, which is
/// the only operation the paper's algorithms need.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw 64-bit value backing this identifier.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// Strategy for generating a set of unique identifiers.
///
/// Experiments must not accidentally leak `n` to the algorithms through the identifier
/// layout, so the default strategies produce sparse, shuffled identifier sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdSpace {
    /// Consecutive identifiers `0, 1, 2, …` — only used by the classic baselines,
    /// which assume consecutive identifiers (e.g. the known-`f` rotating coordinator).
    Consecutive,
    /// Identifiers spaced by a fixed stride with per-identifier jitter, e.g.
    /// `7, 112, 203, 311, …`. This is the default for id-only experiments.
    Sparse {
        /// Average gap between successive identifiers (must be ≥ 2).
        stride: u64,
    },
    /// Uniformly random 64-bit identifiers (collisions are re-drawn).
    Random,
    /// The adversary-chosen layout: a sparse identifier set handed out from the
    /// **top down**, so the *last* generated identifiers — the Byzantine split in
    /// [`ScenarioBuilder::context`](crate::sim::ScenarioBuilder::context), which
    /// always assigns the tail of the generated list to the adversary — are the
    /// **smallest** in the system. Every identifier-ordered structure (rotor
    /// candidate sets, consecutive-id coordinator schedules, smallest-id
    /// tie-breaks) then encounters the Byzantine identities first. This is the
    /// layout a paper-strength adversary would pick, since the model lets faulty
    /// nodes choose their identifiers.
    AdversaryLow {
        /// Average gap between successive identifiers (must be ≥ 2).
        stride: u64,
    },
}

impl Default for IdSpace {
    fn default() -> Self {
        IdSpace::Sparse { stride: 97 }
    }
}

impl IdSpace {
    /// Generates `count` unique identifiers deterministically from `seed`.
    ///
    /// The returned vector is sorted in increasing identifier order — except for
    /// [`IdSpace::AdversaryLow`], which hands the same sparse set out in
    /// *decreasing* order so the tail of the list (the Byzantine split) receives
    /// the smallest identifiers. Callers that need an arbitrary assignment order
    /// should shuffle the result themselves.
    pub fn generate(self, count: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = seeded_rng(seed);
        match self {
            IdSpace::Consecutive => (0..count as u64).map(NodeId::new).collect(),
            IdSpace::Sparse { stride } => {
                let stride = stride.max(2);
                let mut ids = Vec::with_capacity(count);
                let mut next = rng.gen_range(1..stride);
                for _ in 0..count {
                    ids.push(NodeId::new(next));
                    next += 1 + rng.gen_range(1..stride);
                }
                ids
            }
            IdSpace::Random => {
                let mut ids = std::collections::BTreeSet::new();
                while ids.len() < count {
                    ids.insert(rng.gen::<u64>());
                }
                ids.into_iter().map(NodeId::new).collect()
            }
            IdSpace::AdversaryLow { stride } => {
                let mut ids = IdSpace::Sparse { stride }.generate(count, seed);
                ids.reverse();
                ids
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(NodeId::from(7u64), NodeId::new(7));
    }

    #[test]
    fn node_ids_order_by_raw_value() {
        let a = NodeId::new(3);
        let b = NodeId::new(30);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn consecutive_ids_are_dense() {
        let ids = IdSpace::Consecutive.generate(5, 0);
        assert_eq!(ids, (0..5).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_ids_are_unique_sorted_and_non_consecutive() {
        let ids = IdSpace::Sparse { stride: 50 }.generate(100, 7);
        assert_eq!(ids.len(), 100);
        for pair in ids.windows(2) {
            assert!(pair[0] < pair[1], "ids must be strictly increasing");
            assert!(
                pair[1].raw() - pair[0].raw() >= 2,
                "sparse ids must not be consecutive"
            );
        }
    }

    #[test]
    fn random_ids_are_unique() {
        let ids = IdSpace::Random.generate(256, 123);
        let set: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), 256);
    }

    #[test]
    fn adversary_low_hands_the_smallest_ids_to_the_tail() {
        let forward = IdSpace::Sparse { stride: 50 }.generate(9, 7);
        let reversed = IdSpace::AdversaryLow { stride: 50 }.generate(9, 7);
        let mut expected = forward.clone();
        expected.reverse();
        assert_eq!(reversed, expected, "same sparse set, top-down hand-out");
        // The tail (what the builder assigns to the adversary) holds the minimum.
        assert_eq!(
            reversed.last().copied(),
            forward.first().copied(),
            "the last handed-out identifier is the smallest in the system"
        );
        for pair in reversed.windows(2) {
            assert!(pair[0] > pair[1], "strictly decreasing hand-out order");
        }
    }

    #[test]
    fn generation_is_deterministic_for_fixed_seed() {
        let a = IdSpace::default().generate(32, 99);
        let b = IdSpace::default().generate(32, 99);
        assert_eq!(a, b);
        let c = IdSpace::default().generate(32, 100);
        assert_ne!(a, c);
    }
}
