//! Declarative churn schedules for dynamic networks (Section XI of the paper).
//!
//! The paper's dynamic model lets the adversary decide, before each round, which nodes
//! join the network — subject to `n > 3f` holding when the round starts — while nodes
//! leave by announcing it. A [`ChurnSchedule`] captures such a plan: a list of
//! [`ChurnEvent`]s keyed by the round *before* which they take effect. Experiment
//! drivers read the schedule and apply it to a [`SyncEngine`](crate::SyncEngine)
//! through its `add_node` / `remove_node` / `add_byzantine_id` /
//! `remove_byzantine_id` methods.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;
use crate::wal::RestartPolicy;

/// A single membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A correct node with the given identifier joins.
    JoinCorrect(NodeId),
    /// A Byzantine identity joins (becomes controllable by the adversary).
    JoinByzantine(NodeId),
    /// A correct node announces that it leaves.
    LeaveCorrect(NodeId),
    /// A Byzantine identity leaves.
    LeaveByzantine(NodeId),
    /// A node crashes: its volatile state is lost, its durable WAL survives.
    /// Applying this event requires recovery to be enabled on the engine (see
    /// [`SyncEngine::enable_recovery`](crate::SyncEngine::enable_recovery)).
    Crash(NodeId),
    /// A previously crashed node restarts, replaying its WAL (after the
    /// policy's fault, if any) and re-announcing through the membership path.
    Restart {
        /// The crashed node that restarts.
        id: NodeId,
        /// The log fault applied before replay (or [`RestartPolicy::Clean`]).
        policy: RestartPolicy,
    },
}

impl ChurnEvent {
    /// The identifier affected by the event.
    pub fn id(&self) -> NodeId {
        match *self {
            ChurnEvent::JoinCorrect(id)
            | ChurnEvent::JoinByzantine(id)
            | ChurnEvent::LeaveCorrect(id)
            | ChurnEvent::LeaveByzantine(id)
            | ChurnEvent::Crash(id)
            | ChurnEvent::Restart { id, .. } => id,
        }
    }

    /// Whether the event is a join (of either kind). A [`ChurnEvent::Restart`]
    /// is *not* a join: the identity was already admitted before it crashed.
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            ChurnEvent::JoinCorrect(_) | ChurnEvent::JoinByzantine(_)
        )
    }

    /// Whether the event is part of a crash/restart cycle.
    pub fn is_crash_cycle(&self) -> bool {
        matches!(self, ChurnEvent::Crash(_) | ChurnEvent::Restart { .. })
    }
}

/// A plan of membership changes over time.
///
/// Events are stored as `(round, event)` pairs; an event with round `r` takes effect
/// *before* round `r` executes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnSchedule {
    /// Creates an empty schedule (a static network).
    pub fn empty() -> Self {
        ChurnSchedule::default()
    }

    /// Adds an event that takes effect before the given round.
    pub fn push(&mut self, round: u64, event: ChurnEvent) {
        self.events.push((round, event));
    }

    /// Builder-style variant of [`ChurnSchedule::push`].
    pub fn with(mut self, round: u64, event: ChurnEvent) -> Self {
        self.push(round, event);
        self
    }

    /// Every scheduled `(round, event)` pair, in insertion order.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// The schedule with the `index`-th event (in insertion order) removed — the
    /// shrinking move of the fuzz harness. Indices out of range return the
    /// schedule unchanged.
    pub fn without_event(&self, index: usize) -> ChurnSchedule {
        let mut shrunk = self.clone();
        if index < shrunk.events.len() {
            shrunk.events.remove(index);
        }
        shrunk
    }

    /// The schedule with every [`ChurnEvent::Crash`] / [`ChurnEvent::Restart`]
    /// affecting `id` removed — the crash-cycle shrinking move. Dropping a
    /// crash without its restart (or vice versa) would leave an inapplicable
    /// schedule, so the cycle shrinks as a unit.
    pub fn without_crash_cycle(&self, id: NodeId) -> ChurnSchedule {
        let mut shrunk = self.clone();
        shrunk
            .events
            .retain(|(_, e)| !(e.is_crash_cycle() && e.id() == id));
        shrunk
    }

    /// The schedule with each crash/restart event whose identifier appears as
    /// an `old` key of `mapping` redirected onto its `new` replacement. The
    /// mapping is applied in one pass, so replacements cannot cascade into each
    /// other even when a `new` identifier equals another pair's `old` one.
    /// Non-crash events are never retargeted — join/leave identifiers are part
    /// of the scenario, not resolved against a population layout.
    pub fn retarget_crash_cycles(&self, mapping: &[(NodeId, NodeId)]) -> ChurnSchedule {
        let mut out = self.clone();
        for (_, event) in &mut out.events {
            if !event.is_crash_cycle() {
                continue;
            }
            if let Some(&(_, new)) = mapping.iter().find(|(old, _)| *old == event.id()) {
                *event = match *event {
                    ChurnEvent::Restart { policy, .. } => ChurnEvent::Restart { id: new, policy },
                    _ => ChurnEvent::Crash(new),
                };
            }
        }
        out
    }

    /// Whether the schedule contains any crash or restart event.
    pub fn has_crash_events(&self) -> bool {
        self.events.iter().any(|(_, e)| e.is_crash_cycle())
    }

    /// The distinct identifiers with at least one crash/restart event, in first
    /// appearance order.
    pub fn crash_cycle_ids(&self) -> Vec<NodeId> {
        let mut ids = Vec::new();
        for (_, event) in &self.events {
            if event.is_crash_cycle() && !ids.contains(&event.id()) {
                ids.push(event.id());
            }
        }
        ids
    }

    /// All events scheduled to take effect before `round`, in insertion order.
    pub fn events_before_round(&self, round: u64) -> Vec<ChurnEvent> {
        self.events
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, e)| *e)
            .collect()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last round for which an event is scheduled, or 0 if empty.
    pub fn horizon(&self) -> u64 {
        self.events.iter().map(|(r, _)| *r).max().unwrap_or(0)
    }

    /// The largest number of Byzantine identities simultaneously in the system at
    /// any point of the schedule, starting from `initial` — the failure bound a
    /// known-`f` protocol must be told, since a promise that covers only the
    /// initial adversaries is broken the moment a Byzantine identity joins.
    pub fn peak_byzantine(&self, initial: usize) -> usize {
        let mut byz = initial as i64;
        let mut peak = byz;
        // Identity tracking for crash/restart: a Byzantine identity known from
        // a `JoinByzantine` event that crashes leaves the system until its
        // restart — the restart must restore it, not double-count it. Crashes
        // of identifiers never seen joining as Byzantine are treated as
        // correct-node crashes and do not move the count.
        let mut known_byz: Vec<NodeId> = Vec::new();
        let mut crashed_byz: Vec<NodeId> = Vec::new();
        for round in 1..=self.horizon() {
            for event in self.events_before_round(round) {
                match event {
                    ChurnEvent::JoinByzantine(id) => {
                        byz += 1;
                        if !known_byz.contains(&id) {
                            known_byz.push(id);
                        }
                    }
                    ChurnEvent::LeaveByzantine(id) => {
                        byz -= 1;
                        known_byz.retain(|&b| b != id);
                    }
                    ChurnEvent::Crash(id) => {
                        if known_byz.contains(&id) {
                            byz -= 1;
                            known_byz.retain(|&b| b != id);
                            crashed_byz.push(id);
                        }
                    }
                    ChurnEvent::Restart { id, .. } => {
                        if crashed_byz.contains(&id) {
                            byz += 1;
                            crashed_byz.retain(|&b| b != id);
                            known_byz.push(id);
                        }
                    }
                    ChurnEvent::JoinCorrect(_) | ChurnEvent::LeaveCorrect(_) => {}
                }
                peak = peak.max(byz);
            }
        }
        peak.max(0) as usize
    }

    /// Checks that, assuming `initial_correct` correct and `initial_byzantine`
    /// Byzantine members, the schedule keeps `n > 3f` at the start of every round up
    /// to its horizon. Returns the first violating round, if any.
    ///
    /// This is the constraint the paper places on the adversary's churn choices; the
    /// experiment generators use this check to only produce admissible schedules.
    pub fn first_resiliency_violation(
        &self,
        initial_correct: usize,
        initial_byzantine: usize,
    ) -> Option<u64> {
        let mut correct = initial_correct as i64;
        let mut byz = initial_byzantine as i64;
        // Same identity tracking as `peak_byzantine`: a crash removes the node
        // from whichever population it belongs to, a restart restores it.
        let mut known_byz: Vec<NodeId> = Vec::new();
        let mut crashed_byz: Vec<NodeId> = Vec::new();
        for round in 1..=self.horizon() {
            for event in self.events_before_round(round) {
                match event {
                    ChurnEvent::JoinCorrect(_) => correct += 1,
                    ChurnEvent::LeaveCorrect(_) => correct -= 1,
                    ChurnEvent::JoinByzantine(id) => {
                        byz += 1;
                        if !known_byz.contains(&id) {
                            known_byz.push(id);
                        }
                    }
                    ChurnEvent::LeaveByzantine(id) => {
                        byz -= 1;
                        known_byz.retain(|&b| b != id);
                    }
                    ChurnEvent::Crash(id) => {
                        if known_byz.contains(&id) {
                            byz -= 1;
                            known_byz.retain(|&b| b != id);
                            crashed_byz.push(id);
                        } else {
                            correct -= 1;
                        }
                    }
                    ChurnEvent::Restart { id, .. } => {
                        if crashed_byz.contains(&id) {
                            byz += 1;
                            crashed_byz.retain(|&b| b != id);
                            known_byz.push(id);
                        } else {
                            correct += 1;
                        }
                    }
                }
            }
            let n = correct + byz;
            if n <= 3 * byz || correct < 0 || byz < 0 {
                return Some(round);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_report_id_and_kind() {
        let e = ChurnEvent::JoinCorrect(NodeId::new(7));
        assert_eq!(e.id(), NodeId::new(7));
        assert!(e.is_join());
        assert!(!ChurnEvent::LeaveByzantine(NodeId::new(1)).is_join());
    }

    #[test]
    fn schedule_filters_by_round() {
        let schedule = ChurnSchedule::empty()
            .with(3, ChurnEvent::JoinCorrect(NodeId::new(1)))
            .with(3, ChurnEvent::LeaveCorrect(NodeId::new(2)))
            .with(5, ChurnEvent::JoinByzantine(NodeId::new(3)));
        assert_eq!(schedule.len(), 3);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.horizon(), 5);
        assert_eq!(schedule.events_before_round(3).len(), 2);
        assert_eq!(schedule.events_before_round(4).len(), 0);
        assert_eq!(schedule.events_before_round(5).len(), 1);
    }

    #[test]
    fn resiliency_check_accepts_admissible_schedule() {
        // 7 correct, 2 byzantine initially; add one correct node at round 2.
        let schedule = ChurnSchedule::empty().with(2, ChurnEvent::JoinCorrect(NodeId::new(100)));
        assert_eq!(schedule.first_resiliency_violation(7, 2), None);
    }

    #[test]
    fn resiliency_check_catches_violation() {
        // 4 correct, 1 byzantine; adding another byzantine at round 2 gives n = 6, f = 2:
        // 6 > 6 is false, so round 2 violates n > 3f.
        let schedule = ChurnSchedule::empty().with(2, ChurnEvent::JoinByzantine(NodeId::new(50)));
        assert_eq!(schedule.first_resiliency_violation(4, 1), Some(2));
    }

    #[test]
    fn peak_byzantine_does_not_double_count_a_crash_restart_cycle() {
        // One initial Byzantine identity; id 9 joins as Byzantine before round
        // 2 (peak 2), crashes before round 3 (back to 1) and restarts before
        // round 5. The restart restores the crashed identity — it must not be
        // counted as a *new* Byzantine join, so the peak stays 2.
        let id9 = NodeId::new(9);
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::JoinByzantine(id9))
            .with(3, ChurnEvent::Crash(id9))
            .with(
                5,
                ChurnEvent::Restart {
                    id: id9,
                    policy: RestartPolicy::Clean,
                },
            );
        assert_eq!(schedule.peak_byzantine(1), 2);
        // Without the crash the same join alone already peaks at 2.
        assert_eq!(
            ChurnSchedule::empty()
                .with(2, ChurnEvent::JoinByzantine(id9))
                .peak_byzantine(1),
            2
        );
    }

    #[test]
    fn crash_cycle_helpers_identify_and_remove_cycles() {
        let a = NodeId::new(4);
        let b = NodeId::new(5);
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::Crash(a))
            .with(3, ChurnEvent::JoinCorrect(NodeId::new(8)))
            .with(
                4,
                ChurnEvent::Restart {
                    id: a,
                    policy: RestartPolicy::Clean,
                },
            )
            .with(5, ChurnEvent::Crash(b));
        assert!(schedule.has_crash_events());
        assert_eq!(schedule.crash_cycle_ids(), vec![a, b]);
        let shrunk = schedule.without_crash_cycle(a);
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.crash_cycle_ids(), vec![b]);
        assert!(!ChurnSchedule::empty()
            .with(1, ChurnEvent::JoinCorrect(a))
            .has_crash_events());
    }

    #[test]
    fn retargeting_crash_cycles_is_one_pass_and_leaves_other_events_alone() {
        let a = NodeId::new(4);
        let b = NodeId::new(5);
        let schedule = ChurnSchedule::empty()
            .with(2, ChurnEvent::Crash(a))
            .with(3, ChurnEvent::JoinCorrect(b))
            .with(
                4,
                ChurnEvent::Restart {
                    id: a,
                    policy: RestartPolicy::Clean,
                },
            )
            .with(5, ChurnEvent::Crash(b));
        // a → b and b → 6 in one pass: the crash of `a` must land on `b`
        // without then cascading through the second pair onto 6, and the
        // JoinCorrect(b) event must keep its identifier.
        let retargeted = schedule.retarget_crash_cycles(&[(a, b), (b, NodeId::new(6))]);
        assert_eq!(
            retargeted.events()[0],
            (2, ChurnEvent::Crash(b)),
            "crash retargeted once"
        );
        assert_eq!(retargeted.events()[1], (3, ChurnEvent::JoinCorrect(b)));
        assert_eq!(
            retargeted.events()[2],
            (
                4,
                ChurnEvent::Restart {
                    id: b,
                    policy: RestartPolicy::Clean,
                }
            ),
            "restart follows its crash and keeps the policy"
        );
        assert_eq!(
            retargeted.events()[3],
            (5, ChurnEvent::Crash(NodeId::new(6)))
        );
        // An empty mapping is the identity.
        assert_eq!(schedule.retarget_crash_cycles(&[]), schedule);
    }

    #[test]
    fn resiliency_counts_a_correct_crash_as_a_departure() {
        // 4 correct, 1 Byzantine: crashing a correct node before round 2 gives
        // n = 4, f = 1 — 4 > 3 still holds; crashing two violates (3 ≤ 3).
        let schedule = ChurnSchedule::empty().with(2, ChurnEvent::Crash(NodeId::new(1)));
        assert_eq!(schedule.first_resiliency_violation(4, 1), None);
        let schedule = schedule.with(2, ChurnEvent::Crash(NodeId::new(2)));
        assert_eq!(schedule.first_resiliency_violation(4, 1), Some(2));
    }

    #[test]
    fn empty_schedule_has_no_violation() {
        assert_eq!(
            ChurnSchedule::empty().first_resiliency_violation(1, 0),
            None
        );
        assert_eq!(ChurnSchedule::empty().horizon(), 0);
    }
}
