//! Declarative churn schedules for dynamic networks (Section XI of the paper).
//!
//! The paper's dynamic model lets the adversary decide, before each round, which nodes
//! join the network — subject to `n > 3f` holding when the round starts — while nodes
//! leave by announcing it. A [`ChurnSchedule`] captures such a plan: a list of
//! [`ChurnEvent`]s keyed by the round *before* which they take effect. Experiment
//! drivers read the schedule and apply it to a [`SyncEngine`](crate::SyncEngine)
//! through its `add_node` / `remove_node` / `add_byzantine_id` /
//! `remove_byzantine_id` methods.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// A single membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A correct node with the given identifier joins.
    JoinCorrect(NodeId),
    /// A Byzantine identity joins (becomes controllable by the adversary).
    JoinByzantine(NodeId),
    /// A correct node announces that it leaves.
    LeaveCorrect(NodeId),
    /// A Byzantine identity leaves.
    LeaveByzantine(NodeId),
}

impl ChurnEvent {
    /// The identifier affected by the event.
    pub fn id(&self) -> NodeId {
        match *self {
            ChurnEvent::JoinCorrect(id)
            | ChurnEvent::JoinByzantine(id)
            | ChurnEvent::LeaveCorrect(id)
            | ChurnEvent::LeaveByzantine(id) => id,
        }
    }

    /// Whether the event is a join (of either kind).
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            ChurnEvent::JoinCorrect(_) | ChurnEvent::JoinByzantine(_)
        )
    }
}

/// A plan of membership changes over time.
///
/// Events are stored as `(round, event)` pairs; an event with round `r` takes effect
/// *before* round `r` executes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnSchedule {
    /// Creates an empty schedule (a static network).
    pub fn empty() -> Self {
        ChurnSchedule::default()
    }

    /// Adds an event that takes effect before the given round.
    pub fn push(&mut self, round: u64, event: ChurnEvent) {
        self.events.push((round, event));
    }

    /// Builder-style variant of [`ChurnSchedule::push`].
    pub fn with(mut self, round: u64, event: ChurnEvent) -> Self {
        self.push(round, event);
        self
    }

    /// Every scheduled `(round, event)` pair, in insertion order.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// The schedule with the `index`-th event (in insertion order) removed — the
    /// shrinking move of the fuzz harness. Indices out of range return the
    /// schedule unchanged.
    pub fn without_event(&self, index: usize) -> ChurnSchedule {
        let mut shrunk = self.clone();
        if index < shrunk.events.len() {
            shrunk.events.remove(index);
        }
        shrunk
    }

    /// All events scheduled to take effect before `round`, in insertion order.
    pub fn events_before_round(&self, round: u64) -> Vec<ChurnEvent> {
        self.events
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, e)| *e)
            .collect()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last round for which an event is scheduled, or 0 if empty.
    pub fn horizon(&self) -> u64 {
        self.events.iter().map(|(r, _)| *r).max().unwrap_or(0)
    }

    /// The largest number of Byzantine identities simultaneously in the system at
    /// any point of the schedule, starting from `initial` — the failure bound a
    /// known-`f` protocol must be told, since a promise that covers only the
    /// initial adversaries is broken the moment a Byzantine identity joins.
    pub fn peak_byzantine(&self, initial: usize) -> usize {
        let mut byz = initial as i64;
        let mut peak = byz;
        for round in 1..=self.horizon() {
            for event in self.events_before_round(round) {
                match event {
                    ChurnEvent::JoinByzantine(_) => byz += 1,
                    ChurnEvent::LeaveByzantine(_) => byz -= 1,
                    ChurnEvent::JoinCorrect(_) | ChurnEvent::LeaveCorrect(_) => {}
                }
                peak = peak.max(byz);
            }
        }
        peak.max(0) as usize
    }

    /// Checks that, assuming `initial_correct` correct and `initial_byzantine`
    /// Byzantine members, the schedule keeps `n > 3f` at the start of every round up
    /// to its horizon. Returns the first violating round, if any.
    ///
    /// This is the constraint the paper places on the adversary's churn choices; the
    /// experiment generators use this check to only produce admissible schedules.
    pub fn first_resiliency_violation(
        &self,
        initial_correct: usize,
        initial_byzantine: usize,
    ) -> Option<u64> {
        let mut correct = initial_correct as i64;
        let mut byz = initial_byzantine as i64;
        for round in 1..=self.horizon() {
            for event in self.events_before_round(round) {
                match event {
                    ChurnEvent::JoinCorrect(_) => correct += 1,
                    ChurnEvent::LeaveCorrect(_) => correct -= 1,
                    ChurnEvent::JoinByzantine(_) => byz += 1,
                    ChurnEvent::LeaveByzantine(_) => byz -= 1,
                }
            }
            let n = correct + byz;
            if n <= 3 * byz || correct < 0 || byz < 0 {
                return Some(round);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_report_id_and_kind() {
        let e = ChurnEvent::JoinCorrect(NodeId::new(7));
        assert_eq!(e.id(), NodeId::new(7));
        assert!(e.is_join());
        assert!(!ChurnEvent::LeaveByzantine(NodeId::new(1)).is_join());
    }

    #[test]
    fn schedule_filters_by_round() {
        let schedule = ChurnSchedule::empty()
            .with(3, ChurnEvent::JoinCorrect(NodeId::new(1)))
            .with(3, ChurnEvent::LeaveCorrect(NodeId::new(2)))
            .with(5, ChurnEvent::JoinByzantine(NodeId::new(3)));
        assert_eq!(schedule.len(), 3);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.horizon(), 5);
        assert_eq!(schedule.events_before_round(3).len(), 2);
        assert_eq!(schedule.events_before_round(4).len(), 0);
        assert_eq!(schedule.events_before_round(5).len(), 1);
    }

    #[test]
    fn resiliency_check_accepts_admissible_schedule() {
        // 7 correct, 2 byzantine initially; add one correct node at round 2.
        let schedule = ChurnSchedule::empty().with(2, ChurnEvent::JoinCorrect(NodeId::new(100)));
        assert_eq!(schedule.first_resiliency_violation(7, 2), None);
    }

    #[test]
    fn resiliency_check_catches_violation() {
        // 4 correct, 1 byzantine; adding another byzantine at round 2 gives n = 6, f = 2:
        // 6 > 6 is false, so round 2 violates n > 3f.
        let schedule = ChurnSchedule::empty().with(2, ChurnEvent::JoinByzantine(NodeId::new(50)));
        assert_eq!(schedule.first_resiliency_violation(4, 1), Some(2));
    }

    #[test]
    fn empty_schedule_has_no_violation() {
        assert_eq!(
            ChurnSchedule::empty().first_resiliency_violation(1, 0),
            None
        );
        assert_eq!(ChurnSchedule::empty().horizon(), 0);
    }
}
