//! Per-protocol payload vocabularies and the vocabulary-driven adversaries.
//!
//! The scripted strategies in `uba-core::adversaries` each hard-code one payload
//! shape (a split vote, an equivocating init, a ghost echo). That is enough to
//! break the consensus family at the `n = 3f` boundary, but the broadcast and
//! rotor families survive those attacks — not because they are more robust, but
//! because the attack plans cannot *speak their payload languages*. A
//! [`PayloadVocab`] closes that gap: every
//! [`ProtocolFactory`](crate::sim::ProtocolFactory) describes, for its own wire
//! format, which payloads are
//!
//! * **valid** — something a correct participant could plausibly send in the
//!   current scene (round, membership): announcements, echoes of real values,
//!   round-tagged votes;
//! * **boundary** — payloads aimed at the protocol's counting thresholds:
//!   forged-value echoes (which meet the `n_v/3` support rule *exactly* at
//!   `n = 3f` and are harmless inside the bound), equivocation pairs, extreme
//!   values at the trim limits;
//! * **garbage** — type-correct nonsense: ghost identifiers, out-of-phase
//!   messages, saturating values. Garbage is seeded by the scene's round, so a
//!   flooding adversary can fabricate *fresh* nonsense every round (e.g. a new
//!   ghost rotor candidate per round).
//!
//! The [`VocabAdversary`] interprets those vocabularies as the
//! `AttackBehavior::Noise` / `AttackBehavior::Semantic` behaviours of the plan
//! DSL (see [`crate::attack`]): payloads are enumerated once per round, allocated
//! into [`Shared`] handles once per distinct fabrication, and fanned out by
//! handle — so a noise round costs O(|vocabulary|) payload allocations, never
//! O(|vocabulary| · n), keeping the zero-copy allocation accounting intact.

use std::collections::BTreeMap;
use std::hash::Hash;

use crate::adversary::{Adversary, AdversaryView};
use crate::attack::{AdaptiveStrategy, SemanticStrategy};
use crate::id::NodeId;
use crate::message::Directed;
use crate::shared::Shared;

/// What a vocabulary gets to see when enumerating payloads: the live scenario as
/// of the current round. All fields are borrowed from the adversary's view, so a
/// vocabulary can tailor payloads to the actual membership (echo real candidate
/// identifiers, replay real values) and to the round (phase-appropriate vote
/// shapes, fresh per-round ghosts).
#[derive(Debug)]
pub struct VocabScene<'a> {
    /// Current round (1-based).
    pub round: u64,
    /// The scenario seed — vocabularies derive any extra variety from it so runs
    /// stay reproducible.
    pub seed: u64,
    /// Identifiers of the correct nodes currently in the system.
    pub correct_ids: &'a [NodeId],
    /// Identifiers controlled by the adversary.
    pub byzantine_ids: &'a [NodeId],
}

impl VocabScene<'_> {
    /// A deterministic identifier that no real node holds, fresh per `(round, k)`
    /// pair — the raw material for ghost candidates and fabricated instances.
    /// The base sits far above every generated [`IdSpace`](crate::id::IdSpace)
    /// layout, and successive rounds produce strictly increasing identifiers, so
    /// a per-round ghost always sorts *after* the real membership.
    pub fn ghost_id(&self, k: u64) -> NodeId {
        NodeId::new((1 << 40) + self.round * 64 + k)
    }

    /// A deterministic 64-bit value derived from the scene's seed and round, for
    /// vocabularies that want per-round value variety without their own RNG.
    pub fn derived_value(&self, k: u64) -> u64 {
        crate::rng::derive_seed(self.seed, self.round * 131 + k)
    }
}

/// The `(min, max)` of a real-valued correct input set — the raw material for
/// the value-shaped vocabularies (approximate agreement and its baselines),
/// whose valid payloads are the extremes of the correct range and whose
/// boundary campaigns anchor the trimmed multisets at those extremes. Returns
/// `(0.0, 0.0)` for an empty set.
pub fn input_extremes(inputs: &[f64]) -> (f64, f64) {
    let lo = inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

/// A per-protocol payload vocabulary (see module docs). Implemented by every
/// `ProtocolFactory` in `uba-core::sim` and `uba-baselines::factory`, and
/// returned (boxed) from
/// [`ProtocolFactory::payload_vocab`](crate::sim::ProtocolFactory::payload_vocab).
///
/// All three methods are *enumerations for one round*: they are called once per
/// round by the vocabulary adversaries and must be pure in the scene (same
/// scene, same payloads), which keeps fuzzed runs byte-for-byte reproducible.
pub trait PayloadVocab<P> {
    /// Semantically valid payloads for the scene — what a correct participant
    /// could plausibly send this round.
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<P>;

    /// Threshold-probing payloads: forged echoes, equivocation pairs, values at
    /// the protocol's trim/count limits. When this returns more than one
    /// payload, [`VocabAdversary`] *partitions* the correct nodes across them
    /// (payload `j` to recipients with `i % len == j`) — the equivocation
    /// dispatch.
    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<P>;

    /// Type-correct nonsense: ghost identifiers, out-of-phase messages,
    /// saturating values. Should use the scene's round for freshness where the
    /// protocol accumulates state (e.g. one new ghost candidate per round).
    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<P>;
}

impl<P, V: PayloadVocab<P> + ?Sized> PayloadVocab<P> for Box<V> {
    fn valid(&self, scene: &VocabScene<'_>) -> Vec<P> {
        (**self).valid(scene)
    }
    fn boundary(&self, scene: &VocabScene<'_>) -> Vec<P> {
        (**self).boundary(scene)
    }
    fn garbage(&self, scene: &VocabScene<'_>) -> Vec<P> {
        (**self).garbage(scene)
    }
}

/// The adversary behind `AttackBehavior::Noise` and `AttackBehavior::Semantic`:
/// fabricates payloads from a [`PayloadVocab`] every round.
///
/// Dispatch rules (deterministic, so plans replay exactly):
///
/// * [`SemanticStrategy::Valid`] — every valid payload, from every driven
///   identity, to every correct node: the Byzantine nodes imitate correct
///   participants at full volume.
/// * [`SemanticStrategy::Boundary`] — the boundary payloads *partition* the
///   correct nodes (payload `j` to recipients with `i % len == j`), from every
///   driven identity: concentrated, equivocation-shaped threshold pressure.
/// * [`SemanticStrategy::Garbage`] — every garbage payload to everyone: a
///   sustained flood of fresh nonsense.
/// * `Noise` ([`VocabAdversary::noise`]) — all three classes at once, each
///   payload scattered to the recipients with `(i + j + round) % 2 == 0`: the
///   chaos-monkey default for fuzz grids.
///
/// Fabrications are hoisted out of the fan-out loop: each distinct payload is
/// allocated into a [`Shared`] handle once per round and fanned out by handle.
pub struct VocabAdversary<P> {
    vocab: Box<dyn PayloadVocab<P>>,
    mode: VocabMode,
    seed: u64,
}

/// Internal dispatch mode (the `Noise` behaviour has no `SemanticStrategy`).
enum VocabMode {
    Semantic(SemanticStrategy),
    Noise,
}

impl<P: Hash> VocabAdversary<P> {
    /// A single-class semantic adversary. `seed` is the scenario seed, exposed
    /// to the vocabulary through the scene.
    pub fn semantic(
        vocab: Box<dyn PayloadVocab<P>>,
        strategy: SemanticStrategy,
        seed: u64,
    ) -> Self {
        VocabAdversary {
            vocab,
            mode: VocabMode::Semantic(strategy),
            seed,
        }
    }

    /// The all-classes, scattered-dispatch noise adversary.
    pub fn noise(vocab: Box<dyn PayloadVocab<P>>, seed: u64) -> Self {
        VocabAdversary {
            vocab,
            mode: VocabMode::Noise,
            seed,
        }
    }

    fn fabricate(
        out: &mut Vec<Directed<P>>,
        view: &AdversaryView<'_, P>,
        payloads: Vec<P>,
        mut deliver: impl FnMut(usize, usize) -> bool,
    ) {
        // Hoisted allocation: one `Shared` per distinct fabricated payload per
        // round; the fan-out below only clones handles.
        let handles: Vec<Shared<P>> = payloads.into_iter().map(Shared::new).collect();
        for &from in view.byzantine_ids {
            for (i, &to) in view.correct_ids.iter().enumerate() {
                for (j, handle) in handles.iter().enumerate() {
                    if deliver(i, j) {
                        out.push(Directed::new(from, to, handle.clone()));
                    }
                }
            }
        }
    }
}

impl<P: Hash> Adversary<P> for VocabAdversary<P> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let scene = VocabScene {
            round: view.round,
            seed: self.seed,
            correct_ids: view.correct_ids,
            byzantine_ids: view.byzantine_ids,
        };
        let mut out = Vec::new();
        match &self.mode {
            VocabMode::Semantic(SemanticStrategy::Valid) => {
                let payloads = self.vocab.valid(&scene);
                Self::fabricate(&mut out, view, payloads, |_, _| true);
            }
            VocabMode::Semantic(SemanticStrategy::Boundary) => {
                let payloads = self.vocab.boundary(&scene);
                let len = payloads.len().max(1);
                Self::fabricate(&mut out, view, payloads, |i, j| i % len == j);
            }
            VocabMode::Semantic(SemanticStrategy::Garbage) => {
                let payloads = self.vocab.garbage(&scene);
                Self::fabricate(&mut out, view, payloads, |_, _| true);
            }
            VocabMode::Noise => {
                let round = view.round as usize;
                let valid = self.vocab.valid(&scene);
                Self::fabricate(&mut out, view, valid, |i, j| {
                    (i + j + round).is_multiple_of(2)
                });
                let boundary = self.vocab.boundary(&scene);
                let len = boundary.len().max(1);
                Self::fabricate(&mut out, view, boundary, |i, j| i % len == j);
                let garbage = self.vocab.garbage(&scene);
                Self::fabricate(&mut out, view, garbage, |i, j| {
                    (i + j + round).is_multiple_of(2)
                });
            }
        }
        out
    }
}

/// The adversary behind `AttackBehavior::Adaptive`: a *stateful* strategy that
/// accumulates, round over round, how many messages every correct node has
/// received from correct nodes, and re-aims its vocabulary payloads at
/// whichever node the chosen [`AdaptiveStrategy`] singles out.
///
/// Everything is deterministic: the received counts live in a [`BTreeMap`], all
/// arg-min/arg-max ties break toward the smallest identifier, and payload
/// enumeration goes through the same pure-in-the-scene [`PayloadVocab`] calls
/// the scripted vocabulary adversaries use — so runs replay byte-for-byte under
/// the scenario seed and adaptive plan steps shrink like scripted ones.
///
/// Fabrications are hoisted exactly like [`VocabAdversary`]: one [`Shared`]
/// allocation per distinct payload per round, fan-out by handle.
pub struct AdaptiveAdversary<P> {
    vocab: Box<dyn PayloadVocab<P>>,
    strategy: AdaptiveStrategy,
    seed: u64,
    /// Cumulative messages received by each correct node since the step began.
    received: BTreeMap<NodeId, u64>,
}

impl<P: Hash> AdaptiveAdversary<P> {
    /// Creates an adaptive adversary over the factory's vocabulary. `seed` is
    /// the scenario seed, exposed to the vocabulary through the scene.
    pub fn new(vocab: Box<dyn PayloadVocab<P>>, strategy: AdaptiveStrategy, seed: u64) -> Self {
        AdaptiveAdversary {
            vocab,
            strategy,
            seed,
            received: BTreeMap::new(),
        }
    }

    /// Folds this round's observed correct traffic into the cumulative counts.
    fn observe(&mut self, view: &AdversaryView<'_, P>) {
        for &id in view.correct_ids {
            self.received.entry(id).or_insert(0);
        }
        for sent in view.traffic() {
            if view.correct_ids.contains(&sent.to) {
                *self.received.entry(sent.to).or_insert(0) += 1;
            }
        }
    }

    /// The live node with the smallest received count (ties → smallest id).
    fn weakest(&self, correct_ids: &[NodeId]) -> Option<NodeId> {
        correct_ids
            .iter()
            .copied()
            .min_by_key(|id| (self.received.get(id).copied().unwrap_or(0), *id))
    }

    /// The live node with the largest received count (ties → smallest id).
    fn strongest(&self, correct_ids: &[NodeId]) -> Option<NodeId> {
        correct_ids.iter().copied().max_by_key(|id| {
            (
                self.received.get(id).copied().unwrap_or(0),
                std::cmp::Reverse(*id),
            )
        })
    }

    /// Median received count over the live correct nodes.
    fn median_received(&self, correct_ids: &[NodeId]) -> u64 {
        let mut counts: Vec<u64> = correct_ids
            .iter()
            .map(|id| self.received.get(id).copied().unwrap_or(0))
            .collect();
        counts.sort_unstable();
        counts.get(counts.len() / 2).copied().unwrap_or(0)
    }
}

impl<P: Hash> Adversary<P> for AdaptiveAdversary<P> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        self.observe(view);
        let scene = VocabScene {
            round: view.round,
            seed: self.seed,
            correct_ids: view.correct_ids,
            byzantine_ids: view.byzantine_ids,
        };
        let mut out = Vec::new();
        match self.strategy {
            AdaptiveStrategy::StarveWeakest => {
                let Some(victim) = self.weakest(view.correct_ids) else {
                    return out;
                };
                // The full *plausible* vocabulary — every valid and boundary
                // payload, but no garbage — concentrated on the single node
                // with the least information. No scripted behaviour produces
                // this shape: the boundary pair lands on one recipient from
                // one sender without the garbage flood that tags Noise.
                let mut payloads = self.vocab.valid(&scene);
                payloads.extend(self.vocab.boundary(&scene));
                let victim_index = view.correct_ids.iter().position(|&id| id == victim);
                VocabAdversary::fabricate(&mut out, view, payloads, |i, _| Some(i) == victim_index);
            }
            AdaptiveStrategy::EquivocateMinority => {
                let payloads = self.vocab.boundary(&scene);
                if payloads.len() < 2 {
                    // No equivocation pair to aim: fall back to imitation.
                    let valid = self.vocab.valid(&scene);
                    VocabAdversary::fabricate(&mut out, view, valid, |_, _| true);
                    return out;
                }
                let median = self.median_received(view.correct_ids);
                let minority: Vec<bool> = view
                    .correct_ids
                    .iter()
                    .map(|id| self.received.get(id).copied().unwrap_or(0) < median)
                    .collect();
                // Minority partition hears the last boundary payload (the
                // "high" story), everyone else the first ("low") — each
                // recipient hears exactly one side, aimed by observed traffic.
                let last = payloads.len() - 1;
                VocabAdversary::fabricate(&mut out, view, payloads, |i, j| {
                    if minority.get(i).copied().unwrap_or(false) {
                        j == last
                    } else {
                        j == 0
                    }
                });
            }
            AdaptiveStrategy::WithholdNearQuorum => {
                let leader = self.strongest(view.correct_ids);
                let leader_index =
                    leader.and_then(|id| view.correct_ids.iter().position(|&node| node == id));
                let valid = self.vocab.valid(&scene);
                VocabAdversary::fabricate(&mut out, view, valid, |i, _| Some(i) != leader_index);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared;
    use crate::traffic::RoundTraffic;

    static CORRECT: [NodeId; 4] = [
        NodeId::new(2),
        NodeId::new(4),
        NodeId::new(5),
        NodeId::new(7),
    ];
    static BYZ: [NodeId; 2] = [NodeId::new(90), NodeId::new(91)];

    /// A toy vocabulary over `u64` payloads: valid = {1}, boundary = {10, 11},
    /// garbage = one fresh value per round.
    struct ToyVocab;

    impl PayloadVocab<u64> for ToyVocab {
        fn valid(&self, _scene: &VocabScene<'_>) -> Vec<u64> {
            vec![1]
        }
        fn boundary(&self, _scene: &VocabScene<'_>) -> Vec<u64> {
            vec![10, 11]
        }
        fn garbage(&self, scene: &VocabScene<'_>) -> Vec<u64> {
            vec![1000 + scene.round]
        }
    }

    fn view(round: u64, traffic: &RoundTraffic<u64>) -> AdversaryView<'_, u64> {
        AdversaryView {
            round,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    #[test]
    fn valid_strategy_floods_every_recipient() {
        let t = RoundTraffic::new();
        let mut adv = VocabAdversary::semantic(Box::new(ToyVocab), SemanticStrategy::Valid, 0);
        let out = adv.step(&view(1, &t));
        assert_eq!(out.len(), 2 * 4, "2 actors × 4 recipients × 1 payload");
        assert!(out.iter().all(|m| m.payload == 1));
    }

    #[test]
    fn boundary_strategy_partitions_recipients_across_payloads() {
        let t = RoundTraffic::new();
        let mut adv = VocabAdversary::semantic(Box::new(ToyVocab), SemanticStrategy::Boundary, 0);
        let out = adv.step(&view(3, &t));
        assert_eq!(out.len(), 2 * 4, "each recipient gets exactly one payload");
        for m in &out {
            let i = CORRECT.iter().position(|&c| c == m.to).unwrap();
            let expected = if i % 2 == 0 { 10 } else { 11 };
            assert_eq!(*m.payload(), expected, "equivocation partition by index");
        }
    }

    #[test]
    fn garbage_is_fresh_per_round() {
        let t = RoundTraffic::new();
        let mut adv = VocabAdversary::semantic(Box::new(ToyVocab), SemanticStrategy::Garbage, 0);
        let r1 = adv.step(&view(1, &t));
        let r2 = adv.step(&view(2, &t));
        assert!(r1.iter().all(|m| m.payload == 1001));
        assert!(r2.iter().all(|m| m.payload == 1002));
    }

    #[test]
    fn fabrications_are_hoisted_to_one_allocation_per_payload() {
        // Every dispatch mode pays O(|payloads of the round|) allocations, never
        // O(|payloads| · recipients): the fan-out below each count is strictly
        // larger than the allocation delta.
        let t = RoundTraffic::new();
        for (mode, expected) in [
            // ToyVocab at round 5: valid = {1}.
            (SemanticStrategy::Valid, 1),
            // boundary = {10, 11}.
            (SemanticStrategy::Boundary, 2),
            // garbage = {1005}.
            (SemanticStrategy::Garbage, 1),
        ] {
            let mut adv = VocabAdversary::semantic(Box::new(ToyVocab), mode, 0);
            let before = shared::allocations();
            let out = adv.step(&view(5, &t));
            let allocated = shared::allocations() - before;
            assert_eq!(
                allocated, expected,
                "{mode:?}: one allocation per distinct payload"
            );
            assert!(
                out.len() > expected as usize,
                "{mode:?}: fan-out forwards handles, not copies"
            );
        }
        // Noise enumerates all three classes once: 1 + 2 + 1 allocations.
        let mut adv = VocabAdversary::noise(Box::new(ToyVocab), 0);
        let before = shared::allocations();
        let out = adv.step(&view(5, &t));
        assert_eq!(shared::allocations() - before, 4, "noise = Σ class sizes");
        assert!(out.len() > 4, "noise fan-out forwards handles too");
    }

    #[test]
    fn noise_mixes_all_classes_with_scattered_dispatch() {
        let t = RoundTraffic::new();
        let mut adv = VocabAdversary::noise(Box::new(ToyVocab), 0);
        let out = adv.step(&view(2, &t));
        // Boundary payloads always land (partition dispatch); valid/garbage are
        // scattered by parity. Everything stays inside the declared vocabulary.
        assert!(out.iter().any(|m| m.payload == 10 || m.payload == 11));
        assert!(out.iter().any(|m| m.payload == 1));
        assert!(out.iter().any(|m| m.payload == 1002));
        assert!(out
            .iter()
            .all(|m| [1u64, 10, 11, 1002].contains(m.payload())));
    }

    #[test]
    fn ghost_ids_sit_above_real_layouts_and_vary_per_round() {
        let scene = VocabScene {
            round: 7,
            seed: 3,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
        };
        let later = VocabScene { round: 8, ..scene };
        assert!(scene.ghost_id(0).raw() > u32::MAX as u64);
        assert_ne!(scene.ghost_id(0), scene.ghost_id(1));
        assert!(
            later.ghost_id(0) > scene.ghost_id(63),
            "rounds never collide"
        );
        assert_eq!(scene.derived_value(1), scene.derived_value(1));
        assert_ne!(scene.derived_value(1), later.derived_value(1));
    }

    #[test]
    fn starve_weakest_concentrates_the_plausible_vocab_on_one_victim() {
        let t = RoundTraffic::new();
        let mut adv =
            AdaptiveAdversary::new(Box::new(ToyVocab), AdaptiveStrategy::StarveWeakest, 0);
        let out = adv.step(&view(1, &t));
        // No traffic observed yet: every count is 0, the tie breaks to the
        // smallest id. valid {1} + boundary {10, 11} from both actors.
        assert_eq!(out.len(), 2 * 3);
        assert!(out.iter().all(|m| m.to == CORRECT[0]));
        let mut values: Vec<u64> = out.iter().map(|m| *m.payload()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values, vec![1, 10, 11], "valid + boundary, no garbage");
    }

    #[test]
    fn starve_weakest_retargets_as_observed_traffic_accumulates() {
        let mut t = RoundTraffic::new();
        t.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        // Every correct node except CORRECT[2] hears something in round 1.
        for &to in &[CORRECT[0], CORRECT[1], CORRECT[3]] {
            t.push_unicast(Directed::new(CORRECT[0], to, 5u64));
        }
        let mut adv =
            AdaptiveAdversary::new(Box::new(ToyVocab), AdaptiveStrategy::StarveWeakest, 0);
        let out = adv.step(&view(1, &t));
        assert!(
            out.iter().all(|m| m.to == CORRECT[2]),
            "the victim is the node with the fewest received messages"
        );
    }

    #[test]
    fn withhold_near_quorum_starves_the_busiest_node() {
        let mut t = RoundTraffic::new();
        t.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        t.push_unicast(Directed::new(CORRECT[0], CORRECT[1], 5u64));
        let mut adv =
            AdaptiveAdversary::new(Box::new(ToyVocab), AdaptiveStrategy::WithholdNearQuorum, 0);
        let out = adv.step(&view(1, &t));
        assert!(
            out.iter().all(|m| m.to != CORRECT[1]),
            "the leader hears nothing"
        );
        assert!(out.iter().all(|m| m.payload == 1), "imitation uses valid");
        assert_eq!(out.len(), 2 * 3, "2 actors × the 3 non-leader nodes");
    }

    #[test]
    fn equivocate_minority_splits_the_boundary_pair_by_received_count() {
        let mut t = RoundTraffic::new();
        t.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        // CORRECT[0] and CORRECT[1] are behind; the rest hear one message.
        for &to in &[CORRECT[2], CORRECT[3]] {
            t.push_unicast(Directed::new(CORRECT[0], to, 5u64));
        }
        let mut adv =
            AdaptiveAdversary::new(Box::new(ToyVocab), AdaptiveStrategy::EquivocateMinority, 0);
        let out = adv.step(&view(1, &t));
        for m in &out {
            let minority = m.to == CORRECT[0] || m.to == CORRECT[1];
            let expected = if minority { 11 } else { 10 };
            assert_eq!(
                *m.payload(),
                expected,
                "minority hears high, majority hears low"
            );
        }
    }

    #[test]
    fn adaptive_state_accumulates_across_rounds_deterministically() {
        let make =
            || AdaptiveAdversary::new(Box::new(ToyVocab), AdaptiveStrategy::StarveWeakest, 7);
        let mut t1 = RoundTraffic::new();
        t1.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        t1.push_unicast(Directed::new(CORRECT[1], CORRECT[0], 9u64));
        let replay = |adv: &mut AdaptiveAdversary<u64>, t1: &RoundTraffic<u64>| {
            let empty = RoundTraffic::new();
            let r1: Vec<(NodeId, u64)> = adv
                .step(&view(1, t1))
                .into_iter()
                .map(|m| (m.to, *m.payload()))
                .collect();
            let r2: Vec<(NodeId, u64)> = adv
                .step(&view(2, &empty))
                .into_iter()
                .map(|m| (m.to, *m.payload()))
                .collect();
            (r1, r2)
        };
        let a = replay(&mut make(), &t1);
        let b = replay(&mut make(), &t1);
        assert_eq!(a, b, "same observations, same targeting");
        // After round 1, CORRECT[0] has heard one message; the round-2 victim
        // moves to the next-smallest untouched id.
        assert!(a.1.iter().all(|&(to, _)| to == CORRECT[1]));
    }

    #[test]
    fn restricted_actor_views_restrict_the_fanout() {
        let t = RoundTraffic::new();
        let mut adv = VocabAdversary::semantic(Box::new(ToyVocab), SemanticStrategy::Valid, 0);
        let mut v = view(1, &t);
        v.byzantine_ids = &BYZ[..1];
        let out = adv.step(&v);
        assert_eq!(out.len(), 4, "one actor × 4 recipients");
        assert!(out.iter().all(|m| m.from == BYZ[0]));
    }
}
