//! Multi-instance pipelined agreement streams.
//!
//! A single scenario runs *one* agreement; a serving workload runs a **stream**
//! of them, overlapping in time so the next instance starts before the previous
//! one decides. This module provides the generic machinery for that shape:
//!
//! * [`MuxNode`] — a node that multiplexes many instances of an inner
//!   [`Protocol`] over one wire. Every payload is tagged with the instance it
//!   belongs to (`(instance, inner)`), so a single engine round carries traffic
//!   for every in-flight instance and the tag travels through
//!   [`Envelope`](crate::message::Envelope) exactly like any other payload.
//! * [`StreamDriver`] — a [`ProtocolFactory`] that builds one inner factory per
//!   instance, staggers their start rounds (the pipeline), and records a
//!   [`StreamSection`] into the [`RunReport`] with per-instance decisions,
//!   decide rounds and batch sizes for the checker's cross-instance oracle.
//!
//! The batching rule lives one layer up (see `docs/STREAMING.md`): client
//! requests are packed into one batch per (instance, proposer), so each
//! broadcast is **one** [`Shared`](crate::shared::Shared) arena payload no
//! matter how many requests it carries — per-delivery cost is paid once per
//! batch, not once per request.
//!
//! Streams model the fault-free serving path: the driver maps every adversary
//! kind to the silent strategy and stream scenarios run with `byzantine(0)`.
//! Under faults, per-instance safety is already covered by the single-shot
//! scenarios; the stream exists to measure pipelined throughput.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::adversary::SilentAdversary;
use crate::id::NodeId;
use crate::message::{Envelope, Outgoing};
use crate::node::{Protocol, RoundContext};
use crate::sim::{AdversaryKind, BuildContext, NamedAdversary, ProtocolFactory, RunReport};

/// One inner-protocol instance inside a [`MuxNode`].
#[derive(Clone, Debug)]
pub struct InstanceSlot<N> {
    /// The tag carried by every payload of this instance.
    pub tag: u64,
    /// Global round in which the instance starts (its local round 1).
    pub start_round: u64,
    /// The inner protocol node.
    pub node: N,
    /// Global round in which this node's instance terminated, if it has.
    pub decided_round: Option<u64>,
}

/// A node multiplexing many instances of an inner [`Protocol`] over one wire.
///
/// Payloads are `(instance_tag, inner_payload)`; each round the node demuxes
/// its inbox by tag, steps every started-and-undecided instance with a *local*
/// round number (`global - start_round`), and retags everything the instances
/// send. An instance whose start round has not arrived yet neither sends nor
/// receives. The node terminates when every instance has.
#[derive(Clone, Debug)]
pub struct MuxNode<N: Protocol> {
    id: NodeId,
    slots: Vec<InstanceSlot<N>>,
}

impl<N: Protocol> MuxNode<N> {
    /// Builds a mux node over the given instance slots (all for the same
    /// [`NodeId`]). Tags must be unique; start rounds must be ≥ 1.
    pub fn new(id: NodeId, slots: Vec<InstanceSlot<N>>) -> Self {
        MuxNode { id, slots }
    }

    /// The instance slots, in tag order.
    pub fn slots(&self) -> &[InstanceSlot<N>] {
        &self.slots
    }
}

impl<N: Protocol> Protocol for MuxNode<N> {
    type Payload = (u64, N::Payload);
    /// The number of instances that have terminated (present once all have).
    type Output = usize;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<Self::Payload>],
    ) -> Vec<Outgoing<Self::Payload>> {
        let mut outgoing = Vec::new();
        for slot in &mut self.slots {
            if ctx.round < slot.start_round || slot.node.terminated() {
                continue;
            }
            // Demuxing re-wraps each matching payload in a fresh `Shared`; the
            // per-delivery clone is bounded by the inner payload size, which the
            // batching rule keeps at one arena payload per (instance, proposer).
            let inner_inbox: Vec<Envelope<N::Payload>> = inbox
                .iter()
                .filter(|envelope| envelope.payload.get().0 == slot.tag)
                .map(|envelope| Envelope::new(envelope.from, envelope.payload.get().1.clone()))
                .collect();
            let local = RoundContext::new(ctx.round - slot.start_round + 1);
            for sent in slot.node.step(&local, &inner_inbox) {
                outgoing.push(Outgoing {
                    dest: sent.dest,
                    payload: (slot.tag, sent.payload),
                });
            }
            if slot.node.terminated() && slot.decided_round.is_none() {
                slot.decided_round = Some(ctx.round);
            }
        }
        outgoing
    }

    fn output(&self) -> Option<Self::Output> {
        self.terminated()
            .then(|| self.slots.iter().filter(|s| s.node.terminated()).count())
    }

    fn terminated(&self) -> bool {
        self.slots.iter().all(|slot| slot.node.terminated())
    }
}

/// How a [`StreamDriver`] renders an inner output into the per-instance
/// agreement digest recorded in the [`StreamSection`]. Two digests are equal
/// iff the instance's decision is (for the oracle's purposes) the same.
pub type OutputDigest<N> = Arc<dyn Fn(&<N as Protocol>::Output) -> String + Send + Sync>;

/// One instance scheduled on a [`StreamDriver`].
pub struct StreamInstance<F> {
    /// Global round in which the instance starts.
    pub start_round: u64,
    /// Number of client requests batched into this instance (recorded only).
    pub batch_size: usize,
    /// The factory building this instance's nodes.
    pub factory: F,
}

/// A [`ProtocolFactory`] running a pipelined stream of inner-protocol
/// instances behind [`MuxNode`]s.
///
/// Each scheduled [`StreamInstance`] gets its own inner factory; `build_nodes`
/// builds every instance's nodes and transposes them into one [`MuxNode`] per
/// participant. Instances start at their scheduled rounds and overlap freely;
/// the run stops when all of them have terminated.
///
/// Restrictions (checked where possible, documented otherwise):
/// * inner factories must not rely on `before_round` input injection — the
///   slots are scattered across mux nodes, so there is no per-instance
///   `&mut [Node]` slice to hand them (consensus-style factories, which take
///   their inputs at construction, stream fine; total-order streams batch
///   through the plan instead and need no mux);
/// * streams are fault-free: every adversary kind maps to the silent strategy.
pub struct StreamDriver<F: ProtocolFactory> {
    name: String,
    instances: Vec<StreamInstance<F>>,
    digest: OutputDigest<F::Node>,
}

impl<F: ProtocolFactory> StreamDriver<F> {
    /// Creates an empty driver. `inner_name` is the inner protocol's name; the
    /// driver reports as `stream(inner_name)`.
    pub fn new(inner_name: &str) -> Self {
        StreamDriver {
            name: format!("stream({inner_name})"),
            instances: Vec::new(),
            digest: Arc::new(|output| format!("{output:?}")),
        }
    }

    /// Replaces the agreement digest (default: the output's `Debug` rendering).
    /// Use this when the inner output carries per-node fields (e.g. a decide
    /// round) that must not count as disagreement.
    pub fn digest(mut self, digest: OutputDigest<F::Node>) -> Self {
        self.digest = digest;
        self
    }

    /// Schedules an instance. Tags are assigned in push order, starting at 0.
    pub fn push(mut self, start_round: u64, batch_size: usize, factory: F) -> Self {
        assert!(start_round >= 1, "instance start rounds are 1-based");
        self.instances.push(StreamInstance {
            start_round,
            batch_size,
            factory,
        });
        self
    }

    /// Number of scheduled instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether no instances are scheduled.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl<F: ProtocolFactory> ProtocolFactory for StreamDriver<F> {
    type Node = MuxNode<F::Node>;

    fn protocol_name(&self) -> String {
        self.name.clone()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<Self::Node> {
        assert!(
            !self.instances.is_empty(),
            "a stream needs at least one scheduled instance"
        );
        let mut muxes: Vec<Vec<InstanceSlot<F::Node>>> =
            ctx.correct_ids.iter().map(|_| Vec::new()).collect();
        for (tag, instance) in self.instances.iter_mut().enumerate() {
            let nodes = instance.factory.build_nodes(ctx);
            assert_eq!(
                nodes.len(),
                ctx.correct_ids.len(),
                "inner factory built a different node count than the scenario"
            );
            for (participant, node) in nodes.into_iter().enumerate() {
                muxes[participant].push(InstanceSlot {
                    tag: tag as u64,
                    start_round: instance.start_round,
                    node,
                    decided_round: None,
                });
            }
        }
        ctx.correct_ids
            .iter()
            .zip(muxes)
            .map(|(&id, slots)| MuxNode::new(id, slots))
            .collect()
    }

    fn adversary(
        &self,
        _kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<<Self::Node as Protocol>::Payload> {
        // Streams measure the fault-free serving path; see the module docs.
        NamedAdversary::new("silent", SilentAdversary)
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[Self::Node], report: &mut RunReport) {
        let mut instances = Vec::with_capacity(self.instances.len());
        for (tag, instance) in self.instances.iter().enumerate() {
            let mut outputs = Vec::with_capacity(nodes.len());
            let mut decide_rounds = Vec::with_capacity(nodes.len());
            for node in nodes {
                let slot = &node.slots()[tag];
                debug_assert_eq!(slot.tag, tag as u64);
                outputs.push((node.id(), slot.node.output().map(|o| (self.digest)(&o))));
                decide_rounds.push((node.id(), slot.decided_round));
            }
            let digests: Vec<&String> = outputs.iter().filter_map(|(_, d)| d.as_ref()).collect();
            let agreement = digests.windows(2).all(|pair| pair[0] == pair[1]);
            let decided = outputs.iter().all(|(_, digest)| digest.is_some());
            instances.push(StreamInstanceReport {
                instance: tag as u64,
                start_round: instance.start_round,
                batch_size: instance.batch_size,
                outputs,
                decide_rounds,
                agreement,
                decided,
            });
        }
        let agreement = instances.iter().all(|i| i.agreement);
        let completed = instances.iter().filter(|i| i.decided).count();
        report.stream = Some(StreamSection {
            instances,
            agreement,
            completed,
        });
    }
}

/// Per-instance outcome recorded by a [`StreamDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamInstanceReport {
    /// The instance tag (its position in the stream's total order).
    pub instance: u64,
    /// Global round in which the instance started.
    pub start_round: u64,
    /// Number of client requests batched into the instance.
    pub batch_size: usize,
    /// Per-node agreement digest of the instance output (`None` = undecided).
    pub outputs: Vec<(NodeId, Option<String>)>,
    /// Global round in which each node's instance terminated.
    pub decide_rounds: Vec<(NodeId, Option<u64>)>,
    /// Whether every node that decided produced the same digest.
    pub agreement: bool,
    /// Whether every node decided this instance.
    pub decided: bool,
}

/// Stream-level results recorded into a [`RunReport`] by a [`StreamDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamSection {
    /// One report per scheduled instance, in tag order.
    pub instances: Vec<StreamInstanceReport>,
    /// Whether every instance satisfied per-instance agreement.
    pub agreement: bool,
    /// How many instances every node decided.
    pub completed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Destination;

    /// A toy protocol: broadcasts its input in round 1, outputs the smallest
    /// value heard in round 2, then terminates.
    #[derive(Clone, Debug)]
    struct MinOnce {
        id: NodeId,
        input: u64,
        output: Option<u64>,
    }

    impl Protocol for MinOnce {
        type Payload = u64;
        type Output = u64;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            match ctx.round {
                1 => vec![Outgoing::broadcast(self.input)],
                _ => {
                    if self.output.is_none() {
                        let heard = inbox.iter().map(|e| *e.payload.get()).min();
                        self.output = Some(heard.map_or(self.input, |m| m.min(self.input)));
                    }
                    Vec::new()
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.output
        }
    }

    fn slot(tag: u64, start: u64, id: NodeId, input: u64) -> InstanceSlot<MinOnce> {
        InstanceSlot {
            tag,
            start_round: start,
            node: MinOnce {
                id,
                input,
                output: None,
            },
            decided_round: None,
        }
    }

    #[test]
    fn the_mux_demuxes_by_tag_and_staggers_starts() {
        let a = NodeId::new(1);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 10), slot(1, 3, a, 20)]);

        // Round 1: only instance 0 is live; it broadcasts tagged payloads.
        let out = node.step(&RoundContext::new(1), &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, (0, 10));
        assert!(matches!(out[0].dest, Destination::Broadcast));

        // Round 2: instance 0 hears a tagged 7 (and ignores instance 1 traffic),
        // decides min(10, 7) = 7; instance 1 still has not started.
        let b = NodeId::new(2);
        let inbox = vec![
            Envelope::new(b, (0u64, 7u64)),
            Envelope::new(b, (1u64, 999u64)),
        ];
        let out = node.step(&RoundContext::new(2), &inbox);
        assert!(out.is_empty());
        assert_eq!(node.slots()[0].node.output, Some(7));
        assert_eq!(node.slots()[0].decided_round, Some(2));
        assert!(!node.terminated());

        // Round 3: instance 1 starts at its local round 1 and broadcasts.
        let out = node.step(&RoundContext::new(3), &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, (1, 20));

        // Round 4: instance 1 decides on its own input; the mux terminates.
        let out = node.step(&RoundContext::new(4), &[]);
        assert!(out.is_empty());
        assert_eq!(node.slots()[1].node.output, Some(20));
        assert!(node.terminated());
        assert_eq!(node.output(), Some(2));
    }

    #[test]
    fn terminated_instances_stop_stepping() {
        let a = NodeId::new(1);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 5)]);
        node.step(&RoundContext::new(1), &[]);
        node.step(&RoundContext::new(2), &[]);
        assert!(node.terminated());
        // Further rounds are no-ops and do not disturb the decide round.
        let out = node.step(&RoundContext::new(3), &[]);
        assert!(out.is_empty());
        assert_eq!(node.slots()[0].decided_round, Some(2));
    }
}
