//! Multi-instance pipelined agreement streams.
//!
//! A single scenario runs *one* agreement; a serving workload runs a **stream**
//! of them, overlapping in time so the next instance starts before the previous
//! one decides. This module provides the generic machinery for that shape:
//!
//! * [`MuxNode`] — a node that multiplexes many instances of an inner
//!   [`Protocol`] over one wire. Every payload is tagged with the instance it
//!   belongs to (`(instance, inner)`), so a single engine round carries traffic
//!   for every in-flight instance and the tag travels through
//!   [`Envelope`](crate::message::Envelope) exactly like any other payload.
//! * [`StreamDriver`] — a [`ProtocolFactory`] that builds one inner factory per
//!   instance, staggers their start rounds (the pipeline), and records a
//!   [`StreamSection`] into the [`RunReport`] with per-instance decisions,
//!   decide rounds and batch sizes for the checker's cross-instance oracle.
//!
//! Per-round cost is proportional to the **active window**, not the horizon:
//! each step builds one tag index over the inbox (a single pass), envelopes are
//! handed to inner instances as borrowing projections
//! ([`Shared::project_second`](crate::shared::Shared::project_second) — no
//! payload clone), and decided slots are **retired** out of the scan path into
//! compact [`CompletedInstance`] records, so [`MuxNode::output`] and
//! [`MuxNode::terminated`] are O(1) counter reads and a long-finished stream
//! prefix costs nothing per round. Traffic addressed to a retired tag is
//! dropped during indexing at zero clones (counted in [`MuxWork`]); the engine
//! can additionally prune such traffic before delivery (see
//! `SyncEngine::enable_traffic_gc`). Retirement is observationally silent:
//! reports are byte-identical with it on or off (see
//! `tests/stream_equivalence.rs`), and `docs/STREAMING.md` documents the cost
//! model.
//!
//! The batching rule lives one layer up (see `docs/STREAMING.md`): client
//! requests are packed into one batch per (instance, proposer), so each
//! broadcast is **one** [`Shared`](crate::shared::Shared) arena payload no
//! matter how many requests it carries — per-delivery cost is paid once per
//! batch, not once per request.
//!
//! Streams model the fault-free serving path: the driver maps every adversary
//! kind to the silent strategy and stream scenarios run with `byzantine(0)`.
//! Under faults, per-instance safety is already covered by the single-shot
//! scenarios; the stream exists to measure pipelined throughput.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::adversary::SilentAdversary;
use crate::engine::FastState;
use crate::id::NodeId;
use crate::message::{Envelope, Outgoing};
use crate::node::{Protocol, RoundContext};
use crate::sim::{AdversaryKind, BuildContext, NamedAdversary, ProtocolFactory, RunReport};

/// One inner-protocol instance inside a [`MuxNode`].
#[derive(Clone, Debug)]
pub struct InstanceSlot<N> {
    /// The tag carried by every payload of this instance.
    pub tag: u64,
    /// Global round in which the instance starts (its local round 1).
    pub start_round: u64,
    /// The inner protocol node.
    pub node: N,
    /// Global round in which this node's instance terminated, if it has.
    pub decided_round: Option<u64>,
}

/// The compact record a decided slot retires into: everything the stream
/// report needs, without the inner node's state or a place in the scan path.
#[derive(Clone, Debug)]
pub struct CompletedInstance<N: Protocol> {
    /// The tag the instance carried on the wire.
    pub tag: u64,
    /// Global round in which the instance started.
    pub start_round: u64,
    /// Global round in which this node's instance terminated (`None` only for
    /// slots already terminated when the mux was built, which never step).
    pub decided_round: Option<u64>,
    /// The instance's final output.
    pub output: Option<N::Output>,
}

/// A live or retired instance, as seen through [`MuxNode::instance`].
pub enum InstanceState<'a, N: Protocol> {
    /// The instance still occupies a slot in the scan path.
    Live(&'a InstanceSlot<N>),
    /// The instance has decided and been retired.
    Completed(&'a CompletedInstance<N>),
}

/// Per-node demux work counters, maintained by [`MuxNode::step`]. Measurement
/// only — these never enter a [`RunReport`], so they cannot perturb the
/// byte-identity pins; the window-sweep benchmark reads them to prove per-round
/// cost tracks the active window rather than the horizon.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxWork {
    /// Envelopes examined while building the per-step tag index (exactly the
    /// inbox sizes summed over steps — every envelope is looked at once).
    pub envelopes_indexed: u64,
    /// Inner-instance steps executed (live slots × rounds they were live).
    pub slot_steps: u64,
    /// Envelopes dropped because their tag matched no live slot (instance
    /// already retired or never scheduled) — at zero payload clones.
    pub dropped_retired: u64,
}

/// A node multiplexing many instances of an inner [`Protocol`] over one wire.
///
/// Payloads are `(instance_tag, inner_payload)`; each round the node builds one
/// tag index over its inbox, steps every started-and-undecided instance with a
/// *local* round number (`global - start_round`) and a projected (not cloned)
/// inbox, and retags everything the instances send. An instance whose start
/// round has not arrived yet neither sends nor receives. Decided instances are
/// retired into [`CompletedInstance`] records (unless
/// [`MuxNode::set_retirement`] turned retirement off), and the node terminates
/// when the decided count reaches the instance count.
///
/// Tags are assumed dense from 0 (the [`StreamDriver`] assigns them in push
/// order); the retired frontier reported to the engine's traffic GC is the
/// length of the decided prefix.
#[derive(Clone, Debug)]
pub struct MuxNode<N: Protocol> {
    id: NodeId,
    slots: Vec<InstanceSlot<N>>,
    completed: Vec<CompletedInstance<N>>,
    completed_index: HashMap<u64, usize, FastState>,
    total: usize,
    decided: usize,
    retire: bool,
    work: MuxWork,
    frontier: u64,
    pending_decided: BTreeSet<u64>,
}

impl<N: Protocol> MuxNode<N> {
    /// Builds a mux node over the given instance slots (all for the same
    /// [`NodeId`]). Tags must be unique; start rounds must be ≥ 1.
    pub fn new(id: NodeId, slots: Vec<InstanceSlot<N>>) -> Self {
        let total = slots.len();
        let mut node = MuxNode {
            id,
            slots,
            completed: Vec::new(),
            completed_index: HashMap::default(),
            total,
            decided: 0,
            retire: true,
            work: MuxWork::default(),
            frontier: 0,
            pending_decided: BTreeSet::new(),
        };
        // A slot already terminated at build time counts as decided now and is
        // swept into `completed` lazily on the first step; `decided_round`
        // stays `None`, matching the step guard that never assigns one.
        let built_decided: Vec<u64> = node
            .slots
            .iter()
            .filter(|slot| slot.node.terminated())
            .map(|slot| slot.tag)
            .collect();
        node.decided += built_decided.len();
        for tag in built_decided {
            node.note_decided(tag);
        }
        node
    }

    /// The **live** (undecided) instance slots, in tag order.
    pub fn slots(&self) -> &[InstanceSlot<N>] {
        &self.slots
    }

    /// The retired instances, in retirement order.
    pub fn completed(&self) -> &[CompletedInstance<N>] {
        &self.completed
    }

    /// The demux work counters accumulated so far.
    pub fn work(&self) -> MuxWork {
        self.work
    }

    /// Looks an instance up by tag, live or retired.
    pub fn instance(&self, tag: u64) -> Option<InstanceState<'_, N>> {
        if let Some(&at) = self.completed_index.get(&tag) {
            return Some(InstanceState::Completed(&self.completed[at]));
        }
        self.slots
            .iter()
            .find(|slot| slot.tag == tag)
            .map(InstanceState::Live)
    }

    /// Turns retirement on or off (on by default). With retirement off,
    /// decided slots stay in the slot vector — the pre-retirement behaviour,
    /// kept byte-identical by `tests/stream_equivalence.rs`.
    pub fn set_retirement(&mut self, on: bool) {
        self.retire = on;
    }

    /// Records a decided tag and advances the contiguous decided-prefix
    /// frontier past it if possible.
    fn note_decided(&mut self, tag: u64) {
        self.pending_decided.insert(tag);
        while self.pending_decided.remove(&self.frontier) {
            self.frontier += 1;
        }
    }

    /// Moves every terminated slot out of the scan path into `completed`,
    /// preserving the order of the remaining live slots (wire-traffic
    /// byte-identity depends on slot order, so no swap-remove here).
    fn retire_terminated(&mut self) {
        let mut completed = std::mem::take(&mut self.completed);
        let index = &mut self.completed_index;
        self.slots.retain(|slot| {
            if slot.node.terminated() {
                index.insert(slot.tag, completed.len());
                completed.push(CompletedInstance {
                    tag: slot.tag,
                    start_round: slot.start_round,
                    decided_round: slot.decided_round,
                    output: slot.node.output(),
                });
                false
            } else {
                true
            }
        });
        self.completed = completed;
    }
}

impl<N: Protocol> Protocol for MuxNode<N>
where
    N::Payload: Send + Sync + 'static,
{
    type Payload = (u64, N::Payload);
    /// The number of instances that have terminated (present once all have).
    type Output = usize;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<Self::Payload>],
    ) -> Vec<Outgoing<Self::Payload>> {
        // One pass over the inbox: index envelope positions by instance tag
        // (positions, so arrival order inside each instance is preserved).
        let mut index: HashMap<u64, Vec<usize>, FastState> = HashMap::default();
        for (position, envelope) in inbox.iter().enumerate() {
            index
                .entry(envelope.payload.get().0)
                .or_default()
                .push(position);
        }
        self.work.envelopes_indexed += inbox.len() as u64;

        let mut outgoing = Vec::new();
        let mut newly_decided: Vec<u64> = Vec::new();
        let mut sweep = false;
        for slot in &mut self.slots {
            if ctx.round < slot.start_round {
                // Not started: nobody has sent for this tag yet, so a match
                // here cannot occur on the wire; drop it silently, exactly as
                // the pre-index filter ignored it.
                index.remove(&slot.tag);
                continue;
            }
            if slot.node.terminated() {
                // Reachable only with retirement off, or for a slot that was
                // terminated at build time and awaits its lazy sweep. Consume
                // the tag so the counter matches the retired path exactly.
                if let Some(positions) = index.remove(&slot.tag) {
                    self.work.dropped_retired += positions.len() as u64;
                }
                sweep = true;
                continue;
            }
            // Project each matching envelope's inner payload out of the tagged
            // tuple — a borrow of the same allocation, not a clone.
            let inner_inbox: Vec<Envelope<N::Payload>> = index
                .remove(&slot.tag)
                .unwrap_or_default()
                .into_iter()
                .map(|position| {
                    let envelope = &inbox[position];
                    Envelope::new(envelope.from, envelope.payload.project_second())
                })
                .collect();
            self.work.slot_steps += 1;
            let local = RoundContext::new(ctx.round - slot.start_round + 1);
            for sent in slot.node.step(&local, &inner_inbox) {
                outgoing.push(Outgoing {
                    dest: sent.dest,
                    payload: (slot.tag, sent.payload),
                });
            }
            if slot.node.terminated() && slot.decided_round.is_none() {
                slot.decided_round = Some(ctx.round);
                newly_decided.push(slot.tag);
                sweep = true;
            }
        }
        // Whatever is left in the index matched no slot at all: the instance
        // was already retired (or never scheduled). Zero clones were paid.
        for positions in index.into_values() {
            self.work.dropped_retired += positions.len() as u64;
        }
        self.decided += newly_decided.len();
        for tag in newly_decided {
            self.note_decided(tag);
        }
        if self.retire && sweep {
            self.retire_terminated();
        }
        outgoing
    }

    fn output(&self) -> Option<Self::Output> {
        (self.decided == self.total).then_some(self.decided)
    }

    fn terminated(&self) -> bool {
        self.decided == self.total
    }

    fn instance_of(&self, payload: &Self::Payload) -> Option<u64> {
        Some(payload.0)
    }

    fn retired_frontier(&self) -> u64 {
        self.frontier
    }
}

/// How a [`StreamDriver`] renders an inner output into the per-instance
/// agreement digest recorded in the [`StreamSection`]. Two digests are equal
/// iff the instance's decision is (for the oracle's purposes) the same.
pub type OutputDigest<N> = Arc<dyn Fn(&<N as Protocol>::Output) -> String + Send + Sync>;

/// One instance scheduled on a [`StreamDriver`].
pub struct StreamInstance<F> {
    /// Global round in which the instance starts.
    pub start_round: u64,
    /// Number of client requests batched into this instance (recorded only).
    pub batch_size: usize,
    /// The factory building this instance's nodes.
    pub factory: F,
}

/// A [`ProtocolFactory`] running a pipelined stream of inner-protocol
/// instances behind [`MuxNode`]s.
///
/// Each scheduled [`StreamInstance`] gets its own inner factory; `build_nodes`
/// builds every instance's nodes and transposes them into one [`MuxNode`] per
/// participant. Instances start at their scheduled rounds and overlap freely;
/// the run stops when all of them have terminated.
///
/// Restrictions (checked where possible, documented otherwise):
/// * inner factories must not rely on `before_round` input injection — the
///   slots are scattered across mux nodes, so there is no per-instance
///   `&mut [Node]` slice to hand them (consensus-style factories, which take
///   their inputs at construction, stream fine; total-order streams batch
///   through the plan instead and need no mux);
/// * streams are fault-free: every adversary kind maps to the silent strategy.
pub struct StreamDriver<F: ProtocolFactory> {
    name: String,
    instances: Vec<StreamInstance<F>>,
    digest: OutputDigest<F::Node>,
    retirement: bool,
}

impl<F: ProtocolFactory> StreamDriver<F> {
    /// Creates an empty driver. `inner_name` is the inner protocol's name; the
    /// driver reports as `stream(inner_name)`.
    pub fn new(inner_name: &str) -> Self {
        StreamDriver {
            name: format!("stream({inner_name})"),
            instances: Vec::new(),
            digest: Arc::new(|output| format!("{output:?}")),
            retirement: true,
        }
    }

    /// Replaces the agreement digest (default: the output's `Debug` rendering).
    /// Use this when the inner output carries per-node fields (e.g. a decide
    /// round) that must not count as disagreement.
    pub fn digest(mut self, digest: OutputDigest<F::Node>) -> Self {
        self.digest = digest;
        self
    }

    /// Turns instance retirement on or off for the built mux nodes (on by
    /// default; the off path exists for the byte-identity pins).
    pub fn retirement(mut self, on: bool) -> Self {
        self.retirement = on;
        self
    }

    /// Schedules an instance. Tags are assigned in push order, starting at 0.
    pub fn push(mut self, start_round: u64, batch_size: usize, factory: F) -> Self {
        assert!(start_round >= 1, "instance start rounds are 1-based");
        self.instances.push(StreamInstance {
            start_round,
            batch_size,
            factory,
        });
        self
    }

    /// Number of scheduled instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether no instances are scheduled.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl<F: ProtocolFactory> ProtocolFactory for StreamDriver<F>
where
    <F::Node as Protocol>::Payload: Send + Sync + 'static,
{
    type Node = MuxNode<F::Node>;

    fn protocol_name(&self) -> String {
        self.name.clone()
    }

    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<Self::Node> {
        assert!(
            !self.instances.is_empty(),
            "a stream needs at least one scheduled instance"
        );
        let mut muxes: Vec<Vec<InstanceSlot<F::Node>>> =
            ctx.correct_ids.iter().map(|_| Vec::new()).collect();
        for (tag, instance) in self.instances.iter_mut().enumerate() {
            let nodes = instance.factory.build_nodes(ctx);
            assert_eq!(
                nodes.len(),
                ctx.correct_ids.len(),
                "inner factory built a different node count than the scenario"
            );
            for (participant, node) in nodes.into_iter().enumerate() {
                muxes[participant].push(InstanceSlot {
                    tag: tag as u64,
                    start_round: instance.start_round,
                    node,
                    decided_round: None,
                });
            }
        }
        ctx.correct_ids
            .iter()
            .zip(muxes)
            .map(|(&id, slots)| {
                let mut node = MuxNode::new(id, slots);
                node.set_retirement(self.retirement);
                node
            })
            .collect()
    }

    fn adversary(
        &self,
        _kind: AdversaryKind,
        _ctx: &BuildContext,
    ) -> NamedAdversary<<Self::Node as Protocol>::Payload> {
        // Streams measure the fault-free serving path; see the module docs.
        NamedAdversary::new("silent", SilentAdversary)
    }

    fn record(&self, _ctx: &BuildContext, nodes: &[Self::Node], report: &mut RunReport) {
        let mut instances = Vec::with_capacity(self.instances.len());
        for (tag, instance) in self.instances.iter().enumerate() {
            let mut outputs = Vec::with_capacity(nodes.len());
            let mut decide_rounds = Vec::with_capacity(nodes.len());
            for node in nodes {
                let (output, decided_round) = match node.instance(tag as u64) {
                    Some(InstanceState::Live(slot)) => (
                        slot.node.output().map(|o| (self.digest)(&o)),
                        slot.decided_round,
                    ),
                    Some(InstanceState::Completed(done)) => (
                        done.output.as_ref().map(|o| (self.digest)(o)),
                        done.decided_round,
                    ),
                    None => (None, None),
                };
                outputs.push((node.id(), output));
                decide_rounds.push((node.id(), decided_round));
            }
            let digests: Vec<&String> = outputs.iter().filter_map(|(_, d)| d.as_ref()).collect();
            let agreement = digests.windows(2).all(|pair| pair[0] == pair[1]);
            let decided = outputs.iter().all(|(_, digest)| digest.is_some());
            instances.push(StreamInstanceReport {
                instance: tag as u64,
                start_round: instance.start_round,
                batch_size: instance.batch_size,
                outputs,
                decide_rounds,
                agreement,
                decided,
            });
        }
        let agreement = instances.iter().all(|i| i.agreement);
        let completed = instances.iter().filter(|i| i.decided).count();
        report.stream = Some(StreamSection {
            instances,
            agreement,
            completed,
        });
    }
}

/// Per-instance outcome recorded by a [`StreamDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamInstanceReport {
    /// The instance tag (its position in the stream's total order).
    pub instance: u64,
    /// Global round in which the instance started.
    pub start_round: u64,
    /// Number of client requests batched into the instance.
    pub batch_size: usize,
    /// Per-node agreement digest of the instance output (`None` = undecided).
    pub outputs: Vec<(NodeId, Option<String>)>,
    /// Global round in which each node's instance terminated.
    pub decide_rounds: Vec<(NodeId, Option<u64>)>,
    /// Whether every node that decided produced the same digest.
    pub agreement: bool,
    /// Whether every node decided this instance.
    pub decided: bool,
}

/// Stream-level results recorded into a [`RunReport`] by a [`StreamDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamSection {
    /// One report per scheduled instance, in tag order.
    pub instances: Vec<StreamInstanceReport>,
    /// Whether every instance satisfied per-instance agreement.
    pub agreement: bool,
    /// How many instances every node decided.
    pub completed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Destination;
    use crate::shared::allocations;

    /// A toy protocol: broadcasts its input in round 1, outputs the smallest
    /// value heard in round 2, then terminates.
    #[derive(Clone, Debug)]
    struct MinOnce {
        id: NodeId,
        input: u64,
        output: Option<u64>,
    }

    impl Protocol for MinOnce {
        type Payload = u64;
        type Output = u64;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            match ctx.round {
                1 => vec![Outgoing::broadcast(self.input)],
                _ => {
                    if self.output.is_none() {
                        let heard = inbox.iter().map(|e| *e.payload.get()).min();
                        self.output = Some(heard.map_or(self.input, |m| m.min(self.input)));
                    }
                    Vec::new()
                }
            }
        }

        fn output(&self) -> Option<u64> {
            self.output
        }
    }

    fn slot(tag: u64, start: u64, id: NodeId, input: u64) -> InstanceSlot<MinOnce> {
        InstanceSlot {
            tag,
            start_round: start,
            node: MinOnce {
                id,
                input,
                output: None,
            },
            decided_round: None,
        }
    }

    fn completed_of(node: &MuxNode<MinOnce>, tag: u64) -> &CompletedInstance<MinOnce> {
        match node.instance(tag) {
            Some(InstanceState::Completed(done)) => done,
            _ => panic!("instance {tag} should be retired"),
        }
    }

    #[test]
    fn the_mux_demuxes_by_tag_and_staggers_starts() {
        let a = NodeId::new(1);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 10), slot(1, 3, a, 20)]);

        // Round 1: only instance 0 is live; it broadcasts tagged payloads.
        let out = node.step(&RoundContext::new(1), &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, (0, 10));
        assert!(matches!(out[0].dest, Destination::Broadcast));

        // Round 2: instance 0 hears a tagged 7 (and ignores instance 1 traffic),
        // decides min(10, 7) = 7; instance 1 still has not started.
        let b = NodeId::new(2);
        let inbox = vec![
            Envelope::new(b, (0u64, 7u64)),
            Envelope::new(b, (1u64, 999u64)),
        ];
        let out = node.step(&RoundContext::new(2), &inbox);
        assert!(out.is_empty());
        let done = completed_of(&node, 0);
        assert_eq!(done.output, Some(7));
        assert_eq!(done.decided_round, Some(2));
        assert_eq!(node.slots().len(), 1, "only instance 1 is still live");
        assert!(!node.terminated());
        assert_eq!(node.retired_frontier(), 1, "tag 0 is globally done locally");

        // Round 3: instance 1 starts at its local round 1 and broadcasts.
        let out = node.step(&RoundContext::new(3), &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, (1, 20));

        // Round 4: instance 1 decides on its own input; the mux terminates.
        let out = node.step(&RoundContext::new(4), &[]);
        assert!(out.is_empty());
        assert_eq!(completed_of(&node, 1).output, Some(20));
        assert!(node.terminated());
        assert_eq!(node.output(), Some(2));
        assert_eq!(node.retired_frontier(), 2);
    }

    #[test]
    fn terminated_instances_stop_stepping() {
        let a = NodeId::new(1);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 5)]);
        node.set_retirement(false);
        node.step(&RoundContext::new(1), &[]);
        node.step(&RoundContext::new(2), &[]);
        assert!(node.terminated());
        // Further rounds are no-ops and do not disturb the decide round.
        let out = node.step(&RoundContext::new(3), &[]);
        assert!(out.is_empty());
        assert_eq!(node.slots()[0].decided_round, Some(2));
        // Even unretired, the decided slot never steps again.
        assert_eq!(node.work().slot_steps, 2);
    }

    #[test]
    fn demuxing_projects_instead_of_cloning() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 10)]);
        node.step(&RoundContext::new(1), &[]);
        let inbox = vec![Envelope::new(b, (0u64, 7u64))];
        let before = allocations();
        node.step(&RoundContext::new(2), &inbox);
        assert_eq!(
            allocations() - before,
            0,
            "demuxing a delivery must not allocate a payload copy"
        );
        assert_eq!(completed_of(&node, 0).output, Some(7));
    }

    #[test]
    fn retired_and_unscheduled_traffic_is_dropped_at_zero_clones() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut node = MuxNode::new(a, vec![slot(0, 1, a, 5), slot(1, 1, a, 6)]);
        // Both instances decide in round 2 and retire.
        node.step(&RoundContext::new(1), &[]);
        node.step(&RoundContext::new(2), &[]);
        assert!(node.terminated());
        assert_eq!(node.slots().len(), 0);
        assert_eq!(node.completed().len(), 2);

        // Late traffic for a retired tag and for a tag never scheduled: both
        // are dropped during indexing, with no payload clone.
        let inbox = vec![
            Envelope::new(b, (0u64, 1u64)),
            Envelope::new(b, (0u64, 2u64)),
            Envelope::new(b, (9u64, 3u64)),
        ];
        let before = allocations();
        let out = node.step(&RoundContext::new(3), &inbox);
        assert!(out.is_empty());
        assert_eq!(allocations() - before, 0, "dropping must not clone");
        assert_eq!(node.work().dropped_retired, 3);
        assert_eq!(node.work().envelopes_indexed, 3);
    }

    #[test]
    fn retirement_on_and_off_produce_identical_wire_traffic() {
        let build = || {
            let a = NodeId::new(1);
            MuxNode::new(
                a,
                vec![slot(0, 1, a, 4), slot(1, 2, a, 8), slot(2, 4, a, 2)],
            )
        };
        let mut retiring = build();
        let mut keeping = build();
        keeping.set_retirement(false);
        let b = NodeId::new(2);
        for round in 1..=6u64 {
            // A little cross-tag traffic, including a tag that retires early.
            let inbox = vec![
                Envelope::new(b, (0u64, 100 + round)),
                Envelope::new(b, (1u64, 200 + round)),
            ];
            let sent_retiring = retiring.step(&RoundContext::new(round), &inbox);
            let sent_keeping = keeping.step(&RoundContext::new(round), &inbox);
            assert_eq!(
                sent_retiring, sent_keeping,
                "round {round}: retirement changed the wire traffic"
            );
            assert_eq!(retiring.output(), keeping.output());
            assert_eq!(retiring.terminated(), keeping.terminated());
        }
        assert!(retiring.terminated());
        assert_eq!(
            retiring.work(),
            keeping.work(),
            "the work counters must agree: the kept decided slots consume \
             their tags exactly like the leftover-index accounting"
        );
        assert!(retiring.slots().is_empty());
        assert_eq!(keeping.slots().len(), 3);
    }

    #[test]
    fn the_frontier_advances_over_the_decided_prefix_only() {
        let a = NodeId::new(1);
        // Instance 1 decides before instance 0 (it starts earlier).
        let mut node = MuxNode::new(a, vec![slot(0, 4, a, 5), slot(1, 1, a, 6)]);
        node.step(&RoundContext::new(1), &[]);
        node.step(&RoundContext::new(2), &[]);
        assert_eq!(node.completed().len(), 1, "instance 1 has retired");
        assert_eq!(
            node.retired_frontier(),
            0,
            "tag 0 is still live, so nothing below it is retired"
        );
        node.step(&RoundContext::new(4), &[]);
        node.step(&RoundContext::new(5), &[]);
        assert!(node.terminated());
        assert_eq!(node.retired_frontier(), 2, "the prefix closed in one jump");
    }
}
