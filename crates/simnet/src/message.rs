//! Message envelopes exchanged through the simulated network.
//!
//! The network attaches the *true* sender identifier to every delivered message
//! ([`Envelope::from`]), so a Byzantine node cannot forge its identity when talking
//! directly to another node — exactly the guarantee the paper's model gives.
//! Payloads themselves are protocol-defined and completely opaque to the engine.

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// Where an outgoing message should be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Destination {
    /// Deliver to every node currently in the system, including the sender itself.
    ///
    /// Self-delivery matches the paper's algorithms (e.g. Algorithm 4 broadcasts the
    /// input "to all the nodes (including self)") and keeps the counting arguments of
    /// the proofs, which include the sender among the `g` correct nodes, literal.
    Broadcast,
    /// Deliver to a single node. The model only allows a correct node to unicast to a
    /// node it has already heard from; protocol implementations are responsible for
    /// respecting that restriction (the engine does not track it).
    Unicast(NodeId),
}

/// A message produced by a correct node in a round, before the sender id is attached.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing<P> {
    /// Where the message goes.
    pub dest: Destination,
    /// Protocol-defined payload.
    pub payload: P,
}

impl<P> Outgoing<P> {
    /// Convenience constructor for a broadcast message.
    pub fn broadcast(payload: P) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            payload,
        }
    }

    /// Convenience constructor for a unicast message.
    pub fn unicast(to: NodeId, payload: P) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            payload,
        }
    }
}

/// A message as delivered to a recipient: payload plus the authenticated sender id.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<P> {
    /// The true identifier of the sender (attached by the network, unforgeable).
    pub from: NodeId,
    /// Protocol-defined payload.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// Creates an envelope.
    pub fn new(from: NodeId, payload: P) -> Self {
        Envelope { from, payload }
    }
}

/// A fully addressed message: sender, recipient and payload.
///
/// This is the form in which the [`Adversary`](crate::Adversary) injects traffic —
/// Byzantine nodes may send *different* payloads to different recipients
/// (equivocation), which is why the adversary works with `Directed` messages rather
/// than [`Outgoing`] ones. The engine verifies that `from` is one of the adversary's
/// own identities, so even a Byzantine node cannot forge someone else's sender id.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directed<P> {
    /// Claimed (and engine-verified) sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Protocol-defined payload.
    pub payload: P,
}

impl<P> Directed<P> {
    /// Creates a directed message.
    pub fn new(from: NodeId, to: NodeId, payload: P) -> Self {
        Directed { from, to, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let b = Outgoing::broadcast("x");
        assert_eq!(b.dest, Destination::Broadcast);
        assert_eq!(b.payload, "x");

        let u = Outgoing::unicast(NodeId::new(3), 7u32);
        assert_eq!(u.dest, Destination::Unicast(NodeId::new(3)));
        assert_eq!(u.payload, 7);

        let e = Envelope::new(NodeId::new(1), "hi");
        assert_eq!(e.from, NodeId::new(1));

        let d = Directed::new(NodeId::new(1), NodeId::new(2), 9u8);
        assert_eq!(
            (d.from, d.to, d.payload),
            (NodeId::new(1), NodeId::new(2), 9)
        );
    }

    #[test]
    fn destinations_compare_by_target() {
        assert_ne!(Destination::Broadcast, Destination::Unicast(NodeId::new(0)));
        assert_eq!(
            Destination::Unicast(NodeId::new(5)),
            Destination::Unicast(NodeId::new(5))
        );
    }
}
