//! Message envelopes exchanged through the simulated network.
//!
//! The network attaches the *true* sender identifier to every delivered message
//! ([`Envelope::from`]), so a Byzantine node cannot forge its identity when talking
//! directly to another node — exactly the guarantee the paper's model gives.
//! Payloads themselves are protocol-defined and completely opaque to the engine.
//!
//! Everything on the *receive side* — [`Envelope`], [`Directed`], the traffic plane
//! in [`traffic`](crate::traffic) — stores its payload behind a [`Shared`] handle:
//! a broadcast's payload is allocated once and every recipient's envelope holds a
//! reference-count bump of the same allocation. Only the *produce side*
//! ([`Outgoing`]) carries an owned payload, because a node's freshly produced
//! message is the one place a payload legitimately comes into existence.

use serde::{Deserialize, Error, Serialize, Value};
use std::hash::Hash;

use crate::id::NodeId;
use crate::shared::Shared;

/// Where an outgoing message should be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Destination {
    /// Deliver to every node currently in the system, including the sender itself.
    ///
    /// Self-delivery matches the paper's algorithms (e.g. Algorithm 4 broadcasts the
    /// input "to all the nodes (including self)") and keeps the counting arguments of
    /// the proofs, which include the sender among the `g` correct nodes, literal.
    Broadcast,
    /// Deliver to a single node. The model only allows a correct node to unicast to a
    /// node it has already heard from; protocol implementations are responsible for
    /// respecting that restriction (the engine does not track it).
    Unicast(NodeId),
}

/// A message produced by a correct node in a round, before the sender id is attached.
///
/// The payload is owned: production is where a payload is born. The engine wraps it
/// into a [`Shared`] handle exactly once when it enters the round's traffic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing<P> {
    /// Where the message goes.
    pub dest: Destination,
    /// Protocol-defined payload.
    pub payload: P,
}

impl<P> Outgoing<P> {
    /// Convenience constructor for a broadcast message.
    pub fn broadcast(payload: P) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            payload,
        }
    }

    /// Convenience constructor for a unicast message.
    pub fn unicast(to: NodeId, payload: P) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            payload,
        }
    }
}

/// A message as delivered to a recipient: shared payload plus the authenticated
/// sender id.
///
/// Every recipient of a broadcast holds an envelope whose `payload` handle points at
/// the *same* allocation; inspect it through [`Envelope::payload`] (or deref the
/// field). Cloning an envelope clones the handle, never the payload.
#[derive(Debug)]
pub struct Envelope<P> {
    /// The true identifier of the sender (attached by the network, unforgeable).
    pub from: NodeId,
    /// Protocol-defined payload, shared across all recipients of a broadcast.
    pub payload: Shared<P>,
}

impl<P> Envelope<P> {
    /// Creates an envelope. Accepts either an owned payload (allocated into a fresh
    /// handle) or an existing [`Shared`] handle (forwarded without a copy).
    pub fn new(from: NodeId, payload: impl Into<Shared<P>>) -> Self {
        Envelope {
            from,
            payload: payload.into(),
        }
    }

    /// The payload value (the method shadows the field for ergonomic matching:
    /// `match envelope.payload() { … }`).
    pub fn payload(&self) -> &P {
        &self.payload
    }
}

impl<P> Clone for Envelope<P> {
    /// A handle clone — no payload copy, regardless of `P`.
    fn clone(&self) -> Self {
        Envelope {
            from: self.from,
            payload: self.payload.clone(),
        }
    }
}

impl<P: PartialEq> PartialEq for Envelope<P> {
    fn eq(&self, other: &Self) -> bool {
        self.from == other.from && self.payload == other.payload
    }
}

impl<P: Eq> Eq for Envelope<P> {}

impl<P: Serialize> Serialize for Envelope<P> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("from".to_string(), self.from.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<P: Deserialize + Hash> Deserialize for Envelope<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Envelope {
            from: field(value, "from")?,
            payload: field(value, "payload")?,
        })
    }
}

/// A fully addressed message: sender, recipient and shared payload.
///
/// This is the form in which the [`Adversary`](crate::Adversary) injects traffic —
/// Byzantine nodes may send *different* payloads to different recipients
/// (equivocation), which is why the adversary works with `Directed` messages rather
/// than [`Outgoing`] ones. The engine verifies that `from` is one of the adversary's
/// own identities, so even a Byzantine node cannot forge someone else's sender id.
///
/// An adversary that *forwards* observed honest traffic passes the handle along
/// (one reference-count bump); only a message it actually fabricates or tampers
/// with allocates a payload.
#[derive(Debug)]
pub struct Directed<P> {
    /// Claimed (and engine-verified) sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Protocol-defined payload, possibly shared with other messages.
    pub payload: Shared<P>,
}

impl<P> Directed<P> {
    /// Creates a directed message from an owned payload or an existing handle.
    pub fn new(from: NodeId, to: NodeId, payload: impl Into<Shared<P>>) -> Self {
        Directed {
            from,
            to,
            payload: payload.into(),
        }
    }

    /// The payload value (method shadowing the field, for ergonomic matching).
    pub fn payload(&self) -> &P {
        &self.payload
    }
}

impl<P> Clone for Directed<P> {
    /// A handle clone — no payload copy, regardless of `P`.
    fn clone(&self) -> Self {
        Directed {
            from: self.from,
            to: self.to,
            payload: self.payload.clone(),
        }
    }
}

impl<P: PartialEq> PartialEq for Directed<P> {
    fn eq(&self, other: &Self) -> bool {
        self.from == other.from && self.to == other.to && self.payload == other.payload
    }
}

impl<P: Eq> Eq for Directed<P> {}

impl<P: Serialize> Serialize for Directed<P> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("from".to_string(), self.from.to_value()),
            ("to".to_string(), self.to.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<P: Deserialize + Hash> Deserialize for Directed<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Directed {
            from: field(value, "from")?,
            to: field(value, "to")?,
            payload: field(value, "payload")?,
        })
    }
}

/// Deserialises one named field of an object [`Value`] (the impls above are
/// hand-written because the shared payload field needs a `P: Hash` bound the
/// derive does not know to add).
fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    T::from_value(value.field(name)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::Shared;

    #[test]
    fn constructors_set_fields() {
        let b = Outgoing::broadcast("x");
        assert_eq!(b.dest, Destination::Broadcast);
        assert_eq!(b.payload, "x");

        let u = Outgoing::unicast(NodeId::new(3), 7u32);
        assert_eq!(u.dest, Destination::Unicast(NodeId::new(3)));
        assert_eq!(u.payload, 7);

        let e = Envelope::new(NodeId::new(1), "hi");
        assert_eq!(e.from, NodeId::new(1));
        assert_eq!(*e.payload(), "hi");

        let d = Directed::new(NodeId::new(1), NodeId::new(2), 9u8);
        assert_eq!(
            (d.from, d.to, *d.payload()),
            (NodeId::new(1), NodeId::new(2), 9)
        );
    }

    #[test]
    fn destinations_compare_by_target() {
        assert_ne!(Destination::Broadcast, Destination::Unicast(NodeId::new(0)));
        assert_eq!(
            Destination::Unicast(NodeId::new(5)),
            Destination::Unicast(NodeId::new(5))
        );
    }

    #[test]
    fn envelopes_accept_and_forward_shared_handles() {
        let handle = Shared::new(41u64);
        let a = Envelope::new(NodeId::new(1), handle.clone());
        let b = a.clone();
        assert!(
            Shared::ptr_eq(&a.payload, &b.payload),
            "cloning an envelope shares the payload"
        );
        assert!(Shared::ptr_eq(&a.payload, &handle));
        assert_eq!(a, b);
        // Value comparison works directly against a payload.
        assert_eq!(a.payload, 41u64);
    }

    #[test]
    fn directed_serde_round_trips_with_the_derived_shape() {
        let d = Directed::new(NodeId::new(1), NodeId::new(2), 9u64);
        let value = Serialize::to_value(&d);
        let back: Directed<u64> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, d);

        let e = Envelope::new(NodeId::new(4), 5u32);
        let back: Envelope<u32> = Deserialize::from_value(&Serialize::to_value(&e)).unwrap();
        assert_eq!(back, e);
    }
}
