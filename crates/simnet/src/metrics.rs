//! Round, message and delivery accounting.
//!
//! The paper argues (Section XII) that dropping the knowledge of `n` and `f` leaves
//! the message and round complexity of the classic algorithms essentially unchanged.
//! The experiments that check this claim (E5, E10) read the counters collected here.

use serde::{Deserialize, Serialize};

/// Counters for a single round of execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Round number these counters belong to.
    pub round: u64,
    /// Messages produced by correct nodes this round (a broadcast counts once per
    /// recipient, i.e. as the number of point-to-point deliveries it generates).
    pub correct_messages: u64,
    /// Messages injected by the adversary this round.
    pub byzantine_messages: u64,
    /// Messages actually delivered to correct nodes at the start of the next round
    /// (after deduplication).
    pub deliveries: u64,
    /// Number of correct nodes that were live (not yet terminated) this round.
    pub live_correct_nodes: u64,
}

/// Aggregated counters for an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of rounds executed so far.
    pub rounds: u64,
    /// Total point-to-point messages produced by correct nodes.
    pub correct_messages: u64,
    /// Total messages injected by the adversary.
    pub byzantine_messages: u64,
    /// Total deliveries to correct nodes (after deduplication).
    pub deliveries: u64,
    /// Per-round breakdown, in round order.
    pub per_round: Vec<RoundMetrics>,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records the counters of a completed round.
    pub fn record_round(&mut self, round: RoundMetrics) {
        self.rounds += 1;
        self.correct_messages += round.correct_messages;
        self.byzantine_messages += round.byzantine_messages;
        self.deliveries += round.deliveries;
        self.per_round.push(round);
    }

    /// Total messages (correct + Byzantine) produced during the execution.
    pub fn total_messages(&self) -> u64 {
        self.correct_messages + self.byzantine_messages
    }

    /// Average point-to-point messages produced by correct nodes per round, or 0.0 if
    /// no round has been executed.
    pub fn avg_correct_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.correct_messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.avg_correct_messages_per_round(), 0.0);
    }

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new();
        m.record_round(RoundMetrics {
            round: 1,
            correct_messages: 10,
            byzantine_messages: 2,
            deliveries: 12,
            live_correct_nodes: 4,
        });
        m.record_round(RoundMetrics {
            round: 2,
            correct_messages: 20,
            byzantine_messages: 0,
            deliveries: 20,
            live_correct_nodes: 4,
        });
        assert_eq!(m.rounds, 2);
        assert_eq!(m.correct_messages, 30);
        assert_eq!(m.byzantine_messages, 2);
        assert_eq!(m.deliveries, 32);
        assert_eq!(m.total_messages(), 32);
        assert!((m.avg_correct_messages_per_round() - 15.0).abs() < 1e-12);
        assert_eq!(m.per_round.len(), 2);
    }
}
