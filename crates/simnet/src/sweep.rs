//! The scenario-sweep DSL: a deterministic grid over every scenario axis.
//!
//! The paper's guarantees are universally quantified over adversary strategies,
//! inputs and identifier layouts; a single run answers one point of that space. A
//! [`ScenarioGrid`] enumerates a *rectangle* of it — protocols × `(correct,
//! byzantine)` sizes × [`AttackPlan`]s × [`ChurnSchedule`]s × derived seeds — as a
//! flat, indexable case list:
//!
//! * every case is a plain [`SweepCase`]: a protocol label plus a fully resolved
//!   [`ScenarioSpec`] (the spec embeds the plan, the churn schedule and a seed
//!   derived from the grid's base seed and the case index), so a case serialises
//!   to its own reproduction recipe;
//! * enumeration order and per-case seeds depend only on the grid definition —
//!   `case(i)` is a pure function — so fanning the grid out over any worker pool
//!   (`uba-bench`'s `run_trials` stripes it across threads) produces results that
//!   are byte-for-byte independent of the worker count;
//! * the protocol axis is a caller-chosen label type `P` (the generic engine layer
//!   cannot name concrete protocols); `uba-bench::fuzz` instantiates it with its
//!   `ProtocolId` enum covering every protocol and baseline family.

use serde::{Deserialize, Serialize};

use crate::attack::AttackPlan;
use crate::dynamic::{ChurnEvent, ChurnSchedule};
use crate::event::{DelaySpec, EngineKind, TimingSpec};
use crate::id::IdSpace;
use crate::rng::derive_seed;
use crate::sim::{ScenarioBuilder, ScenarioSpec, Simulation};
use crate::wal::RestartPolicy;

/// A declarative crash/restart cycle resolved per case: the `victim`-th correct
/// node (in construction order, wrapped modulo the case's correct count, so one
/// plan is meaningful across every size on the grid) crashes before
/// `crash_round` and restarts under `policy` before `restart_round`. Resolution
/// happens inside [`ScenarioGrid::case`] against the case's own identifier
/// split, so the same plan names a different concrete [`NodeId`] per layout and
/// seed — exactly like the other declarative axes.
///
/// [`NodeId`]: crate::id::NodeId
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Index of the crashing node among the correct nodes (modulo their count).
    pub victim: usize,
    /// The round before which the victim crashes.
    pub crash_round: u64,
    /// The round before which the victim restarts (replaying its log).
    pub restart_round: u64,
    /// How the victim's write-ahead log is treated at restart.
    pub policy: RestartPolicy,
}

/// A grid of scenarios over protocols, sizes, attack plans, churn schedules and
/// seeds. Build with the fluent setters, then enumerate with [`ScenarioGrid::case`]
/// / [`ScenarioGrid::cases`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioGrid<P> {
    protocols: Vec<P>,
    sizes: Vec<(usize, usize)>,
    plans: Vec<AttackPlan>,
    churns: Vec<ChurnSchedule>,
    id_spaces: Vec<IdSpace>,
    delay_models: Vec<DelaySpec>,
    crash_plans: Vec<Option<CrashPlan>>,
    trials: u64,
    base_seed: u64,
    max_rounds: u64,
}

impl<P> Default for ScenarioGrid<P> {
    fn default() -> Self {
        ScenarioGrid {
            protocols: Vec::new(),
            sizes: vec![(5, 1)],
            plans: vec![AttackPlan::preset(crate::sim::AdversaryKind::Silent)],
            churns: vec![ChurnSchedule::empty()],
            id_spaces: vec![IdSpace::default()],
            delay_models: vec![DelaySpec::Synchronous],
            crash_plans: vec![None],
            trials: 1,
            base_seed: 0,
            max_rounds: 400,
        }
    }
}

impl<P: Clone> ScenarioGrid<P> {
    /// An empty grid (no protocols yet) with one silent plan, one `(5, 1)` size,
    /// no churn, one trial per point and a 400-round budget.
    pub fn new() -> Self {
        ScenarioGrid::default()
    }

    /// Sets the protocol axis.
    pub fn protocols(mut self, protocols: impl Into<Vec<P>>) -> Self {
        self.protocols = protocols.into();
        self
    }

    /// Sets the `(correct, byzantine)` size axis.
    pub fn sizes(mut self, sizes: impl Into<Vec<(usize, usize)>>) -> Self {
        self.sizes = sizes.into();
        self
    }

    /// Sets the attack-plan axis.
    pub fn plans(mut self, plans: impl Into<Vec<AttackPlan>>) -> Self {
        self.plans = plans.into();
        self
    }

    /// Sets the churn-schedule axis.
    pub fn churns(mut self, churns: impl Into<Vec<ChurnSchedule>>) -> Self {
        self.churns = churns.into();
        self
    }

    /// Sets the number of derived-seed trials per grid point.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the base seed every case seed is derived from.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the per-case round budget.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets a single identifier-generation strategy for every case (collapses
    /// the identifier-layout axis to one point).
    pub fn ids(mut self, id_space: IdSpace) -> Self {
        self.id_spaces = vec![id_space];
        self
    }

    /// Sets the identifier-layout axis: every case is enumerated once per
    /// layout, so a sweep probes dense, sparse and adversary-chosen identifier
    /// assignments side by side.
    pub fn id_spaces(mut self, id_spaces: impl Into<Vec<IdSpace>>) -> Self {
        self.id_spaces = id_spaces.into();
        self
    }

    /// Sets a single link-delay model for every case (collapses the timing axis
    /// to one point). [`DelaySpec::Synchronous`] keeps the classic synchronous
    /// engine; anything else routes the case through the discrete-event engine.
    pub fn delay_model(mut self, delay: DelaySpec) -> Self {
        self.delay_models = vec![delay];
        self
    }

    /// Sets the link-delay axis: every case is enumerated once per delay model,
    /// so a sweep probes synchronous, jittered and partially synchronous timing
    /// side by side. [`DelaySpec::Synchronous`] cases leave the spec's engine
    /// unset (the synchronous engine runs them, byte-identical to a grid
    /// without this axis); other models run on the discrete-event engine.
    pub fn delay_models(mut self, delay_models: impl Into<Vec<DelaySpec>>) -> Self {
        self.delay_models = delay_models.into();
        self
    }

    /// Sets a single crash plan for every case (collapses the crash axis to one
    /// point; `None` restores the crash-free default).
    pub fn crash_plan(mut self, plan: Option<CrashPlan>) -> Self {
        self.crash_plans = vec![plan];
        self
    }

    /// Sets the crash-plan axis: every case is enumerated once crash-free
    /// *plus* once per plan, so a sweep probes the same scenario with and
    /// without mid-run crash/restart cycles side by side. The resolved crash
    /// and restart events are appended to the case's churn schedule.
    pub fn crash_plans(mut self, plans: impl Into<Vec<CrashPlan>>) -> Self {
        self.crash_plans = std::iter::once(None)
            .chain(plans.into().into_iter().map(Some))
            .collect();
        self
    }

    /// Total number of cases the grid enumerates.
    pub fn len(&self) -> u64 {
        self.protocols.len() as u64
            * self.sizes.len() as u64
            * self.plans.len() as u64
            * self.churns.len() as u64
            * self.id_spaces.len() as u64
            * self.delay_models.len() as u64
            * self.crash_plans.len() as u64
            * self.trials
    }

    /// Whether the grid enumerates no cases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th case (0-based). Pure in the grid definition: trial varies
    /// fastest, then crash plan, delay model, identifier layout, churn, plan,
    /// size, and protocol slowest — and the case seed is
    /// `derive_seed(base_seed, index)`, so every case owns an independent
    /// stream.
    ///
    /// Panics if `index >= len()`.
    pub fn case(&self, index: u64) -> SweepCase<P> {
        assert!(index < self.len(), "grid index {index} out of range");
        let mut rest = index;
        let trial = rest % self.trials;
        rest /= self.trials;
        let crash_plan = &self.crash_plans[(rest % self.crash_plans.len() as u64) as usize];
        rest /= self.crash_plans.len() as u64;
        let delay = &self.delay_models[(rest % self.delay_models.len() as u64) as usize];
        rest /= self.delay_models.len() as u64;
        let id_space = self.id_spaces[(rest % self.id_spaces.len() as u64) as usize];
        rest /= self.id_spaces.len() as u64;
        let churn = &self.churns[(rest % self.churns.len() as u64) as usize];
        rest /= self.churns.len() as u64;
        let plan = &self.plans[(rest % self.plans.len() as u64) as usize];
        rest /= self.plans.len() as u64;
        let (correct, byzantine) = self.sizes[(rest % self.sizes.len() as u64) as usize];
        rest /= self.sizes.len() as u64;
        let protocol = self.protocols[rest as usize].clone();

        let seed = derive_seed(self.base_seed, index);
        // A crash plan resolves against the same identifier split the scenario
        // will generate (first `correct` generated ids are the correct nodes),
        // then rides on the churn schedule as ordinary crash/restart events.
        let churn = match crash_plan {
            None => churn.clone(),
            Some(plan) if correct > 0 => {
                let ids = id_space.generate(correct + byzantine, seed);
                let victim = ids[plan.victim % correct];
                churn
                    .clone()
                    .with(plan.crash_round, ChurnEvent::Crash(victim))
                    .with(
                        plan.restart_round,
                        ChurnEvent::Restart {
                            id: victim,
                            policy: plan.policy,
                        },
                    )
            }
            Some(_) => churn.clone(),
        };
        let mut builder = Simulation::scenario()
            .correct(correct)
            .byzantine(byzantine)
            .ids(id_space)
            .seed(seed)
            .max_rounds(self.max_rounds)
            .churn(churn)
            .attack(plan.clone());
        // A synchronous delay model keeps the engine axis unset, so grids that
        // never touch the timing axis produce byte-identical specs to before
        // the axis existed.
        if *delay != DelaySpec::Synchronous {
            builder = builder.engine(EngineKind::Event(
                TimingSpec::synchronous().with_delay(delay.clone()),
            ));
        }
        let spec = builder.spec().clone();
        SweepCase {
            index,
            trial,
            protocol,
            spec,
        }
    }

    /// All cases, in index order.
    pub fn cases(&self) -> Vec<SweepCase<P>> {
        (0..self.len()).map(|index| self.case(index)).collect()
    }
}

/// One enumerated point of a [`ScenarioGrid`]: a protocol label plus the fully
/// resolved scenario. Serialisable, so a failing case is its own reproducer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCase<P> {
    /// Position in the grid's enumeration order.
    pub index: u64,
    /// Trial number within the case's grid point (seeds differ per trial).
    pub trial: u64,
    /// The protocol label chosen by the grid's `protocols` axis.
    pub protocol: P,
    /// The scenario to run (embeds plan, churn, seed and round budget).
    pub spec: ScenarioSpec,
}

impl<P> SweepCase<P> {
    /// A [`ScenarioBuilder`] reproducing this case's scenario; attach a factory
    /// with [`ScenarioBuilder::build`] to run it.
    pub fn builder(&self) -> ScenarioBuilder {
        ScenarioBuilder::from_spec(self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackBehavior, AttackPlan};
    use crate::dynamic::ChurnEvent;
    use crate::id::NodeId;
    use crate::sim::AdversaryKind;

    fn grid() -> ScenarioGrid<&'static str> {
        ScenarioGrid::new()
            .protocols(vec!["a", "b"])
            .sizes(vec![(4, 1), (7, 2)])
            .plans(vec![
                AttackPlan::preset(AdversaryKind::SplitVote),
                AttackPlan::new().behavior(AttackBehavior::Replay {
                    visible_to_even_raw_ids: true,
                }),
            ])
            .churns(vec![
                ChurnSchedule::empty(),
                ChurnSchedule::empty().with(3, ChurnEvent::JoinByzantine(NodeId::new(9_000_001))),
            ])
            .trials(3)
            .base_seed(42)
    }

    #[test]
    fn grid_len_is_the_axis_product() {
        assert_eq!(grid().len(), 2 * 2 * 2 * 2 * 3);
        assert!(!grid().is_empty());
        assert!(ScenarioGrid::<&'static str>::new().is_empty());
    }

    #[test]
    fn cases_enumerate_every_combination_deterministically() {
        let grid = grid();
        let cases = grid.cases();
        assert_eq!(cases.len() as u64, grid.len());
        // Indices are the enumeration order and seeds are pairwise distinct.
        let mut seeds = std::collections::HashSet::new();
        for (i, case) in cases.iter().enumerate() {
            assert_eq!(case.index, i as u64);
            assert_eq!(case.trial, i as u64 % 3, "trial varies fastest");
            assert!(
                seeds.insert(case.spec.seed),
                "derived seeds must not repeat"
            );
            assert_eq!(case, &grid.case(case.index), "case() is pure");
        }
        // The protocol axis varies slowest.
        assert!(cases[..24].iter().all(|c| c.protocol == "a"));
        assert!(cases[24..].iter().all(|c| c.protocol == "b"));
    }

    #[test]
    fn id_space_axis_multiplies_and_threads_layouts_into_specs() {
        let grid = ScenarioGrid::<&'static str>::new()
            .protocols(vec!["a"])
            .sizes(vec![(4, 2)])
            .id_spaces(vec![
                IdSpace::default(),
                IdSpace::AdversaryLow { stride: 97 },
                IdSpace::Consecutive,
            ])
            .trials(2);
        assert_eq!(grid.len(), 3 * 2, "layout axis multiplies the case count");
        // Trial varies fastest, layout second; each case records its layout.
        assert_eq!(grid.case(0).spec.id_space, IdSpace::default());
        assert_eq!(grid.case(1).spec.id_space, IdSpace::default());
        assert_eq!(
            grid.case(2).spec.id_space,
            IdSpace::AdversaryLow { stride: 97 }
        );
        assert_eq!(grid.case(4).spec.id_space, IdSpace::Consecutive);
        // A single `.ids(...)` call collapses the axis again.
        let collapsed = grid.clone().ids(IdSpace::Random);
        assert_eq!(collapsed.len(), 2);
        assert_eq!(collapsed.case(1).spec.id_space, IdSpace::Random);
    }

    #[test]
    fn delay_model_axis_multiplies_and_routes_to_the_event_engine() {
        let grid = ScenarioGrid::<&'static str>::new()
            .protocols(vec!["a"])
            .sizes(vec![(4, 1)])
            .delay_models(vec![
                DelaySpec::Synchronous,
                DelaySpec::Gst { gst: 40, bound: 2 },
            ])
            .trials(2);
        assert_eq!(grid.len(), 2 * 2, "delay axis multiplies the case count");
        // Trial varies fastest, delay model second. Synchronous cases leave the
        // engine unset — byte-identical to a grid without the axis.
        assert_eq!(grid.case(0).spec.engine, None);
        assert_eq!(grid.case(1).spec.engine, None);
        let event = grid.case(2).spec.engine.clone().expect("event engine set");
        assert_eq!(
            event,
            EngineKind::Event(
                TimingSpec::synchronous().with_delay(DelaySpec::Gst { gst: 40, bound: 2 })
            )
        );
        assert_eq!(grid.case(3).spec.engine, grid.case(2).spec.engine);
        // A single `.delay_model(...)` call collapses the axis again.
        let collapsed = grid.clone().delay_model(DelaySpec::Synchronous);
        assert_eq!(collapsed.len(), 2);
        assert_eq!(collapsed.case(0).spec.engine, None);
    }

    #[test]
    fn crash_plan_axis_adds_a_crash_free_point_and_resolves_victims() {
        let grid = ScenarioGrid::<&'static str>::new()
            .protocols(vec!["a"])
            .sizes(vec![(4, 1)])
            .crash_plans(vec![CrashPlan {
                victim: 1,
                crash_round: 2,
                restart_round: 4,
                policy: RestartPolicy::Clean,
            }])
            .trials(2);
        // One crash-free point plus one per plan, each with both trials.
        assert_eq!(grid.len(), 2 * 2, "crash axis multiplies the case count");
        assert!(!grid.case(0).spec.churn.has_crash_events());
        assert!(!grid.case(1).spec.churn.has_crash_events());
        let case = grid.case(2);
        assert!(case.spec.churn.has_crash_events());
        // The victim is the second *generated* correct id of this very case.
        let ids = case.spec.id_space.generate(5, case.spec.seed);
        assert_eq!(case.spec.churn.crash_cycle_ids(), vec![ids[1]]);
        // A single `.crash_plan(None)` collapses the axis again.
        let collapsed = grid.clone().crash_plan(None);
        assert_eq!(collapsed.len(), 2);
        assert!(!collapsed.case(0).spec.churn.has_crash_events());
    }

    #[test]
    fn preset_plans_normalise_the_spec_adversary() {
        let case = grid().case(0);
        assert_eq!(case.spec.adversary, AdversaryKind::SplitVote);
        assert_eq!(
            case.spec.attack.as_ref().and_then(AttackPlan::as_preset),
            Some(AdversaryKind::SplitVote)
        );
        assert_eq!(case.builder().spec(), &case.spec);
    }

    #[test]
    fn sweep_cases_round_trip_through_serde() {
        let case = grid().case(17);
        let value = serde::Serialize::to_value(&case);
        let back: SweepCase<String> = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back.index, case.index);
        assert_eq!(back.spec, case.spec);
        assert_eq!(back.protocol, "a");
    }
}
