//! Error types for the simulation engines.

use std::fmt;

use crate::id::NodeId;

/// Errors reported by the simulation engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Two nodes (correct or Byzantine) were registered with the same identifier.
    DuplicateId(NodeId),
    /// The adversary tried to send a message claiming a sender identity it does not
    /// control. The model forbids forging sender identifiers, so this is a bug in the
    /// adversary implementation, not a legal Byzantine behaviour.
    ForgedSender {
        /// The identity the adversary claimed.
        claimed: NodeId,
    },
    /// The engine hit the configured round limit before the run condition was met.
    MaxRoundsExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A node identifier referenced by the caller is not present in the system.
    UnknownNode(NodeId),
    /// A crash/restart churn event was scheduled but the engine has no recovery
    /// subsystem — enable it (or use a factory whose protocol is `Recoverable`)
    /// before scheduling crashes.
    RecoveryDisabled(NodeId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateId(id) => write!(f, "duplicate node identifier {id}"),
            SimError::ForgedSender { claimed } => {
                write!(f, "adversary attempted to forge sender identity {claimed}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "execution exceeded the round limit of {limit}")
            }
            SimError::UnknownNode(id) => write!(f, "unknown node identifier {id}"),
            SimError::RecoveryDisabled(id) => {
                write!(f, "crash of {id} scheduled but recovery is not enabled")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SimError::DuplicateId(NodeId::new(3))
            .to_string()
            .contains("n3"));
        assert!(SimError::ForgedSender {
            claimed: NodeId::new(9)
        }
        .to_string()
        .contains("forge"));
        assert!(SimError::MaxRoundsExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(SimError::UnknownNode(NodeId::new(1))
            .to_string()
            .contains("n1"));
        assert!(SimError::RecoveryDisabled(NodeId::new(2))
            .to_string()
            .contains("recovery"));
    }
}
