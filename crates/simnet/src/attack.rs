//! Composable, serialisable attack plans.
//!
//! The scripted [`AdversaryKind`] strategies are single, whole-run behaviours; the
//! paper's adversary is quantified over *arbitrary* behaviour, which includes
//! switching strategies mid-run, splitting the Byzantine identities between
//! different attacks and crashing at inconvenient moments. An [`AttackPlan`] captures
//! that richer space as plain data:
//!
//! * an [`AttackStep`] is one behaviour ([`AttackBehavior`]) restricted to a round
//!   window (`from_round..=to_round`) and to a slice of the Byzantine identities
//!   (an [`ActorRange`]);
//! * an [`AttackPlan`] is a list of steps whose injected traffic is concatenated
//!   every round — two steps with disjoint actor ranges are a *collusion split*,
//!   a step whose window ends early is a *crash window*, and
//!   [`AttackPlan::preset`] embeds every legacy [`AdversaryKind`] unchanged.
//!
//! Plans are interpreted against a concrete protocol by the
//! [`ProtocolFactory`](crate::sim::ProtocolFactory): each behaviour is mapped onto a
//! payload-typed strategy (`ProtocolFactory::attack_behavior`), and the compiled
//! steps run inside a [`PlanAdversary`]. Because a plan is serde-serialisable it can
//! ride inside a [`ScenarioSpec`](crate::sim::ScenarioSpec), which is what makes
//! fuzzed counterexamples replayable from JSON (see `uba-bench::fuzz`).

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, AdversaryView};
use crate::id::NodeId;
use crate::message::Directed;
use crate::sim::{AdversaryKind, BoxedAdversary};

/// A contiguous slice of the Byzantine identity list (by position, not by id, so a
/// range stays meaningful when the identifier layout changes with the seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorRange {
    /// First Byzantine index (0-based) driven by the step.
    pub start: usize,
    /// Number of identities driven; `None` means "through the end of the list".
    pub len: Option<usize>,
}

impl Default for ActorRange {
    fn default() -> Self {
        ActorRange::all()
    }
}

impl ActorRange {
    /// Every Byzantine identity.
    pub fn all() -> Self {
        ActorRange {
            start: 0,
            len: None,
        }
    }

    /// The first `len` Byzantine identities.
    pub fn first(len: usize) -> Self {
        ActorRange {
            start: 0,
            len: Some(len),
        }
    }

    /// Every Byzantine identity from index `start` onwards.
    pub fn from(start: usize) -> Self {
        ActorRange { start, len: None }
    }

    /// `len` Byzantine identities starting at index `start`.
    pub fn slice(start: usize, len: usize) -> Self {
        ActorRange {
            start,
            len: Some(len),
        }
    }

    /// Whether the range covers the whole identity list regardless of its length.
    pub fn is_all(&self) -> bool {
        self.start == 0 && self.len.is_none()
    }

    /// The sub-slice of `ids` this range selects (clamped to the list).
    pub fn select<'a>(&self, ids: &'a [NodeId]) -> &'a [NodeId] {
        let start = self.start.min(ids.len());
        let end = match self.len {
            None => ids.len(),
            Some(len) => start.saturating_add(len).min(ids.len()),
        };
        &ids[start..end]
    }
}

/// One abstract Byzantine behaviour, interpreted per protocol by the factory.
///
/// [`AttackBehavior::Preset`] resolves through the factory's existing
/// [`AdversaryKind`] mapping, so the legacy scripted strategies are a strict subset
/// of what plans can express. The remaining variants are the behaviours the scripted
/// enum could not parameterise; factories whose payloads support them map them
/// exactly and everything else substitutes the closest applicable kind (the same
/// substitution rule `ProtocolFactory::adversary` already follows).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackBehavior {
    /// Exactly the named legacy strategy.
    Preset(AdversaryKind),
    /// Replay a correct node's traffic under the Byzantine identities towards a
    /// raw-id-parity subset of the correct nodes (protocol-agnostic).
    Replay {
        /// Replay towards even raw identifiers if true, odd otherwise.
        visible_to_even_raw_ids: bool,
    },
    /// Announce in round 1 to only the correct nodes whose construction index `i`
    /// satisfies `i % modulus == remainder` — the generalised "known to only a
    /// subset" behaviour (the `PartialAnnounce` preset is `modulus = 2`,
    /// `remainder = 0`).
    AnnounceToSubset {
        /// Index modulus (values below 2 degrade to announcing to everyone).
        modulus: u64,
        /// Selected remainder class.
        remainder: u64,
    },
    /// Push two conflicting values to alternating halves of the correct nodes —
    /// vote equivocation for consensus-shaped protocols, sender equivocation where
    /// a Byzantine designated sender exists.
    Equivocate {
        /// Value pushed to one half.
        low: u64,
        /// Value pushed to the other half.
        high: u64,
    },
    /// Inject extreme values `±magnitude` (value-carrying protocols only; others
    /// substitute their worst scripted attack).
    Outliers {
        /// Absolute magnitude of the injected outliers.
        magnitude: f64,
    },
    /// Flood the protocol with everything its payload vocabulary can express —
    /// valid traffic, threshold-probing payloads and fresh per-round garbage,
    /// scattered across recipients (see
    /// [`VocabAdversary`](crate::vocab::VocabAdversary)). Factories without a
    /// vocabulary substitute their worst scripted attack.
    Noise,
    /// Fabricate exactly one vocabulary class, with its class-specific dispatch
    /// (valid → full flood, boundary → equivocation partition, garbage →
    /// sustained nonsense flood).
    Semantic {
        /// The vocabulary class to draw from.
        strategy: SemanticStrategy,
    },
    /// A stateful adversary that *reacts to the observed traffic*: it tracks how
    /// many messages every correct node has received so far and re-targets its
    /// vocabulary payloads each round according to the chosen
    /// [`AdaptiveStrategy`]. Deterministic under the run seed (ties break on the
    /// smallest identifier), so plans containing adaptive steps replay and
    /// shrink exactly like scripted ones. Factories without a payload vocabulary
    /// substitute their worst scripted attack (same rule as [`Noise`]).
    ///
    /// [`Noise`]: AttackBehavior::Noise
    Adaptive {
        /// The traffic-reactive targeting rule.
        strategy: AdaptiveStrategy,
    },
}

/// Which class of a [`PayloadVocab`](crate::vocab::PayloadVocab) the
/// [`AttackBehavior::Semantic`] behaviour fabricates from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemanticStrategy {
    /// Semantically valid payloads, sent to every correct node — the Byzantine
    /// identities imitate correct participants at full volume.
    Valid,
    /// Threshold-probing payloads, partitioned across the correct nodes
    /// (equivocation-shaped: payload `j` to recipients with `i % len == j`).
    Boundary,
    /// Fresh per-round garbage, sent to every correct node.
    Garbage,
}

impl SemanticStrategy {
    /// A stable lowercase label used in plan and adversary names.
    pub fn name(&self) -> &'static str {
        match self {
            SemanticStrategy::Valid => "valid",
            SemanticStrategy::Boundary => "boundary",
            SemanticStrategy::Garbage => "garbage",
        }
    }
}

impl AttackBehavior {
    /// A stable lowercase label used when naming composed plans.
    pub fn label(&self) -> String {
        match self {
            AttackBehavior::Preset(kind) => kind.name().to_string(),
            AttackBehavior::Replay { .. } => "replay".to_string(),
            AttackBehavior::AnnounceToSubset { .. } => "announce-to-subset".to_string(),
            AttackBehavior::Equivocate { .. } => "equivocate".to_string(),
            AttackBehavior::Outliers { .. } => "outliers".to_string(),
            AttackBehavior::Noise => "noise".to_string(),
            AttackBehavior::Semantic { strategy } => format!("semantic-{}", strategy.name()),
            AttackBehavior::Adaptive { strategy } => format!("adaptive-{}", strategy.name()),
        }
    }
}

/// Traffic-reactive targeting rules for [`AttackBehavior::Adaptive`]. All three
/// read the same signal — the cumulative number of messages each correct node
/// has received from correct nodes since the step began — and differ only in
/// where they aim the payload vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaptiveStrategy {
    /// Flood the correct node that has received the *fewest* messages so far
    /// with the full plausible vocabulary (valid + boundary payloads, no
    /// garbage): the node with the least information gets force-fed every
    /// conflicting story at once, while everyone else hears nothing.
    StarveWeakest,
    /// Equivocate only toward the minority partition: nodes below the median
    /// received-message count get the high boundary payload, the rest get the
    /// low one — concentrated equivocation aimed where it is least likely to be
    /// outvoted.
    EquivocateMinority,
    /// Imitate correct participants (valid payloads) toward everyone *except*
    /// the node that has received the most traffic — starving whichever node is
    /// closest to assembling a quorum.
    WithholdNearQuorum,
}

impl AdaptiveStrategy {
    /// Every adaptive strategy, for grids and mutation moves.
    pub const ALL: [AdaptiveStrategy; 3] = [
        AdaptiveStrategy::StarveWeakest,
        AdaptiveStrategy::EquivocateMinority,
        AdaptiveStrategy::WithholdNearQuorum,
    ];

    /// Stable lowercase name used in plan labels.
    pub fn name(&self) -> &'static str {
        match self {
            AdaptiveStrategy::StarveWeakest => "starve-weakest",
            AdaptiveStrategy::EquivocateMinority => "equivocate-minority",
            AdaptiveStrategy::WithholdNearQuorum => "withhold-near-quorum",
        }
    }
}

/// One behaviour bound to a round window and an actor range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackStep {
    /// The behaviour to run.
    pub behavior: AttackBehavior,
    /// First round (1-based, inclusive) in which the step is active.
    pub from_round: u64,
    /// Last active round (inclusive); `None` means "until the run ends".
    pub to_round: Option<u64>,
    /// The Byzantine identities the step drives.
    pub actors: ActorRange,
}

impl AttackStep {
    /// A step running `behavior` for the whole run with every Byzantine identity.
    pub fn new(behavior: AttackBehavior) -> Self {
        AttackStep {
            behavior,
            from_round: 1,
            to_round: None,
            actors: ActorRange::all(),
        }
    }

    /// Restricts the step to rounds `from..=to`.
    pub fn window(mut self, from: u64, to: u64) -> Self {
        assert!(from <= to, "attack window must be non-empty");
        self.from_round = from;
        self.to_round = Some(to);
        self
    }

    /// Restricts the step to rounds `..=to` — the behaviour then crashes.
    pub fn until(mut self, to: u64) -> Self {
        self.to_round = Some(to);
        self
    }

    /// Restricts the step to rounds `from..`.
    pub fn starting(mut self, from: u64) -> Self {
        self.from_round = from;
        self
    }

    /// Restricts the step to a slice of the Byzantine identities.
    pub fn actors(mut self, actors: ActorRange) -> Self {
        self.actors = actors;
        self
    }

    /// Whether the step is active in `round`.
    pub fn active_in(&self, round: u64) -> bool {
        round >= self.from_round && self.to_round.is_none_or(|to| round <= to)
    }

    /// Whether the step covers every round and every Byzantine identity — i.e. it
    /// behaves exactly like its bare behaviour.
    pub fn covers_everything(&self) -> bool {
        self.from_round <= 1 && self.to_round.is_none() && self.actors.is_all()
    }

    /// Label used when naming composed plans, e.g. `split-vote@2..5[0..2]`.
    pub fn describe(&self) -> String {
        self.describe_as(&self.behavior.label())
    }

    /// Like [`AttackStep::describe`] but around an externally resolved strategy
    /// name (what the factory actually instantiated for the behaviour).
    pub fn describe_as(&self, resolved: &str) -> String {
        let mut label = resolved.to_string();
        match (self.from_round, self.to_round) {
            (from, Some(to)) => label.push_str(&format!("@{from}..{to}")),
            (from, None) if from > 1 => label.push_str(&format!("@{from}..")),
            _ => {}
        }
        if !self.actors.is_all() {
            match self.actors.len {
                Some(len) => label.push_str(&format!(
                    "[{}..{}]",
                    self.actors.start,
                    self.actors.start + len
                )),
                None => label.push_str(&format!("[{}..]", self.actors.start)),
            }
        }
        label
    }
}

/// A composable, serialisable attack: the union of its steps' traffic each round.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// The steps, evaluated in order every round.
    pub steps: Vec<AttackStep>,
}

impl AttackPlan {
    /// An empty plan: the Byzantine identities never speak (equivalent to, but
    /// distinguishable in reports from, the `silent` preset).
    pub fn new() -> Self {
        AttackPlan::default()
    }

    /// The exact plan encoding of a legacy [`AdversaryKind`]: one step, every
    /// round, every Byzantine identity. Running this plan is byte-for-byte
    /// equivalent to selecting the kind through
    /// [`ScenarioBuilder::adversary`](crate::sim::ScenarioBuilder::adversary).
    pub fn preset(kind: AdversaryKind) -> Self {
        AttackPlan::new().step(AttackStep::new(AttackBehavior::Preset(kind)))
    }

    /// Appends a step.
    pub fn step(mut self, step: AttackStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Appends a whole-run step running `behavior`.
    pub fn behavior(self, behavior: AttackBehavior) -> Self {
        self.step(AttackStep::new(behavior))
    }

    /// A crash window: the kind's strategy runs for rounds `from..=to` and is
    /// silent afterwards (and before).
    pub fn crash_window(kind: AdversaryKind, from: u64, to: u64) -> Self {
        AttackPlan::new().step(AttackStep::new(AttackBehavior::Preset(kind)).window(from, to))
    }

    /// A collusion split: the first `first_count` Byzantine identities run
    /// `first`, the rest run `second`, simultaneously.
    pub fn collusion(first: AttackBehavior, first_count: usize, second: AttackBehavior) -> Self {
        AttackPlan::new()
            .step(AttackStep::new(first).actors(ActorRange::first(first_count)))
            .step(AttackStep::new(second).actors(ActorRange::from(first_count)))
    }

    /// If the plan is exactly the encoding of one legacy kind, that kind.
    pub fn as_preset(&self) -> Option<AdversaryKind> {
        match self.steps.as_slice() {
            [step] if step.covers_everything() => match step.behavior {
                AttackBehavior::Preset(kind) => Some(kind),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The plan with step `index` removed — the shrinking move of the fuzz
    /// harness. Indices out of range return the plan unchanged.
    pub fn without_step(&self, index: usize) -> AttackPlan {
        let mut shrunk = self.clone();
        if index < shrunk.steps.len() {
            shrunk.steps.remove(index);
        }
        shrunk
    }

    /// A human-readable label, e.g. `plan(split-vote@1..4 + replay)`.
    pub fn label(&self) -> String {
        if self.steps.is_empty() {
            return "plan(empty)".to_string();
        }
        let parts: Vec<String> = self.steps.iter().map(AttackStep::describe).collect();
        format!("plan({})", parts.join(" + "))
    }
}

/// One compiled plan step: the window and actor range from the [`AttackStep`] plus
/// the payload-typed strategy the factory produced for its behaviour.
pub struct CompiledStep<P> {
    /// First active round (inclusive).
    pub from_round: u64,
    /// Last active round (inclusive); `None` = forever.
    pub to_round: Option<u64>,
    /// Byzantine identities visible to the strategy.
    pub actors: ActorRange,
    /// The strategy driving the step.
    pub strategy: BoxedAdversary<P>,
}

/// The adversary a compiled [`AttackPlan`] runs as: every round, each active step
/// sees a view restricted to its actor range and its injected traffic is
/// concatenated in step order.
///
/// A plan with a single whole-run, all-actors step forwards the exact view it
/// received, so preset plans reproduce their legacy kind's executions bit for bit.
pub struct PlanAdversary<P> {
    steps: Vec<CompiledStep<P>>,
}

impl<P> PlanAdversary<P> {
    /// Assembles the adversary from compiled steps.
    pub fn new(steps: Vec<CompiledStep<P>>) -> Self {
        PlanAdversary { steps }
    }
}

impl<P> Adversary<P> for PlanAdversary<P> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let mut out = Vec::new();
        for step in &mut self.steps {
            if view.round < step.from_round {
                continue;
            }
            if let Some(to) = step.to_round {
                if view.round > to {
                    continue;
                }
            }
            let restricted = AdversaryView {
                round: view.round,
                correct_ids: view.correct_ids,
                byzantine_ids: step.actors.select(view.byzantine_ids),
                correct_traffic: view.correct_traffic,
            };
            out.extend(step.strategy.step(&restricted));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FnAdversary;
    use crate::traffic::RoundTraffic;

    static CORRECT: [NodeId; 3] = [NodeId::new(2), NodeId::new(4), NodeId::new(5)];
    static BYZ: [NodeId; 3] = [NodeId::new(90), NodeId::new(91), NodeId::new(92)];

    fn view(round: u64, traffic: &RoundTraffic<u32>) -> AdversaryView<'_, u32> {
        AdversaryView {
            round,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    fn flooder() -> BoxedAdversary<u32> {
        Box::new(FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            let mut out = Vec::new();
            for &from in v.byzantine_ids {
                for &to in v.correct_ids {
                    out.push(Directed::new(from, to, 7u32));
                }
            }
            out
        }))
    }

    #[test]
    fn actor_ranges_select_and_clamp() {
        let ids = &BYZ;
        assert_eq!(ActorRange::all().select(ids), ids);
        assert_eq!(ActorRange::first(2).select(ids), &ids[..2]);
        assert_eq!(ActorRange::from(1).select(ids), &ids[1..]);
        assert_eq!(ActorRange::slice(1, 1).select(ids), &ids[1..2]);
        assert_eq!(ActorRange::first(99).select(ids), ids, "len clamps");
        assert!(ActorRange::from(99).select(ids).is_empty(), "start clamps");
        assert!(ActorRange::all().is_all());
        assert!(!ActorRange::first(2).is_all());
    }

    #[test]
    fn preset_plans_round_trip_and_normalise() {
        let plan = AttackPlan::preset(AdversaryKind::SplitVote);
        assert_eq!(plan.as_preset(), Some(AdversaryKind::SplitVote));
        let windowed = AttackPlan::crash_window(AdversaryKind::SplitVote, 1, 4);
        assert_eq!(windowed.as_preset(), None, "a window is not a pure preset");
        let value = serde::Serialize::to_value(&windowed);
        let back: AttackPlan = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, windowed);
    }

    #[test]
    fn step_windows_and_activity() {
        let step = AttackStep::new(AttackBehavior::Preset(AdversaryKind::Silent)).window(2, 4);
        assert!(!step.active_in(1));
        assert!(step.active_in(2) && step.active_in(4));
        assert!(!step.active_in(5));
        assert!(!step.covers_everything());
        assert!(AttackStep::new(AttackBehavior::Replay {
            visible_to_even_raw_ids: true
        })
        .covers_everything());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn inverted_windows_are_rejected() {
        let _ = AttackStep::new(AttackBehavior::Preset(AdversaryKind::Silent)).window(5, 4);
    }

    #[test]
    fn plan_adversary_respects_windows_and_actors() {
        let mut adv = PlanAdversary::new(vec![
            CompiledStep {
                from_round: 1,
                to_round: Some(2),
                actors: ActorRange::first(1),
                strategy: flooder(),
            },
            CompiledStep {
                from_round: 3,
                to_round: None,
                actors: ActorRange::from(1),
                strategy: flooder(),
            },
        ]);
        let t = RoundTraffic::from_directed(vec![]);
        let round1 = adv.step(&view(1, &t));
        assert_eq!(round1.len(), 3, "one actor × three recipients");
        assert!(round1.iter().all(|m| m.from == BYZ[0]));
        let round3 = adv.step(&view(3, &t));
        assert_eq!(round3.len(), 6, "two actors × three recipients");
        assert!(round3.iter().all(|m| m.from != BYZ[0]));
    }

    #[test]
    fn collusion_and_shrinking_helpers() {
        let plan = AttackPlan::collusion(
            AttackBehavior::Preset(AdversaryKind::SplitVote),
            1,
            AttackBehavior::Preset(AdversaryKind::AnnounceThenSilent),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.as_preset(), None);
        let shrunk = plan.without_step(0);
        assert_eq!(shrunk.len(), 1);
        assert_eq!(plan.without_step(7), plan, "out of range is a no-op");
        assert!(AttackPlan::new().is_empty());
        assert_eq!(AttackPlan::new().label(), "plan(empty)");
        assert!(plan.label().starts_with("plan(split-vote"));
    }
}
