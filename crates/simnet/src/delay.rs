//! Message-delay engine for the impossibility constructions of Section IX.
//!
//! The paper shows that without knowledge of `n` and `f`, agreement is impossible —
//! even with probabilistic termination — in asynchronous and semi-synchronous systems.
//! Both proofs are constructive: partition the nodes into two sets `A` and `B` with
//! opposite inputs and delay every cross-partition message long enough that each side
//! decides, using only local traffic, before hearing from the other side.
//!
//! [`DelayEngine`] reproduces those executions. Unlike [`SyncEngine`](crate::SyncEngine)
//! there is no global round barrier: time advances in *ticks*, each node optimistically
//! treats every tick as a round (it cannot do otherwise — it does not know how many
//! messages to wait for), and a message is delivered at the tick assigned by the
//! [`DelayModel`]. With [`DelayModel::Synchronous`] every message takes exactly one
//! tick and the engine behaves like the synchronous engine; with a partitioned model
//! the cross-partition delay (or outright omission, for the asynchronous case) builds
//! exactly the executions of Lemmas 14 and 15; with [`DelayModel::Gst`] messages
//! stall until a global stabilisation time and flow with a bounded delay after it —
//! the partial-synchrony regime the impossibility results leave open.
//!
//! Since the discrete-event scheduler landed ([`crate::event`]), this engine is a
//! thin facade over [`EventEngine`] with a zero-skew, one-unit-per-tick timing and
//! the [`DelayModel`] translated to a per-link [`LinkDelay`]: the tick-delivery
//! loop this module used to carry lives there now, shared with every other timing
//! model. All nodes are correct — the impossibility constructions need no
//! Byzantine nodes, which is precisely what makes them so damning.

use std::collections::HashMap;

use crate::adversary::SilentAdversary;
use crate::error::SimError;
use crate::event::{EventEngine, EventTiming, LinkDelay};
use crate::id::NodeId;
use crate::metrics::Metrics;
use crate::node::Protocol;

/// Assignment of nodes to partition groups.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionSpec {
    groups: HashMap<NodeId, u32>,
}

impl PartitionSpec {
    /// Creates an empty spec (every node defaults to group 0).
    pub fn new() -> Self {
        PartitionSpec::default()
    }

    /// Assigns a node to a group.
    pub fn assign(&mut self, id: NodeId, group: u32) {
        self.groups.insert(id, group);
    }

    /// Builder-style variant of [`PartitionSpec::assign`] for a whole group.
    pub fn with_group(mut self, group: u32, ids: impl IntoIterator<Item = NodeId>) -> Self {
        for id in ids {
            self.assign(id, group);
        }
        self
    }

    /// The group of a node (0 if unassigned).
    pub fn group_of(&self, id: NodeId) -> u32 {
        self.groups.get(&id).copied().unwrap_or(0)
    }

    /// Whether two nodes are in the same group.
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        self.group_of(a) == self.group_of(b)
    }
}

/// How long a message takes to be delivered, in ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message is delivered at the next tick — equivalent to the synchronous
    /// model and used as the control arm of experiment E7.
    Synchronous,
    /// Messages within a partition group take one tick; messages across groups take
    /// `cross_delay` ticks, or are never delivered if `cross_delay` is `None`
    /// (the fully asynchronous construction of Lemma 14).
    Partitioned {
        /// Node-to-group assignment.
        spec: PartitionSpec,
        /// Cross-partition delay in ticks (`None` = unbounded / never delivered).
        cross_delay: Option<u64>,
    },
    /// Partial synchrony: every message sent before the global stabilisation
    /// time `gst` arrives at `gst + bound`; messages sent at or after `gst`
    /// take `bound` ticks. Before stabilisation the network is effectively
    /// asynchronous (unbounded but finite delay); after it, synchronous with a
    /// known bound — the classic DLS régime the Section IX impossibilities
    /// bracket from both sides.
    Gst {
        /// Global stabilisation time, in ticks.
        gst: u64,
        /// Post-stabilisation delivery bound, in ticks.
        bound: u64,
    },
}

impl DelayModel {
    /// The per-link delay function of this model, as understood by the
    /// discrete-event scheduler ([`crate::event::EventEngine`]).
    pub fn link_delay(&self) -> LinkDelay {
        match self {
            DelayModel::Synchronous => LinkDelay::Constant(1),
            DelayModel::Partitioned { spec, cross_delay } => LinkDelay::Partitioned {
                spec: spec.clone(),
                same: 1,
                cross: *cross_delay,
            },
            DelayModel::Gst { gst, bound } => LinkDelay::Gst {
                gst: *gst,
                bound: (*bound).max(1),
            },
        }
    }
}

/// An engine where every message carries an individual delivery delay (see module docs).
///
/// A facade over [`EventEngine`] with all nodes correct, one virtual unit per
/// tick and zero timer skew: every live node steps every tick, and the
/// [`DelayModel`] decides when (or whether) each message arrives.
pub struct DelayEngine<N: Protocol> {
    inner: EventEngine<N, SilentAdversary>,
}

impl<N: Protocol> DelayEngine<N> {
    /// Creates a delay engine over the given nodes and delay model.
    pub fn new(nodes: Vec<N>, model: DelayModel) -> Self {
        let timing = EventTiming {
            delay: model.link_delay(),
            ..EventTiming::synchronous()
        };
        DelayEngine {
            inner: EventEngine::new(nodes, SilentAdversary, Vec::new(), timing),
        }
    }

    /// The number of ticks executed so far.
    pub fn tick(&self) -> u64 {
        self.inner.round()
    }

    /// Collected metrics (one [`crate::metrics::RoundMetrics`] entry per tick).
    ///
    /// Deliveries are attributed to the tick the message was *sent* in (the
    /// scheduler's convention), and deduplication happens against everything a
    /// recipient has not yet consumed rather than per arrival tick.
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics()
    }

    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[N] {
        self.inner.nodes()
    }

    /// The `(id, output)` pairs of all nodes.
    pub fn outputs(&self) -> Vec<(NodeId, Option<N::Output>)> {
        self.inner.outputs()
    }

    /// Number of messages still in flight (not yet delivered). Messages the
    /// model refuses to deliver at all (`cross_delay: None`) are dropped at
    /// send time and never counted.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    /// Executes one tick: delivers due messages, steps every live node, and enqueues
    /// the produced messages with delays from the model.
    pub fn run_tick(&mut self) {
        self.inner
            .run_round()
            .expect("a silent adversary cannot forge senders");
    }

    /// Runs ticks until every node has terminated or `max_ticks` is reached.
    pub fn run_until_all_terminated(&mut self, max_ticks: u64) -> Result<u64, SimError> {
        while self.tick() < max_ticks {
            if self.inner.nodes().iter().all(|n| n.terminated()) {
                return Ok(self.tick());
            }
            self.run_tick();
        }
        if self.inner.nodes().iter().all(|n| n.terminated()) {
            Ok(self.tick())
        } else {
            Err(SimError::MaxRoundsExceeded { limit: max_ticks })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, Outgoing};
    use crate::node::RoundContext;

    /// Decides the majority value among the first `quorum`-ish messages it sees: a toy
    /// stand-in for an agreement protocol that does not know how many nodes exist.
    struct NaiveVoter {
        id: NodeId,
        input: u8,
        heard: Vec<u8>,
        decided: Option<u8>,
    }

    impl Protocol for NaiveVoter {
        type Payload = u8;
        type Output = u8;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u8>]) -> Vec<Outgoing<u8>> {
            self.heard.extend(inbox.iter().map(|e| *e.payload()));
            match ctx.round {
                1 => vec![Outgoing::broadcast(self.input)],
                2 => vec![],
                _ => {
                    let ones = self.heard.iter().filter(|&&v| v == 1).count();
                    let zeros = self.heard.len() - ones;
                    self.decided = Some(u8::from(ones >= zeros));
                    vec![]
                }
            }
        }

        fn output(&self) -> Option<u8> {
            self.decided
        }
    }

    fn voters(inputs: &[(u64, u8)]) -> Vec<NaiveVoter> {
        inputs
            .iter()
            .map(|&(id, input)| NaiveVoter {
                id: NodeId::new(id),
                input,
                heard: vec![],
                decided: None,
            })
            .collect()
    }

    #[test]
    fn synchronous_model_reaches_agreement() {
        let mut engine = DelayEngine::new(
            voters(&[(1, 1), (2, 1), (3, 0), (4, 1)]),
            DelayModel::Synchronous,
        );
        engine.run_until_all_terminated(10).unwrap();
        let outputs: Vec<u8> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        assert!(
            outputs.iter().all(|&o| o == outputs[0]),
            "all nodes agree under synchrony"
        );
    }

    #[test]
    fn partitioned_model_produces_disagreement() {
        let spec = PartitionSpec::new()
            .with_group(0, [NodeId::new(1), NodeId::new(2)])
            .with_group(1, [NodeId::new(3), NodeId::new(4)]);
        let mut engine = DelayEngine::new(
            voters(&[(1, 1), (2, 1), (3, 0), (4, 0)]),
            DelayModel::Partitioned {
                spec,
                cross_delay: None,
            },
        );
        engine.run_until_all_terminated(10).unwrap();
        let outputs: Vec<u8> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        // Group 0 decides 1, group 1 decides 0 — exactly the Lemma 14 construction.
        assert_eq!(outputs, vec![1, 1, 0, 0]);
    }

    #[test]
    fn semi_synchronous_delay_is_delivered_but_too_late() {
        let spec = PartitionSpec::new()
            .with_group(0, [NodeId::new(1), NodeId::new(2)])
            .with_group(1, [NodeId::new(3), NodeId::new(4)]);
        let mut engine = DelayEngine::new(
            voters(&[(1, 1), (2, 1), (3, 0), (4, 0)]),
            DelayModel::Partitioned {
                spec,
                cross_delay: Some(50),
            },
        );
        engine.run_until_all_terminated(10).unwrap();
        let outputs: Vec<u8> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        assert_eq!(outputs, vec![1, 1, 0, 0]);
        // The cross-partition messages exist but are still in flight: bounded delay,
        // unknown to the nodes, is enough to break agreement (Lemma 15).
        assert!(engine.in_flight() > 0);
    }

    #[test]
    fn gst_model_stalls_every_delivery_until_stabilisation() {
        // Before GST the network is silent everywhere: every message sent
        // before tick 50 arrives at tick 51, long after the naive voters stop
        // waiting at tick 3 — they decide having heard nothing at all.
        let mut engine = DelayEngine::new(
            voters(&[(1, 1), (2, 1), (3, 0), (4, 0)]),
            DelayModel::Gst { gst: 50, bound: 1 },
        );
        engine.run_until_all_terminated(10).unwrap();
        assert!(
            engine.outputs().into_iter().all(|(_, o)| o.is_some()),
            "nodes decide without hearing anybody"
        );
        assert_eq!(engine.metrics().deliveries, 0, "nothing arrives before GST");
        // One broadcast round: 4 senders × 4 recipients, all still queued.
        assert_eq!(engine.in_flight(), 16);

        // With gst = 0 the same model is synchronous-with-bound-1 from the
        // start: everything arrives and agreement goes through.
        let mut engine = DelayEngine::new(
            voters(&[(1, 1), (2, 1), (3, 0), (4, 1)]),
            DelayModel::Gst { gst: 0, bound: 1 },
        );
        engine.run_until_all_terminated(10).unwrap();
        let outputs: Vec<u8> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        assert!(outputs.iter().all(|&o| o == outputs[0]));
        assert_eq!(engine.metrics().deliveries, 16);
    }

    #[test]
    fn partition_spec_defaults_to_group_zero() {
        let spec = PartitionSpec::new();
        assert_eq!(spec.group_of(NodeId::new(42)), 0);
        assert!(spec.same_group(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn metrics_track_ticks_and_messages() {
        let mut engine = DelayEngine::new(voters(&[(1, 1), (2, 0)]), DelayModel::Synchronous);
        engine.run_until_all_terminated(10).unwrap();
        assert!(engine.metrics().rounds >= 3);
        assert_eq!(engine.metrics().correct_messages, 4); // 2 broadcasts × 2 recipients
        assert_eq!(engine.tick(), engine.metrics().rounds);
    }
}
