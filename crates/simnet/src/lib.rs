//! # uba-simnet
//!
//! A deterministic, synchronous, round-based message-passing simulator for the
//! *id-only* Byzantine model of Khanchandani & Wattenhofer (IPDPS 2021,
//! "Byzantine Agreement with Unknown Participants and Failures").
//!
//! In the id-only model the system consists of `n` nodes, at most `f` of which are
//! Byzantine, and **no node knows `n` or `f`**. Nodes have unique but not necessarily
//! consecutive identifiers, know only their own identifier at initialisation, and the
//! computation proceeds in synchronous rounds: messages sent in round `r` are delivered
//! at the beginning of round `r + 1`. A node can broadcast to everyone or reply to a
//! node it has already heard from. The sender identifier is attached to every message
//! by the network, so a Byzantine node cannot forge its identifier when communicating
//! directly — but it can lie about anything else, including claiming to have heard from
//! non-existent nodes.
//!
//! This crate provides the substrate on which the algorithms of the paper
//! (implemented in `uba-core`) and the classic known-`(n, f)` baselines
//! (implemented in `uba-baselines`) run:
//!
//! * [`NodeId`] and [`IdSpace`] — unique, non-consecutive identifier generation;
//! * [`Shared`] — the reference-counted, digest-caching payload handle behind the
//!   zero-copy message plane (one allocation per payload, regardless of fan-out);
//! * [`Protocol`] — the state-machine interface a correct node implements;
//! * [`Adversary`] — the interface through which Byzantine nodes inject traffic,
//!   with a *rushing* view of the round's correct messages;
//! * [`SyncEngine`] — the lock-step round scheduler (with dynamic membership);
//! * [`DelayEngine`] — an engine with per-message delays used to reproduce the
//!   semi-synchronous / asynchronous impossibility constructions of Section IX;
//! * [`Metrics`] and [`TraceLog`] — round, message and delivery accounting;
//! * [`ChurnSchedule`] — declarative join/leave schedules for dynamic networks,
//!   applied by the engine itself via [`SyncEngine::set_churn`];
//! * [`attack`] — composable, serialisable [`AttackPlan`]s: round-windowed,
//!   actor-scoped Byzantine behaviours generalising the scripted
//!   [`AdversaryKind`] presets;
//! * [`sweep`] — the [`ScenarioGrid`] DSL enumerating protocols × sizes × attack
//!   plans × churn schedules × derived seeds as replayable [`SweepCase`]s;
//! * [`sim`] — the unified `Simulation` driver: a fluent [`ScenarioBuilder`], the
//!   [`ProtocolFactory`] trait every protocol (and baseline) implements, and the
//!   serialisable [`RunReport`] all experiment tooling consumes.
//!
//! Executions are fully deterministic given a seed (see [`rng`]), which makes every
//! experiment in the repository reproducible.
//!
//! ## Example
//!
//! ```
//! use uba_simnet::{NodeId, Protocol, RoundContext, Envelope, Outgoing, Destination,
//!                  SyncEngine, adversary::SilentAdversary};
//!
//! /// A toy protocol: every node broadcasts a greeting and outputs the number of
//! /// distinct greetings it received.
//! struct Greeter { id: NodeId, heard: usize, done: bool }
//!
//! impl Protocol for Greeter {
//!     type Payload = &'static str;
//!     type Output = usize;
//!     fn id(&self) -> NodeId { self.id }
//!     fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<&'static str>])
//!         -> Vec<Outgoing<&'static str>>
//!     {
//!         match ctx.round {
//!             1 => vec![Outgoing { dest: Destination::Broadcast, payload: "hello" }],
//!             _ => { self.heard = inbox.len(); self.done = true; vec![] }
//!         }
//!     }
//!     fn output(&self) -> Option<usize> { self.done.then_some(self.heard) }
//! }
//!
//! let nodes = (0..4).map(|i| Greeter { id: NodeId::new(10 * i + 7), heard: 0, done: false });
//! let mut engine = SyncEngine::new(nodes.collect(), SilentAdversary::default(), vec![]);
//! engine.run_until_all_terminated(10).unwrap();
//! for (_, out) in engine.outputs() {
//!     assert_eq!(out, Some(4)); // every node heard all four greetings (self included)
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod attack;
pub mod delay;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod event;
pub mod faults;
pub mod id;
pub mod message;
pub mod metrics;
pub mod node;
pub mod rng;
pub mod shared;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod sweep;
pub mod trace;
pub mod traffic;
pub mod vocab;
pub mod wal;

pub use adversary::{Adversary, AdversaryView, FnAdversary, SilentAdversary};
pub use attack::{
    ActorRange, AdaptiveStrategy, AttackBehavior, AttackPlan, AttackStep, PlanAdversary,
    SemanticStrategy,
};
pub use delay::{DelayEngine, DelayModel, PartitionSpec};
pub use dynamic::{ChurnEvent, ChurnSchedule};
pub use engine::{EngineConfig, PhaseTimings, RunOutcome, SyncEngine};
pub use error::SimError;
pub use event::{DelaySpec, EngineKind, EventEngine, EventTiming, LinkDelay, TimingSpec};
pub use faults::{
    Collusion, NoiseAdversary, RecordingAdversary, RoundWindow, StaggeredCrash, TamperAdversary,
};
pub use id::{IdSpace, NodeId};
pub use message::{Destination, Directed, Envelope, Outgoing};
pub use metrics::{Metrics, RoundMetrics};
pub use node::{Protocol, Recoverable, RoundContext};
pub use shared::Shared;
pub use sim::{
    AdversaryKind, BoxedAdversary, BuildContext, Harness, NamedAdversary, ProtocolFactory,
    RecoverySection, RunReport, RunStatus, ScenarioBuilder, ScenarioSpec, Simulation,
    StopCondition,
};
pub use stats::{Histogram, RateEstimate, Summary};
pub use stream::{
    CompletedInstance, InstanceSlot, InstanceState, MuxNode, MuxWork, StreamDriver, StreamInstance,
    StreamInstanceReport, StreamSection,
};
pub use sweep::{CrashPlan, ScenarioGrid, SweepCase};
pub use trace::{TraceEvent, TraceLog};
pub use traffic::{RoundTraffic, SentRef, TrafficItem};
pub use vocab::{input_extremes, AdaptiveAdversary, PayloadVocab, VocabAdversary, VocabScene};
pub use wal::{
    RecoveryManager, RestartPolicy, RestartRecord, Snapshotter, Wal, WalConfig, WalFault, WalRecord,
};
