//! Shared, immutable message payloads.
//!
//! The eager engine cloned every payload once per recipient, so one broadcast at
//! `n = 256` cost 256 payload clones (and 256 dedup hashes) before a single node
//! stepped. [`Shared<P>`] is the zero-copy alternative threaded through the whole
//! message plane: a thin reference-counted handle over an immutable payload that
//!
//! * allocates the payload **exactly once** — [`Shared::new`] is the only place a
//!   payload is ever materialised, and it bumps a process-wide counter that tests
//!   assert against ([`Shared::allocations`]);
//! * carries a **cached digest** — the same 64-bit value the engine's dedup set
//!   used to recompute per delivery is now computed once per allocation
//!   ([`Shared::digest`]), so delivering a broadcast to `k` recipients hashes the
//!   payload once, not `k` times;
//! * compares and hashes **by value**, so inboxes, dedup fallbacks and recorded
//!   traces behave exactly as if they stored owned payloads;
//! * is **copy-on-write**: forwarding a handle ([`Clone`]) is a reference-count
//!   bump; only a mutation through [`Shared::modify`] pays a payload clone, and
//!   only when the handle is actually shared.
//!
//! The handle is an [`Arc`] rather than an `Rc` because the engine's opt-in
//! parallel node-step path moves inboxes (and the traffic produced by worker
//! threads) across `std::thread::scope` threads; the atomic reference-count bump
//! is still orders of magnitude cheaper than the deep clones it replaces.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Error, Serialize, Value};

/// Process-wide count of payload allocations (see [`Shared::allocations`]).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of payload deallocations (see [`live_allocations`]).
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The digest the dedup set keys on: identical to hashing the payload through
/// `DefaultHasher` directly, so executions are bit-for-bit identical to the
/// engine that hashed per delivery.
fn digest_of<P: Hash>(value: &P) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The digest a payload *would* carry if wrapped into a [`Shared`] handle —
/// the same `DefaultHasher` stream [`Shared::new`] caches. The WAL replay path
/// uses this to audit re-produced messages against logged `Sent` digests
/// without allocating a handle per replayed message.
pub fn payload_digest<P: Hash>(value: &P) -> u64 {
    digest_of(value)
}

struct SharedInner<P> {
    digest: u64,
    value: P,
}

impl<P> Drop for SharedInner<P> {
    /// Counts the drop of the allocation (the inner value drops when the last
    /// handle goes away), so [`live_allocations`] can report a gauge.
    fn drop(&mut self) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Borrowing-projection support: a source allocation that can lend out a `&P`
/// view of one of its fields. Implemented for tuple allocations, so a handle
/// over `(tag, inner)` can expose a `Shared<Inner>` without cloning `inner` —
/// the stream plane's demux ([`Shared::project_second`]). The projected handle
/// keeps the whole source allocation alive and borrows the field out of it.
///
/// The `Send + Sync` supertraits keep `Shared<P>`'s auto traits intact: a
/// projected handle crosses the same scoped-thread boundaries the owned form
/// does (the engine's parallel step path).
trait ProjectTo<P>: Send + Sync {
    fn projected(&self) -> &P;
}

impl<T, P> ProjectTo<P> for SharedInner<(T, P)>
where
    T: Send + Sync,
    P: Send + Sync,
{
    fn projected(&self) -> &P {
        &self.value.1
    }
}

/// The general projection adapter behind [`Shared::project`]: a source
/// allocation plus a capture-free view function selecting a component of it
/// (e.g. the payload inside an enum variant). One small adapter allocation,
/// never a payload clone — and not a *counted* payload allocation.
struct FieldProjection<P, Q> {
    source: Arc<SharedInner<P>>,
    view: fn(&P) -> &Q,
}

impl<P, Q> ProjectTo<Q> for FieldProjection<P, Q>
where
    P: Send + Sync,
    Q: Send + Sync,
{
    fn projected(&self) -> &Q {
        (self.view)(&self.source.value)
    }
}

/// The two shapes a handle can take: the allocating form, and a borrowing view
/// into another handle's allocation. Projected handles bump neither
/// [`allocations`] nor [`deallocations`] — they are views, not payloads.
enum Repr<P> {
    Owned(Arc<SharedInner<P>>),
    Projected {
        source: Arc<dyn ProjectTo<P>>,
        digest: u64,
    },
}

/// A reference-counted, immutable payload handle (see module docs).
///
/// `Shared<P>` derefs to `P`, compares/hashes by value, and passes through serde
/// transparently, so it can replace `P` in any receive-side position without
/// changing observable behaviour — only the allocation profile.
pub struct Shared<P>(Repr<P>);

impl<P: Hash> Shared<P> {
    /// Wraps a payload, computing its dedup digest once. This is the **only**
    /// constructor — every call is one payload allocation, counted in
    /// [`Shared::allocations`].
    pub fn new(value: P) -> Self {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let digest = digest_of(&value);
        Shared(Repr::Owned(Arc::new(SharedInner { digest, value })))
    }
}

impl<T, P> Shared<(T, P)>
where
    T: Send + Sync + 'static,
    P: Hash + Clone + Send + Sync + 'static,
{
    /// A borrowing view of the tuple's second field: `Shared<(T, P)>` →
    /// `Shared<P>` **without cloning `P` and without a payload allocation**.
    /// The view keeps the tuple allocation alive and pays exactly one hash (the
    /// projected digest — the same `DefaultHasher` stream [`Shared::new`] would
    /// cache for the field), so a demux that used to re-wrap every matching
    /// payload now hands out views whose digests, values and comparisons are
    /// indistinguishable from the re-wrapped originals.
    pub fn project_second(&self) -> Shared<P> {
        match &self.0 {
            Repr::Owned(inner) => Shared(Repr::Projected {
                digest: digest_of(&inner.value.1),
                source: Arc::clone(inner) as Arc<dyn ProjectTo<P>>,
            }),
            // Projecting a projection (a doubly-nested mux) has no single
            // source allocation to borrow from: materialise the field instead.
            Repr::Projected { source, .. } => Shared::new(source.projected().1.clone()),
        }
    }
}

impl<P> Shared<P>
where
    P: Send + Sync + 'static,
{
    /// A borrowing view of any component `view` can reach — the general form
    /// of [`Shared::project_second`], for shapes a tuple projection cannot
    /// express (the payload inside an enum variant, a struct field). `view`
    /// must be a plain capture-free `fn` so the view stays `Send + Sync`, and
    /// it must be total for this handle's value: the demux that calls it has
    /// already matched the variant it projects out of.
    ///
    /// Costs one digest hash and one small (uncounted) adapter allocation —
    /// never a clone of `Q`. On an already-projected handle it falls back to
    /// materialising the component.
    pub fn project<Q>(&self, view: fn(&P) -> &Q) -> Shared<Q>
    where
        Q: Hash + Clone + Send + Sync + 'static,
    {
        match &self.0 {
            Repr::Owned(inner) => Shared(Repr::Projected {
                digest: digest_of(view(&inner.value)),
                source: Arc::new(FieldProjection {
                    source: Arc::clone(inner),
                    view,
                }),
            }),
            Repr::Projected { source, .. } => Shared::new(view(source.projected()).clone()),
        }
    }
}

impl<P> Shared<P> {
    /// The wrapped payload.
    pub fn get(&self) -> &P {
        match &self.0 {
            Repr::Owned(inner) => &inner.value,
            Repr::Projected { source, .. } => source.projected(),
        }
    }

    /// The payload's cached 64-bit digest (computed once, at allocation — or at
    /// projection, for a borrowed view).
    pub fn digest(&self) -> u64 {
        match &self.0 {
            Repr::Owned(inner) => inner.digest,
            Repr::Projected { digest, .. } => *digest,
        }
    }

    /// Whether two handles point at the *same* payload in memory — the
    /// zero-copy witness: a forwarded or fan-out-delivered payload keeps its
    /// pointer, and a projected view aliases the field it was projected from.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        std::ptr::eq(a.get(), b.get())
    }

    /// The payload's address, as an opaque token. Distinct live handles with
    /// equal tokens share one payload in memory; tests use this to prove a
    /// delivery fan-out did not silently re-materialise payloads.
    pub fn token(&self) -> usize {
        self.get() as *const P as usize
    }
}

/// Total payloads allocated by this process so far (monotone counter, bumped by
/// every [`Shared::new`]). Subtract two readings to measure the allocations of a
/// code region — the allocation-counting tests assert a broadcast round costs
/// O(#broadcasts), not O(n · #broadcasts).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total payload allocations already dropped by this process (monotone
/// counter, bumped when the last handle of an allocation goes away).
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Payload allocations currently alive: [`allocations`] minus
/// [`deallocations`]. This is the RSS proxy the soak driver samples per round
/// to detect monotone growth — a leak shows up here long before wall-clock
/// memory measurements would notice it.
pub fn live_allocations() -> u64 {
    allocations().saturating_sub(deallocations())
}

impl<P: Hash + Clone> Shared<P> {
    /// Copy-on-write mutation: applies `mutate` to the payload, cloning it first
    /// **only if** the handle is shared, and recomputes the cached digest. This
    /// is the in-place tamper primitive — the
    /// [`TamperAdversary`](crate::faults::TamperAdversary) combinator edits
    /// relayed traffic through it, so an edited forward pays exactly one clone
    /// while honest forwarding stays a reference-count bump. (The scripted
    /// attacks that fabricate whole payloads go through [`Shared::new`]
    /// instead: one allocation per *distinct* fabrication.)
    pub fn modify(&mut self, mutate: impl FnOnce(&mut P)) {
        match &mut self.0 {
            Repr::Owned(arc) => match Arc::get_mut(arc) {
                Some(inner) => {
                    mutate(&mut inner.value);
                    inner.digest = digest_of(&inner.value);
                }
                None => {
                    let mut value = arc.value.clone();
                    mutate(&mut value);
                    *self = Shared::new(value);
                }
            },
            // A projected view never owns its allocation (the source tuple
            // does): a write materialises the field, exactly like the shared
            // copy-on-write case.
            Repr::Projected { source, .. } => {
                let mut value = source.projected().clone();
                mutate(&mut value);
                *self = Shared::new(value);
            }
        }
    }
}

impl<P> Clone for Shared<P> {
    /// A reference-count bump — never a payload clone.
    fn clone(&self) -> Self {
        Shared(match &self.0 {
            Repr::Owned(inner) => Repr::Owned(Arc::clone(inner)),
            Repr::Projected { source, digest } => Repr::Projected {
                source: Arc::clone(source),
                digest: *digest,
            },
        })
    }
}

impl<P> std::ops::Deref for Shared<P> {
    type Target = P;

    fn deref(&self) -> &P {
        self.get()
    }
}

impl<P> AsRef<P> for Shared<P> {
    fn as_ref(&self) -> &P {
        self.get()
    }
}

impl<P: Hash> From<P> for Shared<P> {
    fn from(value: P) -> Self {
        Shared::new(value)
    }
}

impl<P: fmt::Debug> fmt::Debug for Shared<P> {
    /// Transparent: renders exactly like the wrapped payload, so debug output
    /// recorded in reports is unchanged.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.get().fmt(f)
    }
}

impl<P: PartialEq> PartialEq for Shared<P> {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl<P: Eq> Eq for Shared<P> {}

/// Compare a handle directly against a payload value (`envelope.payload == X`).
impl<P: PartialEq> PartialEq<P> for Shared<P> {
    fn eq(&self, other: &P) -> bool {
        *self.get() == *other
    }
}

impl<P: Hash> Hash for Shared<P> {
    /// By value, consistent with `Eq` (the cached digest is an engine-internal
    /// fast path, not the `Hash` impl).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.get().hash(state);
    }
}

impl<P: Serialize> Serialize for Shared<P> {
    fn to_value(&self) -> Value {
        self.get().to_value()
    }
}

impl<P: Deserialize + Hash> Deserialize for Shared<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        P::from_value(value).map(Shared::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let before = allocations();
        let a = Shared::new(vec![1u32, 2, 3]);
        let b = a.clone();
        assert_eq!(allocations() - before, 1, "one allocation, two handles");
        assert!(Shared::ptr_eq(&a, &b));
        assert_eq!(a.token(), b.token());
        assert_eq!(a, b);
        assert_eq!(*a, vec![1, 2, 3]);
    }

    #[test]
    fn digest_matches_default_hasher() {
        let payload = ("hello", 42u64);
        let shared = Shared::new(payload);
        assert_eq!(shared.digest(), digest_of(&payload));
        // Hash-by-value: a map keyed on Shared behaves like one keyed on P.
        let direct = digest_of(&payload);
        let via_handle = digest_of(&shared);
        assert_eq!(direct, via_handle);
    }

    #[test]
    fn equality_is_by_value_across_allocations() {
        let a = Shared::new(7u64);
        let b = Shared::new(7u64);
        assert_eq!(a, b);
        assert!(!Shared::ptr_eq(&a, &b));
        assert_eq!(a, 7u64, "direct payload comparison");
        assert_ne!(a, Shared::new(8u64));
    }

    #[test]
    fn modify_is_copy_on_write() {
        let before = allocations();
        let mut unique = Shared::new(10u64);
        unique.modify(|v| *v += 1);
        assert_eq!(*unique, 11);
        assert_eq!(
            allocations() - before,
            1,
            "a unique handle mutates in place"
        );
        assert_eq!(
            unique.digest(),
            digest_of(&11u64),
            "digest tracks the value"
        );

        let shared = unique.clone();
        let mut tampered = shared.clone();
        tampered.modify(|v| *v = 99);
        assert_eq!(*shared, 11, "the original is untouched");
        assert_eq!(*tampered, 99);
        assert!(!Shared::ptr_eq(&shared, &tampered));
        assert_eq!(allocations() - before, 2, "only the tamper paid a clone");
    }

    #[test]
    fn serde_passes_through_transparently() {
        let shared = Shared::new(vec![1u64, 2, 3]);
        let value = Serialize::to_value(&shared);
        assert_eq!(value, Serialize::to_value(&vec![1u64, 2, 3]));
        let back: Shared<Vec<u64>> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, shared);
        assert_eq!(back.digest(), shared.digest());
    }

    #[test]
    fn debug_renders_the_payload_only() {
        assert_eq!(format!("{:?}", Shared::new(5u8)), "5");
    }

    #[test]
    fn payload_digest_matches_the_cached_digest() {
        let payload = vec![1u64, 2, 3];
        assert_eq!(payload_digest(&payload), Shared::new(payload).digest());
    }

    #[test]
    fn projection_borrows_without_allocating() {
        let before = allocations();
        let tagged: Shared<(u64, Vec<u32>)> = Shared::new((7, vec![1, 2, 3]));
        let view = tagged.project_second();
        assert_eq!(allocations() - before, 1, "the view is not an allocation");
        // The view aliases the field inside the tuple allocation…
        assert_eq!(view.token(), &tagged.get().1 as *const Vec<u32> as usize);
        assert_eq!(*view, vec![1, 2, 3]);
        // …and its digest is exactly what re-wrapping the field would cache.
        assert_eq!(view.digest(), payload_digest(&vec![1u32, 2, 3]));
        assert_eq!(view.digest(), Shared::new(vec![1u32, 2, 3]).digest());
        // Two views of one source alias each other; a re-wrap does not.
        let sibling = tagged.project_second();
        assert!(Shared::ptr_eq(&view, &sibling));
        assert_eq!(view.token(), sibling.token());
        assert!(!Shared::ptr_eq(&view, &Shared::new(vec![1u32, 2, 3])));
    }

    #[test]
    fn projection_keeps_the_source_allocation_alive() {
        let dropped_before = deallocations();
        let view = {
            let tagged: Shared<(u64, u64)> = Shared::new((1, 42));
            tagged.project_second()
        };
        assert_eq!(*view, 42, "the view outlives the original handle");
        drop(view);
        assert!(
            deallocations() > dropped_before,
            "dropping the last view frees the source allocation"
        );
    }

    #[test]
    fn modifying_a_projection_materialises_a_copy() {
        let tagged: Shared<(u64, u64)> = Shared::new((1, 10));
        let mut view = tagged.project_second();
        view.modify(|v| *v += 5);
        assert_eq!(*view, 15);
        assert_eq!(tagged.get().1, 10, "the source tuple is untouched");
        assert_eq!(view.digest(), payload_digest(&15u64));
    }

    #[test]
    fn general_projection_reaches_into_enum_variants() {
        #[derive(Clone, Debug, PartialEq, Hash)]
        enum Wire {
            Tagged(u64, Vec<u32>),
        }
        let message = Shared::new(Wire::Tagged(3, vec![9, 9, 9]));
        let before = allocations();
        let view: Shared<Vec<u32>> = message.project(|m| {
            let Wire::Tagged(_, inner) = m;
            inner
        });
        assert_eq!(allocations() - before, 0, "a view is not an allocation");
        assert_eq!(*view, vec![9, 9, 9]);
        let Wire::Tagged(_, inner) = message.get();
        assert!(
            std::ptr::eq(view.get(), inner),
            "the view borrows the field"
        );
        assert_eq!(view.digest(), payload_digest(&vec![9u32, 9, 9]));
        assert_eq!(view.digest(), Shared::new(vec![9u32, 9, 9]).digest());
    }

    #[test]
    fn projecting_a_projection_falls_back_to_a_copy() {
        let nested: Shared<(u8, (u64, u64))> = Shared::new((0, (1, 99)));
        let inner = nested.project_second();
        let twice = inner.project_second();
        assert_eq!(*twice, 99);
        assert_eq!(twice.digest(), payload_digest(&99u64));
    }

    #[test]
    fn dropping_the_last_handle_counts_a_deallocation() {
        // Other tests allocate and drop concurrently, so only lower bounds are
        // assertable against the process-global counters.
        let dropped_before = deallocations();
        let handles: Vec<Shared<u64>> = (0..10).map(Shared::new).collect();
        let clones = handles.clone();
        drop(handles);
        drop(clones);
        assert!(
            deallocations() - dropped_before >= 10,
            "the last handles freed the allocations"
        );
        assert!(allocations() >= deallocations() || live_allocations() == 0);
    }

    /// Seeded property sweeps (the workspace's stand-in for proptest): over
    /// hundreds of arbitrary payloads, a `Shared<P>` must be observably
    /// indistinguishable from the `P` it wraps.
    mod properties {
        use super::*;
        use crate::rng::seeded_rng;
        use rand::RngCore;

        /// An arbitrary structured payload: length, content and value range all
        /// drawn from the stream.
        fn arbitrary_payload(rng: &mut impl RngCore) -> Vec<u64> {
            let len = (rng.next_u64() % 9) as usize;
            (0..len).map(|_| rng.next_u64() % 1000).collect()
        }

        #[test]
        fn eq_and_hash_agree_with_the_underlying_value() {
            let mut rng = seeded_rng(0xEC0);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let a = Shared::new(payload.clone());
                let b = Shared::new(payload.clone());
                // Value semantics: equal to the payload, equal across distinct
                // allocations of it, and `Hash` consistent with `Eq` (same
                // `DefaultHasher` stream as hashing the payload directly).
                assert_eq!(a, payload);
                assert_eq!(a, b);
                assert!(!Shared::ptr_eq(&a, &b));
                assert_eq!(digest_of(&a), digest_of(&payload));
                assert_eq!(digest_of(&a), digest_of(&b));
                // A perturbed payload disagrees on eq (and, for a digest this
                // wide, on hash).
                let mut other = payload.clone();
                other.push(31_337);
                assert_ne!(a, Shared::new(other.clone()));
                assert_ne!(digest_of(&a), digest_of(&other));
            }
        }

        #[test]
        fn digest_is_stable_across_clones() {
            let mut rng = seeded_rng(0xD16);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let handle = Shared::new(payload.clone());
                let expected = digest_of(&payload);
                assert_eq!(handle.digest(), expected, "computed once, at allocation");
                let fanned: Vec<Shared<Vec<u64>>> = (0..4).map(|_| handle.clone()).collect();
                for clone in &fanned {
                    assert_eq!(clone.digest(), expected, "clones share the cache");
                    assert!(
                        Shared::ptr_eq(clone, &handle),
                        "…because they share the allocation"
                    );
                }
                drop(handle);
                assert_eq!(fanned[0].digest(), expected, "survives the original handle");
            }
        }

        #[test]
        fn serde_round_trips() {
            let mut rng = seeded_rng(0x5ED);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let handle = Shared::new(payload.clone());
                let value = Serialize::to_value(&handle);
                assert_eq!(
                    value,
                    Serialize::to_value(&payload),
                    "the wire form is the payload's, not a wrapper's"
                );
                let back: Shared<Vec<u64>> = Deserialize::from_value(&value).unwrap();
                assert_eq!(back, handle);
                assert_eq!(
                    back.digest(),
                    handle.digest(),
                    "the digest is recomputed identically"
                );
            }
        }

        #[test]
        fn modify_on_a_uniquely_owned_handle_does_not_allocate() {
            let mut rng = seeded_rng(0xA110C);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let mut handle = Shared::new(payload.clone());
                // The allocation's address is the witness: an in-place mutation
                // keeps it, a copy-on-write (or any re-materialisation) changes
                // it. Unlike the process-wide counter, the token cannot be
                // perturbed by concurrently running tests.
                let token = handle.token();
                handle.modify(|v| v.push(7));
                assert_eq!(handle.token(), token, "uniquely owned ⇒ mutated in place");
                let mut expected = payload.clone();
                expected.push(7);
                assert_eq!(handle, expected);
                assert_eq!(
                    handle.digest(),
                    digest_of(&expected),
                    "digest tracks the mutation"
                );
                // The moment the handle is shared, the same call pays exactly
                // one clone instead (and leaves the sibling untouched).
                let sibling = handle.clone();
                handle.modify(|v| v.push(8));
                assert_ne!(handle.token(), sibling.token(), "shared ⇒ copy-on-write");
                assert_eq!(sibling, expected, "the sibling keeps the old value");
            }
        }
    }
}
