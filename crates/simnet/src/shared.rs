//! Shared, immutable message payloads.
//!
//! The eager engine cloned every payload once per recipient, so one broadcast at
//! `n = 256` cost 256 payload clones (and 256 dedup hashes) before a single node
//! stepped. [`Shared<P>`] is the zero-copy alternative threaded through the whole
//! message plane: a thin reference-counted handle over an immutable payload that
//!
//! * allocates the payload **exactly once** — [`Shared::new`] is the only place a
//!   payload is ever materialised, and it bumps a process-wide counter that tests
//!   assert against ([`Shared::allocations`]);
//! * carries a **cached digest** — the same 64-bit value the engine's dedup set
//!   used to recompute per delivery is now computed once per allocation
//!   ([`Shared::digest`]), so delivering a broadcast to `k` recipients hashes the
//!   payload once, not `k` times;
//! * compares and hashes **by value**, so inboxes, dedup fallbacks and recorded
//!   traces behave exactly as if they stored owned payloads;
//! * is **copy-on-write**: forwarding a handle ([`Clone`]) is a reference-count
//!   bump; only a mutation through [`Shared::modify`] pays a payload clone, and
//!   only when the handle is actually shared.
//!
//! The handle is an [`Arc`] rather than an `Rc` because the engine's opt-in
//! parallel node-step path moves inboxes (and the traffic produced by worker
//! threads) across `std::thread::scope` threads; the atomic reference-count bump
//! is still orders of magnitude cheaper than the deep clones it replaces.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Error, Serialize, Value};

/// Process-wide count of payload allocations (see [`Shared::allocations`]).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of payload deallocations (see [`live_allocations`]).
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The digest the dedup set keys on: identical to hashing the payload through
/// `DefaultHasher` directly, so executions are bit-for-bit identical to the
/// engine that hashed per delivery.
fn digest_of<P: Hash>(value: &P) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The digest a payload *would* carry if wrapped into a [`Shared`] handle —
/// the same `DefaultHasher` stream [`Shared::new`] caches. The WAL replay path
/// uses this to audit re-produced messages against logged `Sent` digests
/// without allocating a handle per replayed message.
pub fn payload_digest<P: Hash>(value: &P) -> u64 {
    digest_of(value)
}

struct SharedInner<P> {
    digest: u64,
    value: P,
}

impl<P> Drop for SharedInner<P> {
    /// Counts the drop of the allocation (the inner value drops when the last
    /// handle goes away), so [`live_allocations`] can report a gauge.
    fn drop(&mut self) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A reference-counted, immutable payload handle (see module docs).
///
/// `Shared<P>` derefs to `P`, compares/hashes by value, and passes through serde
/// transparently, so it can replace `P` in any receive-side position without
/// changing observable behaviour — only the allocation profile.
pub struct Shared<P>(Arc<SharedInner<P>>);

impl<P: Hash> Shared<P> {
    /// Wraps a payload, computing its dedup digest once. This is the **only**
    /// constructor — every call is one payload allocation, counted in
    /// [`Shared::allocations`].
    pub fn new(value: P) -> Self {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let digest = digest_of(&value);
        Shared(Arc::new(SharedInner { digest, value }))
    }
}

impl<P> Shared<P> {
    /// The wrapped payload.
    pub fn get(&self) -> &P {
        &self.0.value
    }

    /// The payload's cached 64-bit digest (computed once, at allocation).
    pub fn digest(&self) -> u64 {
        self.0.digest
    }

    /// Whether two handles point at the *same* allocation — the zero-copy
    /// witness: a forwarded or fan-out-delivered payload keeps its pointer.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// The allocation's address, as an opaque token. Distinct live handles with
    /// equal tokens share one allocation; tests use this to prove a delivery
    /// fan-out did not silently re-materialise payloads.
    pub fn token(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

/// Total payloads allocated by this process so far (monotone counter, bumped by
/// every [`Shared::new`]). Subtract two readings to measure the allocations of a
/// code region — the allocation-counting tests assert a broadcast round costs
/// O(#broadcasts), not O(n · #broadcasts).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total payload allocations already dropped by this process (monotone
/// counter, bumped when the last handle of an allocation goes away).
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Payload allocations currently alive: [`allocations`] minus
/// [`deallocations`]. This is the RSS proxy the soak driver samples per round
/// to detect monotone growth — a leak shows up here long before wall-clock
/// memory measurements would notice it.
pub fn live_allocations() -> u64 {
    allocations().saturating_sub(deallocations())
}

impl<P: Hash + Clone> Shared<P> {
    /// Copy-on-write mutation: applies `mutate` to the payload, cloning it first
    /// **only if** the handle is shared, and recomputes the cached digest. This
    /// is the in-place tamper primitive — the
    /// [`TamperAdversary`](crate::faults::TamperAdversary) combinator edits
    /// relayed traffic through it, so an edited forward pays exactly one clone
    /// while honest forwarding stays a reference-count bump. (The scripted
    /// attacks that fabricate whole payloads go through [`Shared::new`]
    /// instead: one allocation per *distinct* fabrication.)
    pub fn modify(&mut self, mutate: impl FnOnce(&mut P)) {
        match Arc::get_mut(&mut self.0) {
            Some(inner) => {
                mutate(&mut inner.value);
                inner.digest = digest_of(&inner.value);
            }
            None => {
                let mut value = self.0.value.clone();
                mutate(&mut value);
                *self = Shared::new(value);
            }
        }
    }
}

impl<P> Clone for Shared<P> {
    /// A reference-count bump — never a payload clone.
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<P> std::ops::Deref for Shared<P> {
    type Target = P;

    fn deref(&self) -> &P {
        &self.0.value
    }
}

impl<P> AsRef<P> for Shared<P> {
    fn as_ref(&self) -> &P {
        &self.0.value
    }
}

impl<P: Hash> From<P> for Shared<P> {
    fn from(value: P) -> Self {
        Shared::new(value)
    }
}

impl<P: fmt::Debug> fmt::Debug for Shared<P> {
    /// Transparent: renders exactly like the wrapped payload, so debug output
    /// recorded in reports is unchanged.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<P: PartialEq> PartialEq for Shared<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.value == other.0.value
    }
}

impl<P: Eq> Eq for Shared<P> {}

/// Compare a handle directly against a payload value (`envelope.payload == X`).
impl<P: PartialEq> PartialEq<P> for Shared<P> {
    fn eq(&self, other: &P) -> bool {
        self.0.value == *other
    }
}

impl<P: Hash> Hash for Shared<P> {
    /// By value, consistent with `Eq` (the cached digest is an engine-internal
    /// fast path, not the `Hash` impl).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.value.hash(state);
    }
}

impl<P: Serialize> Serialize for Shared<P> {
    fn to_value(&self) -> Value {
        self.0.value.to_value()
    }
}

impl<P: Deserialize + Hash> Deserialize for Shared<P> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        P::from_value(value).map(Shared::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let before = allocations();
        let a = Shared::new(vec![1u32, 2, 3]);
        let b = a.clone();
        assert_eq!(allocations() - before, 1, "one allocation, two handles");
        assert!(Shared::ptr_eq(&a, &b));
        assert_eq!(a.token(), b.token());
        assert_eq!(a, b);
        assert_eq!(*a, vec![1, 2, 3]);
    }

    #[test]
    fn digest_matches_default_hasher() {
        let payload = ("hello", 42u64);
        let shared = Shared::new(payload);
        assert_eq!(shared.digest(), digest_of(&payload));
        // Hash-by-value: a map keyed on Shared behaves like one keyed on P.
        let direct = digest_of(&payload);
        let via_handle = digest_of(&shared);
        assert_eq!(direct, via_handle);
    }

    #[test]
    fn equality_is_by_value_across_allocations() {
        let a = Shared::new(7u64);
        let b = Shared::new(7u64);
        assert_eq!(a, b);
        assert!(!Shared::ptr_eq(&a, &b));
        assert_eq!(a, 7u64, "direct payload comparison");
        assert_ne!(a, Shared::new(8u64));
    }

    #[test]
    fn modify_is_copy_on_write() {
        let before = allocations();
        let mut unique = Shared::new(10u64);
        unique.modify(|v| *v += 1);
        assert_eq!(*unique, 11);
        assert_eq!(
            allocations() - before,
            1,
            "a unique handle mutates in place"
        );
        assert_eq!(
            unique.digest(),
            digest_of(&11u64),
            "digest tracks the value"
        );

        let shared = unique.clone();
        let mut tampered = shared.clone();
        tampered.modify(|v| *v = 99);
        assert_eq!(*shared, 11, "the original is untouched");
        assert_eq!(*tampered, 99);
        assert!(!Shared::ptr_eq(&shared, &tampered));
        assert_eq!(allocations() - before, 2, "only the tamper paid a clone");
    }

    #[test]
    fn serde_passes_through_transparently() {
        let shared = Shared::new(vec![1u64, 2, 3]);
        let value = Serialize::to_value(&shared);
        assert_eq!(value, Serialize::to_value(&vec![1u64, 2, 3]));
        let back: Shared<Vec<u64>> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, shared);
        assert_eq!(back.digest(), shared.digest());
    }

    #[test]
    fn debug_renders_the_payload_only() {
        assert_eq!(format!("{:?}", Shared::new(5u8)), "5");
    }

    #[test]
    fn payload_digest_matches_the_cached_digest() {
        let payload = vec![1u64, 2, 3];
        assert_eq!(payload_digest(&payload), Shared::new(payload).digest());
    }

    #[test]
    fn dropping_the_last_handle_counts_a_deallocation() {
        // Other tests allocate and drop concurrently, so only lower bounds are
        // assertable against the process-global counters.
        let dropped_before = deallocations();
        let handles: Vec<Shared<u64>> = (0..10).map(Shared::new).collect();
        let clones = handles.clone();
        drop(handles);
        drop(clones);
        assert!(
            deallocations() - dropped_before >= 10,
            "the last handles freed the allocations"
        );
        assert!(allocations() >= deallocations() || live_allocations() == 0);
    }

    /// Seeded property sweeps (the workspace's stand-in for proptest): over
    /// hundreds of arbitrary payloads, a `Shared<P>` must be observably
    /// indistinguishable from the `P` it wraps.
    mod properties {
        use super::*;
        use crate::rng::seeded_rng;
        use rand::RngCore;

        /// An arbitrary structured payload: length, content and value range all
        /// drawn from the stream.
        fn arbitrary_payload(rng: &mut impl RngCore) -> Vec<u64> {
            let len = (rng.next_u64() % 9) as usize;
            (0..len).map(|_| rng.next_u64() % 1000).collect()
        }

        #[test]
        fn eq_and_hash_agree_with_the_underlying_value() {
            let mut rng = seeded_rng(0xEC0);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let a = Shared::new(payload.clone());
                let b = Shared::new(payload.clone());
                // Value semantics: equal to the payload, equal across distinct
                // allocations of it, and `Hash` consistent with `Eq` (same
                // `DefaultHasher` stream as hashing the payload directly).
                assert_eq!(a, payload);
                assert_eq!(a, b);
                assert!(!Shared::ptr_eq(&a, &b));
                assert_eq!(digest_of(&a), digest_of(&payload));
                assert_eq!(digest_of(&a), digest_of(&b));
                // A perturbed payload disagrees on eq (and, for a digest this
                // wide, on hash).
                let mut other = payload.clone();
                other.push(31_337);
                assert_ne!(a, Shared::new(other.clone()));
                assert_ne!(digest_of(&a), digest_of(&other));
            }
        }

        #[test]
        fn digest_is_stable_across_clones() {
            let mut rng = seeded_rng(0xD16);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let handle = Shared::new(payload.clone());
                let expected = digest_of(&payload);
                assert_eq!(handle.digest(), expected, "computed once, at allocation");
                let fanned: Vec<Shared<Vec<u64>>> = (0..4).map(|_| handle.clone()).collect();
                for clone in &fanned {
                    assert_eq!(clone.digest(), expected, "clones share the cache");
                    assert!(
                        Shared::ptr_eq(clone, &handle),
                        "…because they share the allocation"
                    );
                }
                drop(handle);
                assert_eq!(fanned[0].digest(), expected, "survives the original handle");
            }
        }

        #[test]
        fn serde_round_trips() {
            let mut rng = seeded_rng(0x5ED);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let handle = Shared::new(payload.clone());
                let value = Serialize::to_value(&handle);
                assert_eq!(
                    value,
                    Serialize::to_value(&payload),
                    "the wire form is the payload's, not a wrapper's"
                );
                let back: Shared<Vec<u64>> = Deserialize::from_value(&value).unwrap();
                assert_eq!(back, handle);
                assert_eq!(
                    back.digest(),
                    handle.digest(),
                    "the digest is recomputed identically"
                );
            }
        }

        #[test]
        fn modify_on_a_uniquely_owned_handle_does_not_allocate() {
            let mut rng = seeded_rng(0xA110C);
            for _ in 0..256 {
                let payload = arbitrary_payload(&mut rng);
                let mut handle = Shared::new(payload.clone());
                // The allocation's address is the witness: an in-place mutation
                // keeps it, a copy-on-write (or any re-materialisation) changes
                // it. Unlike the process-wide counter, the token cannot be
                // perturbed by concurrently running tests.
                let token = handle.token();
                handle.modify(|v| v.push(7));
                assert_eq!(handle.token(), token, "uniquely owned ⇒ mutated in place");
                let mut expected = payload.clone();
                expected.push(7);
                assert_eq!(handle, expected);
                assert_eq!(
                    handle.digest(),
                    digest_of(&expected),
                    "digest tracks the mutation"
                );
                // The moment the handle is shared, the same call pays exactly
                // one clone instead (and leaves the sibling untouched).
                let sibling = handle.clone();
                handle.modify(|v| v.push(8));
                assert_ne!(handle.token(), sibling.token(), "shared ⇒ copy-on-write");
                assert_eq!(sibling, expected, "the sibling keeps the old value");
            }
        }
    }
}
