//! Crash-recovery: a write-ahead log with durable-suffix semantics, injectable
//! log faults, and the [`RecoveryManager`] both engines drive it through.
//!
//! Every protocol-visible event of a correct node's round is logged *before* it
//! becomes visible to the network: the inbox it consumed ([`WalRecord::Consumed`]),
//! the digests of the messages it produced ([`WalRecord::Sent`]) and the round
//! commit marker ([`WalRecord::Committed`]). The log is in-memory but models
//! durable storage faithfully:
//!
//! * an **fsync watermark** separates the durable prefix from the volatile
//!   suffix ([`Wal::fsync`] advances it; [`WalConfig::sync_every`] sets the
//!   commit cadence — the default of 1 syncs every round, so a crash loses
//!   nothing);
//! * every record carries a **checksum** sealed at append time; replay verifies
//!   the chain sequentially and truncates at the first mismatch, exactly as a
//!   real log does on a torn or corrupted tail;
//! * [`WalFault`]s injected at restart damage only the unsynced suffix —
//!   [`WalFault::TornTail`] mangles the last unsynced record,
//!   [`WalFault::LoseUnsynced`] drops the whole suffix, and
//!   [`WalFault::Corrupt`] mangles the first unsynced record so the replay
//!   truncates everything from there.
//!
//! Replay ([`Wal::replay`]) groups the valid record prefix into committed
//! rounds; uncommitted trailing records are dropped (a crash mid-round never
//! happened, as far as the recovered node is concerned). The
//! [`RecoveryManager`] then re-steps the node's base snapshot through every
//! replayed round and compares the digests it re-produces against the durable
//! `Sent` records — a mismatch is a **cross-restart equivocation witness**,
//! surfaced per restart in a [`RestartRecord`] and checked by the
//! `recovery/*` oracles in `uba-checker`.

use std::collections::HashMap;
use std::hash::Hasher;

use serde::{Deserialize, Serialize};

use crate::engine::FastHasher;
use crate::error::SimError;
use crate::id::NodeId;
use crate::message::Envelope;
use crate::node::{Protocol, RoundContext};
use crate::shared::{payload_digest, Shared};

/// An injectable fault applied to a log at restart. Faults only ever damage
/// the *unsynced* suffix — the durable prefix of a write-ahead log survives any
/// crash by definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WalFault {
    /// The last unsynced record was torn mid-write: its checksum no longer
    /// matches, so replay drops that one record (and the round it belonged to).
    TornTail,
    /// The entire unsynced suffix never reached the disk.
    LoseUnsynced,
    /// The first unsynced record is corrupt; the sequential checksum chain
    /// truncates the whole suffix from there.
    Corrupt,
}

/// How a crashed node's log is treated when it restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// The log is intact: replay everything durable.
    Clean,
    /// Apply the given fault to the log before replaying.
    Fault(WalFault),
}

/// Durability knobs for the write-ahead logs managed by a [`RecoveryManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Fsync after every `sync_every`-th round commit. The default of 1 syncs
    /// every round, which makes every [`WalFault`] a no-op; fault-injection
    /// tests raise it to open an unsynced suffix.
    pub sync_every: u64,
    /// Once a fully durable log holds at least this many records, the round
    /// commit replaces it with a fresh snapshot base — bounding log growth on
    /// long-horizon (soak) runs.
    pub compact_after: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync_every: 1,
            compact_after: 1024,
        }
    }
}

/// One protocol-visible event in a node's write-ahead log.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord<P> {
    /// An inbox message consumed at the start of a round (the payload handle is
    /// shared with the live delivery — logging is allocation-free).
    Consumed {
        /// The round that consumed the message.
        round: u64,
        /// The authenticated sender.
        from: NodeId,
        /// The consumed payload (a shared handle, not a copy).
        payload: Shared<P>,
    },
    /// The digest of one message produced in a round, in production order.
    Sent {
        /// The producing round.
        round: u64,
        /// The payload's 64-bit dedup digest.
        digest: u64,
    },
    /// The round completed; everything logged for it is now replayable.
    Committed {
        /// The committed round.
        round: u64,
    },
}

impl<P> WalRecord<P> {
    /// The round the record belongs to.
    pub fn round(&self) -> u64 {
        match *self {
            WalRecord::Consumed { round, .. }
            | WalRecord::Sent { round, .. }
            | WalRecord::Committed { round } => round,
        }
    }
}

/// A record plus the checksum sealed over it at append time.
#[derive(Clone, Debug)]
struct SealedRecord<P> {
    record: WalRecord<P>,
    checksum: u64,
}

/// The checksum replay verifies: a fast deterministic hash over the record's
/// variant tag and fields (payloads contribute their cached digest, so sealing
/// never re-hashes payload bytes).
fn seal_checksum<P>(record: &WalRecord<P>) -> u64 {
    let mut hasher = FastHasher::default();
    match record {
        WalRecord::Consumed {
            round,
            from,
            payload,
        } => {
            hasher.write_u64(1);
            hasher.write_u64(*round);
            hasher.write_u64(from.raw());
            hasher.write_u64(payload.digest());
        }
        WalRecord::Sent { round, digest } => {
            hasher.write_u64(2);
            hasher.write_u64(*round);
            hasher.write_u64(*digest);
        }
        WalRecord::Committed { round } => {
            hasher.write_u64(3);
            hasher.write_u64(*round);
        }
    }
    hasher.finish()
}

/// One node's write-ahead log (see module docs).
#[derive(Debug)]
pub struct Wal<P> {
    records: Vec<SealedRecord<P>>,
    /// Fsync watermark: `records[..durable]` survive any crash.
    durable: usize,
    /// Rounds already folded into the base snapshot; replay resumes after it.
    base_round: u64,
    /// The round currently being logged (between `begin_round` and `commit`).
    open_round: Option<u64>,
    commits_since_sync: u64,
    config: WalConfig,
}

impl<P> Wal<P> {
    /// An empty log whose base snapshot covers everything up to and including
    /// `base_round`.
    pub fn new(base_round: u64, config: WalConfig) -> Self {
        Wal {
            records: Vec::new(),
            durable: 0,
            base_round,
            open_round: None,
            commits_since_sync: 0,
            config,
        }
    }

    /// The round covered by the base snapshot.
    pub fn base_round(&self) -> u64 {
        self.base_round
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records below the fsync watermark.
    pub fn durable_len(&self) -> usize {
        self.durable
    }

    /// The round currently being logged, if a step is in progress.
    pub fn open_round(&self) -> Option<u64> {
        self.open_round
    }

    fn append(&mut self, record: WalRecord<P>) {
        let checksum = seal_checksum(&record);
        self.records.push(SealedRecord { record, checksum });
    }

    /// Opens a round for logging: subsequent `log_consumed` / `log_sent` calls
    /// belong to it until `commit`.
    pub fn begin_round(&mut self, round: u64) {
        self.open_round = Some(round);
    }

    /// Logs one consumed inbox message (write-ahead: called before the node
    /// steps). The handle is cloned, never the payload.
    pub fn log_consumed(&mut self, round: u64, from: NodeId, payload: Shared<P>) {
        self.append(WalRecord::Consumed {
            round,
            from,
            payload,
        });
    }

    /// Logs the digest of one produced message, in production order.
    pub fn log_sent(&mut self, round: u64, digest: u64) {
        self.append(WalRecord::Sent { round, digest });
    }

    /// Commits the open round (if any) and fsyncs per the configured cadence.
    /// Returns whether a round was actually committed.
    pub fn commit_open(&mut self) -> bool {
        let Some(round) = self.open_round.take() else {
            return false;
        };
        self.append(WalRecord::Committed { round });
        self.commits_since_sync += 1;
        if self.commits_since_sync >= self.config.sync_every {
            self.fsync();
        }
        true
    }

    /// Advances the fsync watermark over every record appended so far.
    pub fn fsync(&mut self) {
        self.durable = self.records.len();
        self.commits_since_sync = 0;
    }

    /// Whether every record is below the fsync watermark.
    pub fn is_fully_durable(&self) -> bool {
        self.durable == self.records.len()
    }

    /// Replaces the log with an empty one whose base snapshot covers
    /// `base_round` — the compaction step after a snapshot was taken.
    pub fn compact(&mut self, base_round: u64) {
        self.records.clear();
        self.durable = 0;
        self.base_round = base_round;
        self.open_round = None;
        self.commits_since_sync = 0;
    }

    /// Drops every record above the fsync watermark (the crash semantics of
    /// volatile buffers; also the effect of [`WalFault::LoseUnsynced`]).
    pub fn truncate_to_durable(&mut self) {
        self.records.truncate(self.durable);
        self.open_round = None;
    }

    /// Applies an injectable fault to the unsynced suffix (see [`WalFault`]).
    /// A fully durable log is immune to every fault.
    pub fn apply_fault(&mut self, fault: WalFault) {
        if self.is_fully_durable() {
            return;
        }
        match fault {
            WalFault::TornTail => {
                if let Some(sealed) = self.records.last_mut() {
                    sealed.checksum ^= 0xDEAD_BEEF_DEAD_BEEF;
                }
            }
            WalFault::LoseUnsynced => self.truncate_to_durable(),
            WalFault::Corrupt => {
                let first_unsynced = self.durable;
                if let Some(sealed) = self.records.get_mut(first_unsynced) {
                    sealed.checksum ^= 0x0BAD_C0DE_0BAD_C0DE;
                }
            }
        }
    }

    /// Replays the log: verifies the checksum chain, truncates at the first
    /// mismatch, groups the valid prefix into committed rounds and drops any
    /// uncommitted tail.
    pub fn replay(&self) -> ReplayLog<P> {
        let mut rounds: Vec<ReplayRound<P>> = Vec::new();
        let mut pending: Option<ReplayRound<P>> = None;
        let mut pending_records = 0usize;
        let mut valid = 0usize;
        for sealed in &self.records {
            if seal_checksum(&sealed.record) != sealed.checksum {
                break;
            }
            valid += 1;
            match &sealed.record {
                WalRecord::Consumed {
                    round,
                    from,
                    payload,
                } => {
                    pending_records += 1;
                    pending
                        .get_or_insert_with(|| ReplayRound::empty(*round))
                        .inbox
                        .push(Envelope {
                            from: *from,
                            payload: payload.clone(),
                        });
                }
                WalRecord::Sent { round, digest } => {
                    pending_records += 1;
                    pending
                        .get_or_insert_with(|| ReplayRound::empty(*round))
                        .sent
                        .push(*digest);
                }
                WalRecord::Committed { round } => {
                    let round_entry = pending.take().unwrap_or_else(|| ReplayRound::empty(*round));
                    rounds.push(round_entry);
                    pending_records = 0;
                }
            }
        }
        // Checksum-invalid records and the uncommitted tail never happened.
        let dropped_records = (self.records.len() - valid) + pending_records;
        let consumed_monotone = rounds
            .iter()
            .zip(std::iter::once(self.base_round).chain(rounds.iter().map(|r| r.round)))
            .all(|(next, previous)| next.round > previous);
        ReplayLog {
            base_round: self.base_round,
            rounds,
            dropped_records,
            consumed_monotone,
        }
    }
}

/// One committed round reconstructed from the log.
#[derive(Clone, Debug)]
pub struct ReplayRound<P> {
    /// The round number the node executed.
    pub round: u64,
    /// The inbox it consumed, in delivery order.
    pub inbox: Vec<Envelope<P>>,
    /// The digests of the messages it produced, in production order.
    pub sent: Vec<u64>,
}

impl<P> ReplayRound<P> {
    fn empty(round: u64) -> Self {
        ReplayRound {
            round,
            inbox: Vec::new(),
            sent: Vec::new(),
        }
    }
}

/// The result of replaying a [`Wal`] (see [`Wal::replay`]).
#[derive(Clone, Debug)]
pub struct ReplayLog<P> {
    /// The round the base snapshot covers; replay resumes at the next round.
    pub base_round: u64,
    /// The committed rounds, in log order.
    pub rounds: Vec<ReplayRound<P>>,
    /// Records dropped by checksum truncation or as an uncommitted tail.
    pub dropped_records: usize,
    /// Whether the committed round numbers are strictly increasing starting
    /// above the base — the no-double-consumed-input witness.
    pub consumed_monotone: bool,
}

/// The per-restart recovery audit, recorded by the [`RecoveryManager`] and
/// surfaced through the run report for the `recovery/*` oracles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartRecord {
    /// The restarting node.
    pub node: NodeId,
    /// The round before which the node crashed.
    pub crash_round: u64,
    /// The round before which it restarted.
    pub restart_round: u64,
    /// The log policy applied at restart.
    pub policy: RestartPolicy,
    /// Committed rounds present in the replayed log.
    pub recovered_rounds: u64,
    /// Rounds actually re-stepped during recovery (equals `recovered_rounds`
    /// unless replay was cut short — the state-prefix oracle's check).
    pub replayed_rounds: u64,
    /// Replayed rounds whose re-produced message digests differ from the
    /// durable `Sent` records — cross-restart equivocation witnesses.
    pub send_conflicts: u64,
    /// Records dropped by checksum truncation or as an uncommitted tail.
    pub dropped_records: u64,
    /// Whether the replayed rounds were strictly increasing (no input batch
    /// consumed twice).
    pub consumed_monotone: bool,
}

/// Test-only, process-global fault-injection toggles for the recovery path.
pub mod mutation {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// When set, WAL replay skips re-stepping any round that holds durable
    /// `Sent` records — the injected bug the cross-restart equivocation oracle
    /// must catch (the recovered node "forgets" it already sent, and the
    /// skipped state transitions desynchronise it from its own log).
    pub static SKIP_SENT_REPLAY: AtomicBool = AtomicBool::new(false);

    /// Reads [`SKIP_SENT_REPLAY`].
    pub fn skip_sent_replay() -> bool {
        SKIP_SENT_REPLAY.load(Ordering::Relaxed)
    }

    /// Sets [`SKIP_SENT_REPLAY`].
    pub fn set_skip_sent_replay(enabled: bool) {
        SKIP_SENT_REPLAY.store(enabled, Ordering::Relaxed)
    }
}

/// The snapshot constructor the recovery subsystem uses to clone a node's
/// protocol state (for a [`Recoverable`](crate::node::Recoverable) node:
/// `Box::new(|node| node.snapshot())`).
pub type Snapshotter<N> = Box<dyn Fn(&N) -> N>;

/// The engine-side recovery subsystem: one [`Wal`] and one base snapshot per
/// logged node, the crashed-node parking lot, and the restart/replay path.
/// Both [`SyncEngine`](crate::SyncEngine) and
/// [`EventEngine`](crate::EventEngine) drive it through the same three hooks —
/// `begin_step` (before a node consumes its inbox), `log_sent` (per produced
/// traffic item) and `commit_step` (after the round, before the adversary
/// observes the traffic: a send becomes network-visible only once durable).
pub struct RecoveryManager<N: Protocol> {
    snapshot: Snapshotter<N>,
    config: WalConfig,
    wals: HashMap<NodeId, Wal<N::Payload>>,
    bases: HashMap<NodeId, N>,
    /// Crashed correct nodes: id → crash round.
    crashed: HashMap<NodeId, u64>,
    /// Crashed Byzantine identities (no state to recover — the adversary is).
    crashed_byzantine: Vec<NodeId>,
    restarts: Vec<RestartRecord>,
}

impl<N: Protocol> RecoveryManager<N> {
    /// Creates a manager with the default [`WalConfig`]. `snapshot` clones a
    /// node's protocol state (see `Recoverable::snapshot`).
    pub fn new(snapshot: Snapshotter<N>) -> Self {
        Self::with_config(snapshot, WalConfig::default())
    }

    /// Creates a manager with an explicit log configuration.
    pub fn with_config(snapshot: Snapshotter<N>, config: WalConfig) -> Self {
        RecoveryManager {
            snapshot,
            config,
            wals: HashMap::new(),
            bases: HashMap::new(),
            crashed: HashMap::new(),
            crashed_byzantine: Vec::new(),
            restarts: Vec::new(),
        }
    }

    fn ensure_logged(&mut self, node: &N, round: u64) {
        let id = node.id();
        if !self.wals.contains_key(&id) {
            self.bases.insert(id, (self.snapshot)(node));
            self.wals
                .insert(id, Wal::new(round.saturating_sub(1), self.config));
        }
    }

    /// Pre-step hook: snapshots the node on its first logged step, opens the
    /// round and logs the inbox about to be consumed.
    pub fn begin_step(&mut self, node: &N, round: u64, inbox: &[Envelope<N::Payload>]) {
        self.ensure_logged(node, round);
        let wal = self
            .wals
            .get_mut(&node.id())
            .expect("ensure_logged inserted the log");
        wal.begin_round(round);
        for envelope in inbox {
            wal.log_consumed(round, envelope.from, envelope.payload.clone());
        }
    }

    /// Per-traffic-item hook: logs one produced message digest against the
    /// sender's open round. Senders without a log (Byzantine identities,
    /// terminated nodes) are skipped.
    pub fn log_sent(&mut self, id: NodeId, digest: u64) {
        if let Some(wal) = self.wals.get_mut(&id) {
            if let Some(round) = wal.open_round() {
                wal.log_sent(round, digest);
            }
        }
    }

    /// Post-step hook: commits the node's open round (fsyncing per cadence)
    /// and compacts a fully durable, oversized log onto a fresh snapshot.
    pub fn commit_step(&mut self, node: &N) {
        let id = node.id();
        let Some(wal) = self.wals.get_mut(&id) else {
            return;
        };
        let Some(round) = wal.open_round() else {
            return;
        };
        wal.commit_open();
        if wal.is_fully_durable() && wal.len() >= self.config.compact_after {
            let base = (self.snapshot)(node);
            wal.compact(round);
            self.bases.insert(id, base);
        }
    }

    /// Crashes a correct node: its volatile state (the passed value) is
    /// dropped; only the base snapshot and the durable-semantics log survive.
    pub fn crash(&mut self, node: N, round: u64) {
        self.ensure_logged(&node, round);
        self.crashed.insert(node.id(), round);
    }

    /// Records a crashed Byzantine identity (nothing to recover — only the
    /// membership bookkeeping needs to remember it for the restart).
    pub fn crash_byzantine(&mut self, id: NodeId) {
        if !self.crashed_byzantine.contains(&id) {
            self.crashed_byzantine.push(id);
        }
    }

    /// Takes a crashed Byzantine identity, returning whether it was one.
    pub fn take_crashed_byzantine(&mut self, id: NodeId) -> bool {
        let Some(index) = self.crashed_byzantine.iter().position(|&b| b == id) else {
            return false;
        };
        self.crashed_byzantine.remove(index);
        true
    }

    /// Whether `id` is currently parked as a crashed node (of either kind).
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed.contains_key(&id) || self.crashed_byzantine.contains(&id)
    }

    /// Restarts a crashed correct node: applies the restart policy's fault,
    /// replays the log over the base snapshot (re-stepping every committed
    /// round and auditing the re-produced sends against the durable records),
    /// installs a compacted log whose base is the recovered state, and returns
    /// the node for re-admission through the engine's membership path.
    pub fn restart(
        &mut self,
        id: NodeId,
        policy: RestartPolicy,
        round: u64,
    ) -> Result<N, SimError> {
        let crash_round = self.crashed.remove(&id).ok_or(SimError::UnknownNode(id))?;
        let wal = self.wals.get_mut(&id).ok_or(SimError::UnknownNode(id))?;
        if let RestartPolicy::Fault(fault) = policy {
            wal.apply_fault(fault);
        }
        let log = wal.replay();
        let mut node = self.bases.remove(&id).ok_or(SimError::UnknownNode(id))?;
        let mut replayed_rounds = 0u64;
        let mut send_conflicts = 0u64;
        for replay_round in &log.rounds {
            let produced: Vec<u64> =
                if mutation::skip_sent_replay() && !replay_round.sent.is_empty() {
                    Vec::new()
                } else {
                    replayed_rounds += 1;
                    let ctx = RoundContext::new(replay_round.round);
                    node.step(&ctx, &replay_round.inbox)
                        .into_iter()
                        .map(|message| payload_digest(&message.payload))
                        .collect()
                };
            if produced != replay_round.sent {
                send_conflicts += 1;
            }
        }
        self.restarts.push(RestartRecord {
            node: id,
            crash_round,
            restart_round: round,
            policy,
            recovered_rounds: log.rounds.len() as u64,
            replayed_rounds,
            send_conflicts,
            dropped_records: log.dropped_records as u64,
            consumed_monotone: log.consumed_monotone,
        });
        // The recovered state becomes the new base; the old log is spent.
        let new_base_round = log.rounds.last().map_or(log.base_round, |r| r.round);
        self.bases.insert(id, (self.snapshot)(&node));
        self.wals.insert(id, Wal::new(new_base_round, self.config));
        Ok(node)
    }

    /// Every restart performed so far, in application order.
    pub fn restarts(&self) -> &[RestartRecord] {
        &self.restarts
    }

    /// Total records across all live logs — the WAL component of the soak
    /// driver's memory proxy.
    pub fn wal_entries(&self) -> usize {
        self.wals.values().map(Wal::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Outgoing;

    fn consumed(wal: &mut Wal<u64>, round: u64, from: u64, payload: u64) {
        wal.log_consumed(round, NodeId::new(from), Shared::new(payload));
    }

    /// Logs `rounds` simple rounds: round r consumes one message and sends one.
    fn sample_wal(config: WalConfig, rounds: u64) -> Wal<u64> {
        let mut wal = Wal::new(0, config);
        for round in 1..=rounds {
            wal.begin_round(round);
            consumed(&mut wal, round, 100 + round, round * 10);
            wal.log_sent(round, round * 1000);
            wal.commit_open();
        }
        wal
    }

    #[test]
    fn replay_reconstructs_committed_rounds() {
        let wal = sample_wal(WalConfig::default(), 3);
        assert!(wal.is_fully_durable(), "sync_every=1 syncs every commit");
        let log = wal.replay();
        assert_eq!(log.base_round, 0);
        assert_eq!(log.rounds.len(), 3);
        assert_eq!(log.dropped_records, 0);
        assert!(log.consumed_monotone);
        for (i, round) in log.rounds.iter().enumerate() {
            let r = (i + 1) as u64;
            assert_eq!(round.round, r);
            assert_eq!(round.inbox.len(), 1);
            assert_eq!(round.inbox[0].from, NodeId::new(100 + r));
            assert_eq!(round.inbox[0].payload, r * 10);
            assert_eq!(round.sent, vec![r * 1000]);
        }
    }

    #[test]
    fn uncommitted_tail_is_dropped() {
        let mut wal = sample_wal(WalConfig::default(), 2);
        wal.begin_round(3);
        consumed(&mut wal, 3, 103, 30);
        wal.log_sent(3, 3000);
        // No commit: the crash hit mid-round.
        let log = wal.replay();
        assert_eq!(log.rounds.len(), 2);
        assert_eq!(log.dropped_records, 2);
        assert!(log.consumed_monotone);
    }

    #[test]
    fn every_fault_is_a_noop_on_a_fully_durable_log() {
        for fault in [
            WalFault::TornTail,
            WalFault::LoseUnsynced,
            WalFault::Corrupt,
        ] {
            let mut wal = sample_wal(WalConfig::default(), 3);
            wal.apply_fault(fault);
            let log = wal.replay();
            assert_eq!(log.rounds.len(), 3, "{fault:?} damaged a durable log");
            assert_eq!(log.dropped_records, 0);
        }
    }

    /// With `sync_every = 4`, three committed rounds leave the whole log
    /// unsynced — the suffix every fault attacks.
    fn unsynced_config() -> WalConfig {
        WalConfig {
            sync_every: 4,
            ..WalConfig::default()
        }
    }

    #[test]
    fn torn_tail_drops_exactly_the_last_record() {
        let mut wal = sample_wal(unsynced_config(), 3);
        assert_eq!(wal.durable_len(), 0);
        wal.apply_fault(WalFault::TornTail);
        let log = wal.replay();
        // The torn record is round 3's commit marker: round 3 never happened.
        assert_eq!(log.rounds.len(), 2);
        assert_eq!(log.dropped_records, 3, "torn commit plus round 3's records");
        assert!(log.consumed_monotone);
    }

    #[test]
    fn lose_unsynced_truncates_to_the_watermark() {
        let mut wal = sample_wal(unsynced_config(), 3);
        wal.apply_fault(WalFault::LoseUnsynced);
        assert!(wal.is_empty(), "nothing was ever synced");
        assert_eq!(wal.replay().rounds.len(), 0);

        // Sync mid-way: the durable prefix survives.
        let mut wal = Wal::<u64>::new(0, unsynced_config());
        wal.begin_round(1);
        wal.log_sent(1, 11);
        wal.commit_open();
        wal.fsync();
        wal.begin_round(2);
        wal.log_sent(2, 22);
        wal.commit_open();
        wal.apply_fault(WalFault::LoseUnsynced);
        let log = wal.replay();
        assert_eq!(log.rounds.len(), 1);
        assert_eq!(log.rounds[0].sent, vec![11]);
    }

    #[test]
    fn corrupt_truncates_the_whole_unsynced_suffix() {
        let mut wal = Wal::<u64>::new(0, unsynced_config());
        wal.begin_round(1);
        wal.log_sent(1, 11);
        wal.commit_open();
        wal.fsync();
        for round in 2..=3 {
            wal.begin_round(round);
            wal.log_sent(round, round * 11);
            wal.commit_open();
        }
        wal.apply_fault(WalFault::Corrupt);
        let log = wal.replay();
        assert_eq!(log.rounds.len(), 1, "replay stops at the corrupt record");
        assert_eq!(log.dropped_records, 4, "both unsynced rounds dropped");
    }

    #[test]
    fn fault_replay_is_deterministic() {
        for fault in [
            WalFault::TornTail,
            WalFault::LoseUnsynced,
            WalFault::Corrupt,
        ] {
            let run = || {
                let mut wal = sample_wal(unsynced_config(), 5);
                wal.apply_fault(fault);
                let log = wal.replay();
                (
                    log.rounds
                        .iter()
                        .map(|r| (r.round, r.sent.clone()))
                        .collect::<Vec<_>>(),
                    log.dropped_records,
                    log.consumed_monotone,
                )
            };
            assert_eq!(run(), run(), "{fault:?} replay must be reproducible");
        }
    }

    #[test]
    fn compaction_resets_the_log() {
        let mut wal = sample_wal(WalConfig::default(), 4);
        wal.compact(4);
        assert!(wal.is_empty());
        assert_eq!(wal.base_round(), 4);
        let log = wal.replay();
        assert_eq!(log.rounds.len(), 0);
        assert_eq!(log.base_round, 4);
    }

    /// A deterministic protocol for manager tests: broadcasts its round count
    /// until `quota` sends are done, then outputs the sum of payloads heard.
    #[derive(Clone, Debug)]
    struct Logger {
        id: NodeId,
        quota: u64,
        sends: u64,
        heard: u64,
        done: bool,
    }

    impl Logger {
        fn new(id: NodeId, quota: u64) -> Self {
            Logger {
                id,
                quota,
                sends: 0,
                heard: 0,
                done: false,
            }
        }
    }

    impl Protocol for Logger {
        type Payload = u64;
        type Output = u64;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u64>]) -> Vec<Outgoing<u64>> {
            self.heard += inbox.iter().map(|e| *e.payload.get()).sum::<u64>();
            if self.sends < self.quota {
                self.sends += 1;
                vec![Outgoing::broadcast(self.id.raw() * 1000 + ctx.round)]
            } else {
                self.done = true;
                vec![]
            }
        }

        fn output(&self) -> Option<u64> {
            self.done.then_some(self.heard)
        }
    }

    #[test]
    fn manager_recovers_a_node_exactly() {
        let mut manager: RecoveryManager<Logger> =
            RecoveryManager::new(Box::new(|n: &Logger| n.clone()));
        let mut live = Logger::new(NodeId::new(7), 10);
        // Drive three rounds through the hooks, mirroring the engine.
        for round in 1..=3u64 {
            let inbox = vec![Envelope::new(NodeId::new(9), round * 5)];
            manager.begin_step(&live, round, &inbox);
            let ctx = RoundContext::new(round);
            for message in live.step(&ctx, &inbox) {
                manager.log_sent(live.id(), payload_digest(&message.payload));
            }
            manager.commit_step(&live);
        }
        let reference = live.clone();
        manager.crash(live, 4);
        assert!(manager.is_crashed(NodeId::new(7)));
        let recovered = manager
            .restart(NodeId::new(7), RestartPolicy::Clean, 5)
            .unwrap();
        assert_eq!(recovered.heard, reference.heard);
        assert_eq!(recovered.sends, reference.sends);
        let record = manager.restarts()[0];
        assert_eq!(record.node, NodeId::new(7));
        assert_eq!(record.crash_round, 4);
        assert_eq!(record.restart_round, 5);
        assert_eq!(record.recovered_rounds, 3);
        assert_eq!(record.replayed_rounds, 3);
        assert_eq!(record.send_conflicts, 0, "replay reproduces the log");
        assert_eq!(record.dropped_records, 0);
        assert!(record.consumed_monotone);
        assert!(!manager.is_crashed(NodeId::new(7)));
    }

    #[test]
    fn restarting_an_unknown_node_is_an_error() {
        let mut manager: RecoveryManager<Logger> =
            RecoveryManager::new(Box::new(|n: &Logger| n.clone()));
        assert_eq!(
            manager
                .restart(NodeId::new(3), RestartPolicy::Clean, 2)
                .unwrap_err(),
            SimError::UnknownNode(NodeId::new(3))
        );
    }

    #[test]
    fn byzantine_crash_cycle_is_pure_bookkeeping() {
        let mut manager: RecoveryManager<Logger> =
            RecoveryManager::new(Box::new(|n: &Logger| n.clone()));
        manager.crash_byzantine(NodeId::new(42));
        assert!(manager.is_crashed(NodeId::new(42)));
        assert!(manager.take_crashed_byzantine(NodeId::new(42)));
        assert!(!manager.take_crashed_byzantine(NodeId::new(42)));
    }

    #[test]
    fn restart_policies_serde_round_trip() {
        for policy in [
            RestartPolicy::Clean,
            RestartPolicy::Fault(WalFault::TornTail),
            RestartPolicy::Fault(WalFault::LoseUnsynced),
            RestartPolicy::Fault(WalFault::Corrupt),
        ] {
            let value = Serialize::to_value(&policy);
            let back: RestartPolicy = Deserialize::from_value(&value).unwrap();
            assert_eq!(back, policy);
        }
    }
}
