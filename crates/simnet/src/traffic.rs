//! Broadcast-aware, shared-payload round traffic.
//!
//! The engine used to expand every broadcast into `n` cloned [`Directed`] messages
//! the moment a node produced it, which made each round cost O(messages × n) in
//! allocation alone. [`RoundTraffic`] keeps a round's correct traffic in its compact
//! form instead — one [`TrafficItem::Broadcast`] entry per broadcast, holding a
//! single [`Shared`] payload handle — and only materialises point-to-point messages
//! where someone actually consumes them:
//!
//! * the engine walks the items once at delivery time; a broadcast's payload is
//!   allocated (and digest-hashed) **exactly once**, in [`RoundTraffic::push_broadcast`],
//!   and every correct recipient's envelope is a reference-count bump of that one
//!   allocation (messages to Byzantine identities never exist as values; the
//!   adversary already saw everything through its view);
//! * a rushing adversary observes the full point-to-point expansion through the
//!   lazy [`RoundTraffic::iter`] / [`RoundTraffic::to`] iterators, which yield
//!   borrowed [`SentRef`]s without allocating, and forwards whatever it wants to
//!   replay by cloning the handle — not the payload.
//!
//! The expansion order is fixed — items in production order, broadcast recipients
//! in the engine's recipient order (correct nodes first, then Byzantine
//! identities) — so executions are bit-for-bit identical to the old eager engine.

use crate::id::NodeId;
use crate::message::Directed;
use crate::shared::Shared;

/// One message-production event of a round, in its compact form.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficItem<P> {
    /// A broadcast to every current member (including the sender); the payload is
    /// allocated once, not once per recipient.
    Broadcast {
        /// The broadcasting node.
        from: NodeId,
        /// The payload every member receives (one allocation, shared handles).
        payload: Shared<P>,
    },
    /// A point-to-point message.
    Unicast(Directed<P>),
}

impl<P: Eq> Eq for TrafficItem<P> {}

/// A borrowed view of one point-to-point message in the round's expansion.
///
/// This is what the lazy iterators yield: sender, recipient and a reference to the
/// shared payload handle. Adversaries that forward a message call
/// [`SentRef::to_directed`], which clones the handle — never the payload.
#[derive(Debug)]
pub struct SentRef<'a, P> {
    /// The sending correct node.
    pub from: NodeId,
    /// The recipient.
    pub to: NodeId,
    /// The payload handle (shared across all recipients of a broadcast).
    pub payload: &'a Shared<P>,
}

impl<'a, P> SentRef<'a, P> {
    /// The payload value, borrowed for the traffic's full lifetime (method
    /// shadowing the field, for ergonomic matching).
    pub fn payload(&self) -> &'a P {
        self.payload.get()
    }

    /// Materialises the message as an owned [`Directed`] value by forwarding the
    /// payload handle (a reference-count bump, not a payload clone).
    pub fn to_directed(&self) -> Directed<P> {
        Directed::new(self.from, self.to, self.payload.clone())
    }
}

impl<P> Clone for SentRef<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P> Copy for SentRef<'_, P> {}

/// A round's correct traffic in compact, broadcast-aware form.
///
/// Built by the engine during the node-step phase; read by the adversary (lazily
/// expanded) and by the delivery phase (expanded only towards correct recipients).
/// The buffers are reused across rounds via [`RoundTraffic::begin_round`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundTraffic<P> {
    items: Vec<TrafficItem<P>>,
    recipients: Vec<NodeId>,
    broadcasts: usize,
}

impl<P> RoundTraffic<P> {
    /// An empty traffic set with no broadcast recipients (broadcasts added to it
    /// expand to nobody). Mostly useful for tests and adversary unit fixtures.
    pub fn new() -> Self {
        RoundTraffic {
            items: Vec::new(),
            recipients: Vec::new(),
            broadcasts: 0,
        }
    }

    /// Wraps a list of explicit point-to-point messages — the shape of the old
    /// eager engine — as a traffic set. Used by tests and adversary fixtures that
    /// want to describe traffic per recipient.
    pub fn from_directed(messages: Vec<Directed<P>>) -> Self {
        RoundTraffic {
            items: messages.into_iter().map(TrafficItem::Unicast).collect(),
            recipients: Vec::new(),
            broadcasts: 0,
        }
    }

    /// Clears the buffers and installs the round's broadcast recipient set (every
    /// current member, correct first, then Byzantine — the engine's delivery
    /// order). Reuses the allocations of the previous round.
    pub fn begin_round(&mut self, recipients: impl IntoIterator<Item = NodeId>) {
        self.items.clear();
        self.recipients.clear();
        self.recipients.extend(recipients);
        self.broadcasts = 0;
    }

    /// Records a broadcast: the one place its payload is allocated, regardless of
    /// how many recipients the expansion reaches. Accepts an owned payload or an
    /// existing handle.
    pub fn push_broadcast(&mut self, from: NodeId, payload: impl Into<Shared<P>>) {
        self.broadcasts += 1;
        self.items.push(TrafficItem::Broadcast {
            from,
            payload: payload.into(),
        });
    }

    /// Records a unicast.
    pub fn push_unicast(&mut self, message: Directed<P>) {
        self.items.push(TrafficItem::Unicast(message));
    }

    /// Appends pre-built items (used when merging per-thread buffers in node
    /// order).
    pub fn extend_items(&mut self, items: impl IntoIterator<Item = TrafficItem<P>>) {
        for item in items {
            if matches!(item, TrafficItem::Broadcast { .. }) {
                self.broadcasts += 1;
            }
            self.items.push(item);
        }
    }

    /// The compact items, in production order.
    pub fn items(&self) -> &[TrafficItem<P>] {
        &self.items
    }

    /// The round's broadcast recipient set, in delivery order.
    pub fn recipients(&self) -> &[NodeId] {
        &self.recipients
    }

    /// Number of point-to-point messages in the expansion (what the old engine
    /// would have allocated): `broadcasts × |recipients| + unicasts`.
    pub fn point_to_point_count(&self) -> u64 {
        let unicasts = (self.items.len() - self.broadcasts) as u64;
        self.broadcasts as u64 * self.recipients.len() as u64 + unicasts
    }

    /// Whether the round produced no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lazily iterates the full point-to-point expansion, in the exact order the
    /// old eager engine produced it: items in production order, broadcast
    /// recipients in recipient order. Nothing is allocated.
    pub fn iter(&self) -> TrafficIter<'_, P> {
        TrafficIter {
            items: self.items.iter(),
            recipients: &self.recipients,
            pending: None,
        }
    }

    /// Lazily iterates the messages addressed to one recipient. A broadcast
    /// contributes one message iff `to` is in the recipient set; the membership
    /// test is hoisted out of the loop, so a full pass costs O(items), not
    /// O(items × recipients).
    pub fn to<'a>(&'a self, to: NodeId) -> impl Iterator<Item = SentRef<'a, P>> + 'a {
        let broadcast_reaches = self.recipients.contains(&to);
        self.items.iter().filter_map(move |item| match item {
            TrafficItem::Broadcast { from, payload } if broadcast_reaches => Some(SentRef {
                from: *from,
                to,
                payload,
            }),
            TrafficItem::Unicast(message) if message.to == to => Some(SentRef {
                from: message.from,
                to,
                payload: &message.payload,
            }),
            _ => None,
        })
    }

    /// Number of payload allocations the compact form holds — one per item. The
    /// zero-copy invariant asserted by tests: this never depends on the recipient
    /// count.
    pub fn payload_allocations(&self) -> u64 {
        self.items.len() as u64
    }
}

impl<'a, P> IntoIterator for &'a RoundTraffic<P> {
    type Item = SentRef<'a, P>;
    type IntoIter = TrafficIter<'a, P>;

    fn into_iter(self) -> TrafficIter<'a, P> {
        self.iter()
    }
}

/// Lazy point-to-point expansion of a [`RoundTraffic`] (see [`RoundTraffic::iter`]).
#[derive(Clone, Debug)]
pub struct TrafficIter<'a, P> {
    items: std::slice::Iter<'a, TrafficItem<P>>,
    recipients: &'a [NodeId],
    /// A broadcast mid-expansion: sender, payload, index of the next recipient.
    pending: Option<(NodeId, &'a Shared<P>, usize)>,
}

impl<'a, P> Iterator for TrafficIter<'a, P> {
    type Item = SentRef<'a, P>;

    fn next(&mut self) -> Option<SentRef<'a, P>> {
        loop {
            if let Some((from, payload, index)) = self.pending {
                if let Some(&to) = self.recipients.get(index) {
                    self.pending = Some((from, payload, index + 1));
                    return Some(SentRef { from, to, payload });
                }
                self.pending = None;
            }
            match self.items.next()? {
                TrafficItem::Broadcast { from, payload } => {
                    self.pending = Some((*from, payload, 0));
                }
                TrafficItem::Unicast(message) => {
                    return Some(SentRef {
                        from: message.from,
                        to: message.to,
                        payload: &message.payload,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::Shared;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    fn sample() -> RoundTraffic<u32> {
        let mut traffic = RoundTraffic::new();
        traffic.begin_round([n(1), n(2), n(9)]);
        traffic.push_broadcast(n(1), 100);
        traffic.push_unicast(Directed::new(n(2), n(1), 200));
        traffic.push_broadcast(n(2), 300);
        traffic
    }

    #[test]
    fn expansion_matches_the_eager_order() {
        let traffic = sample();
        let expanded: Vec<Directed<u32>> = traffic.iter().map(|m| m.to_directed()).collect();
        assert_eq!(
            expanded,
            vec![
                Directed::new(n(1), n(1), 100),
                Directed::new(n(1), n(2), 100),
                Directed::new(n(1), n(9), 100),
                Directed::new(n(2), n(1), 200),
                Directed::new(n(2), n(1), 300),
                Directed::new(n(2), n(2), 300),
                Directed::new(n(2), n(9), 300),
            ]
        );
        assert_eq!(traffic.point_to_point_count(), 7);
        assert_eq!(
            traffic.payload_allocations(),
            3,
            "one per item, not per copy"
        );
    }

    #[test]
    fn expansion_shares_one_payload_allocation_per_broadcast() {
        let traffic = sample();
        let tokens: Vec<usize> = traffic
            .iter()
            .filter(|m| m.from == n(1))
            .map(|m| m.payload.token())
            .collect();
        assert_eq!(tokens.len(), 3);
        assert!(
            tokens.windows(2).all(|w| w[0] == w[1]),
            "all recipients see the same allocation"
        );
        let forwarded = traffic.iter().next().unwrap().to_directed();
        assert_eq!(
            forwarded.payload.token(),
            tokens[0],
            "to_directed forwards the handle"
        );
    }

    #[test]
    fn per_recipient_iteration_filters_and_expands() {
        let traffic = sample();
        let to_1: Vec<u32> = traffic.to(n(1)).map(|m| *m.payload()).collect();
        assert_eq!(to_1, vec![100, 200, 300]);
        let to_9: Vec<u32> = traffic.to(n(9)).map(|m| *m.payload()).collect();
        assert_eq!(to_9, vec![100, 300]);
        // Not a recipient: broadcasts do not reach it, unicasts still would.
        let to_5: Vec<u32> = traffic.to(n(5)).map(|m| *m.payload()).collect();
        assert!(to_5.is_empty());
    }

    #[test]
    fn buffers_are_reusable_across_rounds() {
        let mut traffic = sample();
        traffic.begin_round([n(4)]);
        assert!(traffic.is_empty());
        assert_eq!(traffic.point_to_point_count(), 0);
        traffic.push_broadcast(n(4), 7);
        assert_eq!(traffic.point_to_point_count(), 1);
        assert_eq!(traffic.recipients(), &[n(4)]);
    }

    #[test]
    fn from_directed_wraps_explicit_messages() {
        let traffic = RoundTraffic::from_directed(vec![Directed::new(n(1), n(2), 5u32)]);
        assert_eq!(traffic.point_to_point_count(), 1);
        let all: Vec<Directed<u32>> = traffic.iter().map(|m| m.to_directed()).collect();
        assert_eq!(all, vec![Directed::new(n(1), n(2), 5)]);
        assert_eq!(traffic.to(n(2)).count(), 1);
        assert_eq!(traffic.to(n(1)).count(), 0);
    }

    #[test]
    fn push_broadcast_accepts_existing_handles() {
        let handle = Shared::new(11u32);
        let mut traffic = RoundTraffic::new();
        traffic.begin_round([n(1), n(2)]);
        traffic.push_broadcast(n(1), handle.clone());
        let delivered = traffic.to(n(2)).next().unwrap();
        assert!(Shared::ptr_eq(delivered.payload, &handle));
    }
}
