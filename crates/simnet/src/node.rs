//! The [`Protocol`] trait: the interface a correct node implements.
//!
//! Every algorithm in `uba-core` and `uba-baselines` is a deterministic state machine
//! driven by the engine one round at a time. The engine delivers the messages that
//! were sent to the node in the previous round and collects the messages the node
//! wants to send in the current round.

use crate::id::NodeId;
use crate::message::{Envelope, Outgoing};

/// Per-round information handed to a protocol by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundContext {
    /// The current round number, starting at 1 for the first round in which the node
    /// participates. In the first round the inbox is always empty (nothing has been
    /// sent yet), mirroring the paper's convention that computation starts with a send.
    pub round: u64,
}

impl RoundContext {
    /// Creates a round context for the given round number.
    pub fn new(round: u64) -> Self {
        RoundContext { round }
    }
}

/// A correct node's protocol logic.
///
/// Implementations must be deterministic functions of their construction parameters
/// and the sequence of inboxes they observe: the engine relies on this for
/// reproducible executions, and the experiments rely on it for seed-stable results.
///
/// The protocol **must not** assume anything about the number of participants: the
/// only information available about the rest of the system is the set of sender
/// identifiers observed in inboxes — exactly the id-only model.
pub trait Protocol {
    /// The wire payload exchanged by this protocol.
    ///
    /// The `Hash` bound is what lets the engine deduplicate deliveries through a
    /// per-inbox `(sender, payload hash)` set in O(1) expected time instead of a
    /// linear scan; every wire format is a plain data enum, so the bound costs
    /// implementations a `#[derive(Hash)]` at most.
    type Payload: Clone + std::fmt::Debug + PartialEq + std::hash::Hash;
    /// The value the node eventually outputs (decision, accepted message, chain, …).
    type Output: Clone + std::fmt::Debug;

    /// The node's own identifier (the only global knowledge it starts with).
    fn id(&self) -> NodeId;

    /// Executes one synchronous round.
    ///
    /// `inbox` contains every message delivered to this node at the beginning of the
    /// round, i.e. the messages addressed to it in the previous round, deduplicated
    /// per `(sender, payload)` pair as required by the model ("duplicate messages from
    /// the same node in a round are simply discarded"). The return value is the set of
    /// messages to send in this round, which will be delivered at the beginning of the
    /// next one.
    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<Self::Payload>],
    ) -> Vec<Outgoing<Self::Payload>>;

    /// The node's output, if it has produced one.
    ///
    /// Some protocols (e.g. reliable broadcast) never *terminate* in the paper but do
    /// produce an output (the accepted message); the engine therefore distinguishes
    /// [`Protocol::output`] from [`Protocol::terminated`].
    fn output(&self) -> Option<Self::Output>;

    /// Whether the node has terminated and will not send any further messages.
    ///
    /// The default considers a node terminated as soon as it has an output, which is
    /// correct for the one-shot algorithms (consensus, approximate agreement). The
    /// non-terminating primitives (reliable broadcast, total ordering) override this.
    fn terminated(&self) -> bool {
        self.output().is_some()
    }

    /// The multiplexed instance a payload belongs to, if the protocol scopes its
    /// wire traffic to numbered instances (streams, total ordering). `None` means
    /// the payload is not instance-scoped and must never be garbage-collected.
    ///
    /// The engine's retired-traffic GC uses this, together with
    /// [`Protocol::retired_frontier`], to prune queued messages addressed to
    /// instances every node has already decided. The default opts out.
    fn instance_of(&self, _payload: &Self::Payload) -> Option<u64> {
        None
    }

    /// The node's retired-instance frontier: every instance tag strictly below
    /// this value is locally decided, and the node will never read or send a
    /// message for it again. The engine takes the minimum over all live nodes
    /// before pruning, so a conservative (low) value is always safe. The
    /// default retires nothing.
    fn retired_frontier(&self) -> u64 {
        0
    }
}

/// A protocol whose state can be snapshotted and restored — the extension the
/// crash-recovery subsystem requires (see [`wal`](crate::wal)).
///
/// The engine's [`RecoveryManager`](crate::wal::RecoveryManager) snapshots a
/// node's state when its write-ahead log opens (and on compaction), and after a
/// crash rebuilds the node by replaying the logged rounds over the snapshot.
/// For the deterministic state machines of this workspace a snapshot is simply
/// a clone, so implementations are one line:
///
/// ```ignore
/// impl Recoverable for MyNode {
///     fn snapshot(&self) -> Self { self.clone() }
/// }
/// ```
pub trait Recoverable: Protocol + Sized {
    /// A faithful copy of the node's current protocol state.
    fn snapshot(&self) -> Self;

    /// Reconstructs a node from a snapshot. The default is the identity —
    /// WAL replay, not this hook, brings the state forward to the crash point.
    fn restore(snapshot: Self) -> Self {
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Destination;

    struct Echoer {
        id: NodeId,
        seen: Vec<NodeId>,
    }

    impl Protocol for Echoer {
        type Payload = u32;
        type Output = usize;

        fn id(&self) -> NodeId {
            self.id
        }

        fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<u32>]) -> Vec<Outgoing<u32>> {
            self.seen.extend(inbox.iter().map(|e| e.from));
            if ctx.round == 1 {
                vec![Outgoing {
                    dest: Destination::Broadcast,
                    payload: 1,
                }]
            } else {
                vec![]
            }
        }

        fn output(&self) -> Option<usize> {
            (!self.seen.is_empty()).then_some(self.seen.len())
        }
    }

    #[test]
    fn default_terminated_follows_output() {
        let mut node = Echoer {
            id: NodeId::new(1),
            seen: vec![],
        };
        assert!(!node.terminated());
        let ctx = RoundContext::new(2);
        node.step(&ctx, &[Envelope::new(NodeId::new(2), 5)]);
        assert!(node.terminated());
        assert_eq!(node.output(), Some(1));
    }

    #[test]
    fn round_context_stores_round() {
        assert_eq!(RoundContext::new(7).round, 7);
    }
}
