//! The unified `Simulation` driver: one builder for every protocol, adversary and
//! churn plan.
//!
//! Historically every scenario shape (consensus under a split-vote adversary,
//! broadcast with an equivocating source, rotor under partial announcement, …) had
//! its own bespoke `run_*` function wiring identifiers, nodes, adversary and result
//! summarisation by hand. This module replaces that plumbing with three composable
//! pieces:
//!
//! * [`Simulation::scenario`] → [`ScenarioBuilder`] — a fluent description of the
//!   *system*: how many correct and Byzantine nodes, which [`IdSpace`], which seed,
//!   the round budget, an [`AdversaryKind`] and an optional [`ChurnSchedule`]
//!   (applied by the engine itself, see [`SyncEngine::set_churn`]);
//! * [`ProtocolFactory`] — how to turn that system description into protocol nodes,
//!   a concrete adversary and per-protocol report sections. Implemented by all the
//!   id-only algorithms in `uba-core` **and** by the known-`(n, f)` baselines in
//!   `uba-baselines`, so the same scenario runs head-to-head across implementations;
//! * [`Harness`] — the typed execution driver produced by
//!   [`ScenarioBuilder::build`], whose [`Harness::run`] drives the engine to the
//!   factory's stop condition and assembles a serde-serializable [`RunReport`].
//!
//! The [`RunReport`] is the single result currency of the repository: the `checker`
//! crate consumes it directly (oracle verdicts are attached into
//! [`RunReport::verdicts`]), the experiment harness renders tables from it, and the
//! bench crate serialises it to JSON for recorded baselines.
//!
//! ```
//! use uba_simnet::sim::{AdversaryKind, Simulation};
//!
//! let scenario = Simulation::scenario()
//!     .correct(7)
//!     .byzantine(2)
//!     .seed(42)
//!     .adversary(AdversaryKind::SplitVote);
//! assert_eq!(scenario.spec().correct, 7);
//! // `.build(factory)` / `.consensus(&inputs)` etc. attach a protocol; see uba-core.
//! ```

use serde::{Deserialize, Serialize};

use crate::adversary::{Adversary, ReplayAdversary};
use crate::attack::{AttackBehavior, AttackPlan, CompiledStep, PlanAdversary};
use crate::dynamic::ChurnSchedule;
use crate::engine::{PhaseTimings, SyncEngine};
use crate::error::SimError;
use crate::event::{EngineKind, EventEngine, EventTiming};
use crate::id::{IdSpace, NodeId};
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::Protocol;
use crate::vocab::{PayloadVocab, VocabAdversary};
use crate::wal::{RestartRecord, Snapshotter, WalConfig};

/// A boxed, dynamically dispatched adversary — the form in which
/// [`ProtocolFactory::adversary`] returns strategies so one harness type covers
/// every adversary choice.
pub type BoxedAdversary<P> = Box<dyn Adversary<P>>;

impl<P> Adversary<P> for BoxedAdversary<P> {
    fn step(&mut self, view: &crate::adversary::AdversaryView<'_, P>) -> Vec<crate::Directed<P>> {
        (**self).step(view)
    }
}

/// An adversary strategy together with the name recorded in the [`RunReport`].
///
/// Factories return this from [`ProtocolFactory::adversary`] so a substituted
/// strategy (a kind that does not apply to the protocol) is reported under the name
/// of what actually ran, not what was requested.
pub struct NamedAdversary<P> {
    /// Name recorded in [`RunReport::adversary`].
    pub name: String,
    /// The strategy itself.
    pub strategy: BoxedAdversary<P>,
}

impl<P> NamedAdversary<P> {
    /// Boxes a strategy under a report name.
    pub fn new(name: impl Into<String>, strategy: impl Adversary<P> + 'static) -> Self {
        NamedAdversary {
            name: name.into(),
            strategy: Box::new(strategy),
        }
    }
}

/// Adversary strategies selectable by name in experiment sweeps.
///
/// This is plain *data* (serialisable, comparable); each [`ProtocolFactory`] maps a
/// kind onto a concrete strategy for its payload type, falling back to the closest
/// applicable strategy when a kind does not exist for the protocol (e.g. there is no
/// vote to split in a rotor execution).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Byzantine nodes never speak (they are invisible).
    Silent,
    /// Byzantine nodes announce themselves in round 1 and then stay silent.
    AnnounceThenSilent,
    /// Byzantine nodes announce themselves to only half of the correct nodes.
    PartialAnnounce,
    /// Byzantine nodes split their votes between the two most popular values.
    SplitVote,
    /// The protocol's worst-case scripted strategy from the paper's proofs — each
    /// factory maps this onto its hardest applicable attack (split votes for
    /// consensus, extreme outliers for approximate agreement, ghost pairs for
    /// parallel consensus, …).
    Worst,
}

impl AdversaryKind {
    /// A stable lowercase name used in tables and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::Silent => "silent",
            AdversaryKind::AnnounceThenSilent => "announce-then-silent",
            AdversaryKind::PartialAnnounce => "partial-announce",
            AdversaryKind::SplitVote => "split-vote",
            AdversaryKind::Worst => "worst-case",
        }
    }
}

/// The serialisable description of a simulated system, echoed into every
/// [`RunReport`] so a recorded result carries its own reproduction recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Number of correct nodes.
    pub correct: usize,
    /// Number of Byzantine identities handed to the adversary.
    pub byzantine: usize,
    /// Identifier-generation strategy.
    pub id_space: IdSpace,
    /// Seed for identifier generation and any adversary randomness.
    pub seed: u64,
    /// Hard cap on rounds before the run is declared stuck.
    pub max_rounds: u64,
    /// Selected adversary strategy.
    pub adversary: AdversaryKind,
    /// Membership changes applied by the engine during the run.
    pub churn: ChurnSchedule,
    /// Composed attack plan; when present it supersedes `adversary` (which is kept
    /// in sync for pure preset plans). Absent in pre-plan recorded reports.
    pub attack: Option<AttackPlan>,
    /// Which engine executes the scenario. `None` (and absent in pre-event
    /// recorded reports) means the synchronous engine; `Some(EngineKind::Event(_))`
    /// selects the discrete-event engine under the given timing.
    pub engine: Option<EngineKind>,
}

impl ScenarioSpec {
    /// Total number of nodes `n` at the start of the run.
    pub fn n(&self) -> usize {
        self.correct + self.byzantine
    }

    /// Whether the scenario starts within the optimal resiliency `n > 3f`.
    pub fn resilient(&self) -> bool {
        self.n() > 3 * self.byzantine
    }

    /// Whether the scenario's timing is within the paper's synchronous model:
    /// either the synchronous engine, or the event engine under zero-jitter
    /// timing (which is byte-identical to it). Delayed, skewed or reordered
    /// timings reproduce the Section IX constructions, under which the
    /// theorems explicitly do *not* hold.
    pub fn timing_admissible(&self) -> bool {
        match &self.engine {
            None | Some(EngineKind::Sync) => true,
            Some(EngineKind::Event(timing)) => timing.is_synchronous(),
        }
    }

    /// Whether the scenario is admissible under the paper's model: `n > 3f` at the
    /// start *and* at every round of the churn schedule, *and* the timing is
    /// synchronous (see [`ScenarioSpec::timing_admissible`]). Property-based
    /// harnesses only assert the theorems on admissible scenarios.
    pub fn admissible(&self) -> bool {
        self.resilient()
            && self
                .churn
                .first_resiliency_violation(self.correct, self.byzantine)
                .is_none()
            && self.timing_admissible()
    }
}

/// Entry point of the driver API: `Simulation::scenario()` starts a fluent
/// [`ScenarioBuilder`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulation;

impl Simulation {
    /// Starts describing a scenario (7 correct nodes, no faults, sparse ids, seed 0,
    /// a 1000-round budget and a silent adversary by default).
    pub fn scenario() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }
}

/// Fluent builder for a [`ScenarioSpec`]; finish with [`ScenarioBuilder::build`]
/// (or a protocol-specific convenience from `uba-core::sim`) to obtain a
/// [`Harness`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            spec: ScenarioSpec {
                correct: 7,
                byzantine: 0,
                id_space: IdSpace::default(),
                seed: 0,
                max_rounds: 1_000,
                adversary: AdversaryKind::Silent,
                churn: ChurnSchedule::empty(),
                attack: None,
                engine: None,
            },
        }
    }
}

impl ScenarioBuilder {
    /// Starts from an existing spec (e.g. one deserialised from a recorded report).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        ScenarioBuilder { spec }
    }

    /// Sets the number of correct nodes.
    pub fn correct(mut self, correct: usize) -> Self {
        self.spec.correct = correct;
        self
    }

    /// Sets the number of Byzantine identities.
    pub fn byzantine(mut self, byzantine: usize) -> Self {
        self.spec.byzantine = byzantine;
        self
    }

    /// Sets the identifier-generation strategy.
    pub fn ids(mut self, id_space: IdSpace) -> Self {
        self.spec.id_space = id_space;
        self
    }

    /// Sets the seed for identifier generation and adversary randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the hard cap on rounds before the run is declared stuck.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.spec.max_rounds = max_rounds;
        self
    }

    /// Selects the adversary strategy.
    pub fn adversary(mut self, adversary: AdversaryKind) -> Self {
        self.spec.adversary = adversary;
        self.spec.attack = None;
        self
    }

    /// Attaches a composed [`AttackPlan`], superseding any [`AdversaryKind`]. A
    /// plan that is exactly a preset also updates the spec's `adversary` field so
    /// the recorded scenario reads the same either way.
    pub fn attack(mut self, plan: AttackPlan) -> Self {
        if let Some(kind) = plan.as_preset() {
            self.spec.adversary = kind;
        }
        self.spec.attack = Some(plan);
        self
    }

    /// Attaches a churn schedule, applied by the engine between rounds.
    pub fn churn(mut self, churn: ChurnSchedule) -> Self {
        self.spec.churn = churn;
        self
    }

    /// Selects the engine that executes the scenario (see [`EngineKind`]).
    /// [`EngineKind::event`] selects the discrete-event engine under
    /// zero-jitter timing, which is byte-identical to the synchronous engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.spec.engine = Some(engine);
        self
    }

    /// The spec built so far.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Generates the identifier split for this spec: the first `correct` generated
    /// identifiers are the correct nodes, the rest belong to the adversary.
    pub fn context(&self) -> BuildContext {
        self.clone().into_context()
    }

    /// Like [`ScenarioBuilder::context`], but consumes the builder so the spec is
    /// *moved* into the context instead of cloned — the build paths below use
    /// this, which leaves exactly one owned [`ScenarioSpec`] per run (the one the
    /// final [`RunReport`] carries).
    pub fn into_context(self) -> BuildContext {
        let ids = self.spec.id_space.generate(self.spec.n(), self.spec.seed);
        let (correct_ids, byzantine_ids) = ids.split_at(self.spec.correct);
        BuildContext {
            correct_ids: correct_ids.to_vec(),
            byzantine_ids: byzantine_ids.to_vec(),
            spec: self.spec,
        }
    }

    /// Builds a typed [`Harness`] for a protocol, with the adversary selected by the
    /// scenario's [`AttackPlan`] (when one is attached) or its [`AdversaryKind`].
    pub fn build<F: ProtocolFactory>(self, factory: F) -> Harness<F> {
        let ctx = self.into_context();
        let named = match &ctx.spec.attack {
            Some(plan) => compile_attack_plan(&factory, plan, &ctx),
            None => factory.adversary(ctx.spec.adversary, &ctx),
        };
        Harness::assemble(factory, ctx, named.strategy, named.name)
    }

    /// Builds a typed [`Harness`] driving an *explicit* adversary instead of a named
    /// [`AdversaryKind`] — the escape hatch for custom, adaptive or composed
    /// strategies (anything implementing [`Adversary`]).
    pub fn build_with_adversary<F, A>(
        self,
        factory: F,
        adversary_name: impl Into<String>,
        adversary: A,
    ) -> Harness<F>
    where
        F: ProtocolFactory,
        A: Adversary<<F::Node as Protocol>::Payload> + 'static,
    {
        let ctx = self.into_context();
        Harness::assemble(factory, ctx, Box::new(adversary), adversary_name.into())
    }
}

/// Everything a [`ProtocolFactory`] gets to see while constructing a run.
#[derive(Clone, Debug)]
pub struct BuildContext {
    /// The scenario being built.
    pub spec: ScenarioSpec,
    /// Identifiers of the correct nodes, in construction order.
    pub correct_ids: Vec<NodeId>,
    /// Identifiers controlled by the adversary.
    pub byzantine_ids: Vec<NodeId>,
}

impl BuildContext {
    /// Total node count `n` (what a known-`(n, f)` baseline is told).
    pub fn n(&self) -> usize {
        self.correct_ids.len() + self.byzantine_ids.len()
    }

    /// Byzantine count `f` (what a known-`(n, f)` baseline is told).
    pub fn f(&self) -> usize {
        self.byzantine_ids.len()
    }

    /// The failure bound a known-`f` protocol is promised: the peak number of
    /// Byzantine identities simultaneously in the system over the whole run,
    /// including any the churn schedule joins later. A baseline configured with
    /// only the *initial* count would be run outside its model the moment a
    /// Byzantine identity joins — its thresholds would be forgeable by design,
    /// not by theorem.
    pub fn known_f(&self) -> usize {
        self.spec.churn.peak_byzantine(self.byzantine_ids.len())
    }

    /// All identifiers, correct first, in generation order.
    pub fn all_ids(&self) -> Vec<NodeId> {
        self.correct_ids
            .iter()
            .chain(self.byzantine_ids.iter())
            .copied()
            .collect()
    }
}

/// When a [`Harness`] run is finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopCondition {
    /// Every correct node has terminated.
    AllTerminated,
    /// Every correct node has produced an output (it may keep participating).
    AllOutput,
    /// Exactly this many rounds have been executed.
    FixedRounds(u64),
}

/// How to instantiate a protocol (and everything around it) for a scenario.
///
/// A factory encapsulates the protocol-specific choices the old `run_*` drivers
/// hard-wired: node construction from the identifier split, the mapping from an
/// [`AdversaryKind`] to a concrete strategy for the protocol's payload, the stop
/// condition, optional per-round input injection, and the extraction of
/// protocol-specific [`RunReport`] sections after the run.
pub trait ProtocolFactory {
    /// The protocol node type this factory builds. (`'static` because churn joiners
    /// are stored in the engine as boxed constructors.)
    type Node: Protocol + 'static;

    /// A stable name for tables and JSON output (e.g. `"consensus"`,
    /// `"phase-king"`).
    fn protocol_name(&self) -> String;

    /// Constructs the correct nodes for the scenario. Takes `&mut self` so factories
    /// can cache build-time data (e.g. the founding identifier set) for later hooks.
    fn build_nodes(&mut self, ctx: &BuildContext) -> Vec<Self::Node>;

    /// Maps the selected [`AdversaryKind`] onto a concrete, named strategy for this
    /// protocol's payload. Factories should substitute (and report) the closest
    /// applicable strategy for kinds that make no sense for the protocol.
    fn adversary(
        &self,
        kind: AdversaryKind,
        ctx: &BuildContext,
    ) -> NamedAdversary<<Self::Node as Protocol>::Payload>;

    /// Maps one abstract [`AttackBehavior`] of a composed [`AttackPlan`] onto a
    /// concrete, named strategy for this protocol's payload. The default resolves
    /// presets through [`ProtocolFactory::adversary`], runs [`AttackBehavior::Replay`]
    /// generically, and substitutes the closest scripted kind for the value-shaped
    /// behaviours; factories whose payloads can express a behaviour exactly
    /// (outliers for approximate agreement, vote equivocation for consensus, …)
    /// override it.
    fn attack_behavior(
        &self,
        behavior: &AttackBehavior,
        ctx: &BuildContext,
    ) -> NamedAdversary<<Self::Node as Protocol>::Payload> {
        scripted_attack_behavior(self, behavior, ctx)
    }

    /// The protocol's payload vocabulary (see [`PayloadVocab`]): how to fabricate
    /// semantically valid, threshold-probing and garbage payloads for this
    /// protocol's wire format, drawn from the live scenario. Factories that
    /// provide one unlock the `AttackBehavior::Noise` / `AttackBehavior::Semantic`
    /// behaviours; the default (`None`) makes those behaviours substitute the
    /// protocol's worst scripted attack, following the usual substitution rule.
    fn payload_vocab(
        &self,
        _ctx: &BuildContext,
    ) -> Option<Box<dyn PayloadVocab<<Self::Node as Protocol>::Payload>>> {
        None
    }

    /// When the run is finished (before the scenario's round cap).
    fn stop_condition(&self) -> StopCondition {
        StopCondition::AllTerminated
    }

    /// Returns the constructor used for identifiers joining through the scenario's
    /// churn schedule. The default panics on first use, because most protocols need
    /// explicit support for mid-run joins.
    fn joiner(&self, _ctx: &BuildContext) -> Box<dyn FnMut(NodeId) -> Self::Node> {
        let name = self.protocol_name();
        Box::new(move |id| {
            panic!("protocol `{name}` does not support mid-run joins (joiner {id} rejected)")
        })
    }

    /// Returns the snapshot constructor the crash-recovery subsystem uses for this
    /// protocol's nodes, or `None` when the protocol does not support crash/restart
    /// churn. When the scenario's churn schedule contains [`ChurnEvent::Crash`]
    /// events and this returns `Some`, the harness enables recovery automatically;
    /// for a [`Recoverable`](crate::node::Recoverable) node the override is one
    /// line: `Some(Box::new(|node| node.snapshot()))`.
    ///
    /// [`ChurnEvent::Crash`]: crate::dynamic::ChurnEvent::Crash
    fn snapshotter(&self) -> Option<Snapshotter<Self::Node>> {
        None
    }

    /// Hook invoked before every engine round — the place to inject external inputs
    /// (events to order, leave announcements) into the nodes.
    fn before_round(&mut self, _round: u64, _nodes: &mut [Self::Node]) {}

    /// Extracts protocol-specific sections from the finished run into the report.
    fn record(&self, ctx: &BuildContext, nodes: &[Self::Node], report: &mut RunReport);
}

/// The default [`AttackBehavior`] → strategy mapping (see
/// [`ProtocolFactory::attack_behavior`]). Kept as a free function so factory
/// overrides can fall back to it for the behaviours they do not specialise.
pub fn scripted_attack_behavior<F: ProtocolFactory + ?Sized>(
    factory: &F,
    behavior: &AttackBehavior,
    ctx: &BuildContext,
) -> NamedAdversary<<F::Node as Protocol>::Payload> {
    match behavior {
        AttackBehavior::Preset(kind) => factory.adversary(*kind, ctx),
        AttackBehavior::Replay {
            visible_to_even_raw_ids,
        } => NamedAdversary::new("replay", ReplayAdversary::new(*visible_to_even_raw_ids)),
        // The value-shaped behaviours need payload vocabularies the generic layer
        // does not have; substitute the protocol's closest scripted kind, exactly
        // like `adversary` substitutes inapplicable kinds.
        AttackBehavior::AnnounceToSubset { .. } => {
            factory.adversary(AdversaryKind::PartialAnnounce, ctx)
        }
        AttackBehavior::Equivocate { .. } | AttackBehavior::Outliers { .. } => {
            factory.adversary(AdversaryKind::Worst, ctx)
        }
        // The vocabulary-driven behaviours: resolved through the factory's
        // payload vocabulary when it provides one, substituted by the worst
        // scripted attack otherwise (same substitution rule as above).
        AttackBehavior::Noise => match factory.payload_vocab(ctx) {
            Some(vocab) => {
                NamedAdversary::new("noise", VocabAdversary::noise(vocab, ctx.spec.seed))
            }
            None => factory.adversary(AdversaryKind::Worst, ctx),
        },
        AttackBehavior::Semantic { strategy } => match factory.payload_vocab(ctx) {
            Some(vocab) => NamedAdversary::new(
                format!("semantic-{}", strategy.name()),
                VocabAdversary::semantic(vocab, *strategy, ctx.spec.seed),
            ),
            None => factory.adversary(AdversaryKind::Worst, ctx),
        },
        AttackBehavior::Adaptive { strategy } => match factory.payload_vocab(ctx) {
            Some(vocab) => NamedAdversary::new(
                format!("adaptive-{}", strategy.name()),
                crate::vocab::AdaptiveAdversary::new(vocab, *strategy, ctx.spec.seed),
            ),
            None => factory.adversary(AdversaryKind::Worst, ctx),
        },
    }
}

/// Compiles an [`AttackPlan`] against a factory: each step's behaviour is resolved
/// to a payload-typed strategy and bound to the step's round window and actor
/// range. A plan that is exactly one whole-run step is reported under the resolved
/// strategy's own name, so preset plans produce reports identical to their legacy
/// [`AdversaryKind`]; composed plans are reported as `plan(...)`.
pub fn compile_attack_plan<F: ProtocolFactory + ?Sized>(
    factory: &F,
    plan: &AttackPlan,
    ctx: &BuildContext,
) -> NamedAdversary<<F::Node as Protocol>::Payload> {
    let mut compiled = Vec::with_capacity(plan.steps.len());
    let mut resolved_names = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        let inner = factory.attack_behavior(&step.behavior, ctx);
        resolved_names.push(inner.name);
        compiled.push(CompiledStep {
            from_round: step.from_round,
            to_round: step.to_round,
            actors: step.actors,
            strategy: inner.strategy,
        });
    }
    let name = match plan.steps.as_slice() {
        [step] if step.covers_everything() => resolved_names.pop().expect("one name per step"),
        [] => "plan(empty)".to_string(),
        steps => {
            let parts: Vec<String> = steps
                .iter()
                .zip(&resolved_names)
                .map(|(step, resolved)| step.describe_as(resolved))
                .collect();
            format!("plan({})", parts.join(" + "))
        }
    };
    NamedAdversary {
        name,
        strategy: Box::new(PlanAdversary::new(compiled)),
    }
}

/// The engine a [`Harness`] drives, selected by the scenario's [`EngineKind`].
/// Both variants run the same nodes and boxed adversary; the host dispatches
/// the handful of operations the harness needs, so the factory/report plumbing
/// is engine-agnostic.
enum EngineHost<F: ProtocolFactory> {
    /// The lock-step synchronous engine (the default).
    Sync(SyncEngine<F::Node, BoxedAdversary<<F::Node as Protocol>::Payload>>),
    /// The discrete-event engine under a resolved timing.
    Event(EventEngine<F::Node, BoxedAdversary<<F::Node as Protocol>::Payload>>),
}

impl<F: ProtocolFactory> EngineHost<F> {
    fn round(&self) -> u64 {
        match self {
            EngineHost::Sync(engine) => engine.round(),
            EngineHost::Event(engine) => engine.round(),
        }
    }

    fn nodes(&self) -> &[F::Node] {
        match self {
            EngineHost::Sync(engine) => engine.nodes(),
            EngineHost::Event(engine) => engine.nodes(),
        }
    }

    fn nodes_mut(&mut self) -> &mut [F::Node] {
        match self {
            EngineHost::Sync(engine) => engine.nodes_mut(),
            EngineHost::Event(engine) => engine.nodes_mut(),
        }
    }

    fn metrics(&self) -> &Metrics {
        match self {
            EngineHost::Sync(engine) => engine.metrics(),
            EngineHost::Event(engine) => engine.metrics(),
        }
    }

    fn run_round(&mut self) -> Result<(), SimError> {
        match self {
            EngineHost::Sync(engine) => engine.run_round(),
            EngineHost::Event(engine) => engine.run_round(),
        }
    }

    fn phase_timings(&self) -> PhaseTimings {
        match self {
            EngineHost::Sync(engine) => engine.phase_timings(),
            EngineHost::Event(engine) => engine.phase_timings(),
        }
    }

    fn set_parallel_node_threshold(&mut self, threshold: usize) {
        match self {
            EngineHost::Sync(engine) => engine.set_parallel_node_threshold(threshold),
            EngineHost::Event(engine) => engine.set_parallel_node_threshold(threshold),
        }
    }

    fn set_churn(&mut self, schedule: ChurnSchedule, joiner: Box<dyn FnMut(NodeId) -> F::Node>) {
        match self {
            EngineHost::Sync(engine) => engine.set_churn(schedule, joiner),
            EngineHost::Event(engine) => engine.set_churn(schedule, joiner),
        }
    }

    fn enable_recovery(&mut self, snapshot: Snapshotter<F::Node>) {
        match self {
            EngineHost::Sync(engine) => engine.enable_recovery(snapshot),
            EngineHost::Event(engine) => engine.enable_recovery(snapshot),
        }
    }

    fn enable_recovery_with(&mut self, snapshot: Snapshotter<F::Node>, config: WalConfig) {
        match self {
            EngineHost::Sync(engine) => engine.enable_recovery_with(snapshot, config),
            EngineHost::Event(engine) => engine.enable_recovery_with(snapshot, config),
        }
    }

    fn recovery_restarts(&self) -> &[RestartRecord] {
        match self {
            EngineHost::Sync(engine) => engine.recovery_restarts(),
            EngineHost::Event(engine) => engine.recovery_restarts(),
        }
    }

    fn queued_envelopes(&self) -> usize {
        match self {
            EngineHost::Sync(engine) => engine.queued_envelopes(),
            EngineHost::Event(engine) => engine.queued_envelopes(),
        }
    }

    fn enable_traffic_gc(&mut self) {
        match self {
            EngineHost::Sync(engine) => engine.enable_traffic_gc(),
            EngineHost::Event(engine) => engine.enable_traffic_gc(),
        }
    }

    fn wal_entries(&self) -> usize {
        match self {
            EngineHost::Sync(engine) => engine.wal_entries(),
            EngineHost::Event(engine) => engine.wal_entries(),
        }
    }
}

impl<F: ProtocolFactory> EngineHost<F>
where
    F::Node: Send,
    <F::Node as Protocol>::Payload: Send + Sync,
{
    fn enable_parallel_stepping(&mut self) {
        match self {
            EngineHost::Sync(engine) => engine.enable_parallel_stepping(),
            EngineHost::Event(engine) => engine.enable_parallel_stepping(),
        }
    }
}

/// A typed, runnable simulation: engine + factory + scenario context.
pub struct Harness<F: ProtocolFactory> {
    factory: F,
    ctx: BuildContext,
    engine: EngineHost<F>,
    stop: StopCondition,
    adversary_name: String,
}

impl<F: ProtocolFactory> Harness<F> {
    fn assemble(
        mut factory: F,
        ctx: BuildContext,
        adversary: BoxedAdversary<<F::Node as Protocol>::Payload>,
        adversary_name: String,
    ) -> Self {
        let nodes = factory.build_nodes(&ctx);
        let mut engine = match &ctx.spec.engine {
            None | Some(EngineKind::Sync) => {
                EngineHost::Sync(SyncEngine::new(nodes, adversary, ctx.byzantine_ids.clone()))
            }
            Some(EngineKind::Event(timing)) => EngineHost::Event(EventEngine::new(
                nodes,
                adversary,
                ctx.byzantine_ids.clone(),
                EventTiming::from_spec(timing, ctx.spec.seed, &ctx.correct_ids),
            )),
        };
        let stop = factory.stop_condition();
        if !ctx.spec.churn.is_empty() {
            // The engine applies the schedule itself; joining correct nodes are
            // constructed by the factory-provided constructor (which captures what
            // it needs rather than borrowing the factory, since the factory lives
            // in the harness alongside the engine).
            let joiner = factory.joiner(&ctx);
            engine.set_churn(ctx.spec.churn.clone(), joiner);
        }
        // Crash/restart churn needs the recovery subsystem; it is enabled
        // automatically when the schedule contains crash events and the factory
        // can snapshot its nodes. (A crash-free run with recovery enabled is
        // byte-identical to one without, so over-enabling would also be safe —
        // but keeping it off preserves the zero-cost default.)
        if ctx.spec.churn.has_crash_events() {
            if let Some(snapshot) = factory.snapshotter() {
                engine.enable_recovery(snapshot);
            }
        }
        Harness {
            factory,
            ctx,
            engine,
            stop,
            adversary_name,
        }
    }

    /// Overrides the stop condition with a fixed round count — used by primitives
    /// (like reliable broadcast) that never terminate but stabilise.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.stop = StopCondition::FixedRounds(rounds);
        self
    }

    /// Opts in to the engine's parallel node-step path (see
    /// [`SyncEngine::enable_parallel_stepping`]); a no-op below the engine's
    /// configured node-count threshold. Executions stay bit-for-bit identical to
    /// the serial path, so reports remain comparable across modes.
    pub fn parallel_stepping(mut self) -> Self
    where
        F::Node: Send,
        <F::Node as Protocol>::Payload: Send + Sync,
    {
        self.engine.enable_parallel_stepping();
        self
    }

    /// Overrides the node count at which the parallel step path engages. The CI
    /// count-drift gate runs the same grid at two thresholds and asserts the
    /// reports are identical, so serial/parallel divergence cannot land silently.
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.engine.set_parallel_node_threshold(threshold);
        self
    }

    /// Wall-clock time accumulated per engine phase across the run so far (see
    /// [`PhaseTimings`](crate::engine::PhaseTimings)). Measurement-only — reports
    /// never contain timings, so recorded baselines stay byte-identical across
    /// machines.
    pub fn phase_timings(&self) -> PhaseTimings {
        self.engine.phase_timings()
    }

    /// Overrides the stop condition.
    pub fn stop_when(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Enables retired-traffic garbage collection on the engine (see
    /// [`SyncEngine::enable_traffic_gc`]): queued envelopes addressed to
    /// instances below every live node's retired frontier are pruned after
    /// delivery. Observationally silent — reports are byte-identical with it
    /// on or off; only wall-clock and the queued-envelope memory proxy move.
    pub fn traffic_gc(mut self) -> Self {
        self.engine.enable_traffic_gc();
        self
    }

    /// Force-enables the crash-recovery subsystem even without crash events in
    /// the churn schedule. The recovery-equivalence suite uses this to pin that
    /// write-ahead logging is observationally silent on crash-free runs.
    ///
    /// # Panics
    /// Panics if the factory provides no [`ProtocolFactory::snapshotter`].
    pub fn enable_recovery(mut self) -> Self {
        let snapshot = self.factory.snapshotter().unwrap_or_else(|| {
            panic!(
                "protocol `{}` has no snapshotter; it cannot enable recovery",
                self.factory.protocol_name()
            )
        });
        self.engine.enable_recovery(snapshot);
        self
    }

    /// (Re-)enables crash-recovery under an explicit [`WalConfig`], replacing the
    /// default-configured manager the harness installs for crash churn. The knob
    /// that matters operationally is [`WalConfig::compact_after`]: a restart
    /// replays every record since the last compaction, so on long horizons the
    /// compaction period — not the horizon — must bound replay cost. Call before
    /// any round has run; reconfiguring mid-run would discard logged state.
    ///
    /// # Panics
    /// Panics if the factory provides no [`ProtocolFactory::snapshotter`].
    pub fn wal_config(mut self, config: WalConfig) -> Self {
        let snapshot = self.factory.snapshotter().unwrap_or_else(|| {
            panic!(
                "protocol `{}` has no snapshotter; it cannot enable recovery",
                self.factory.protocol_name()
            )
        });
        self.engine.enable_recovery_with(snapshot, config);
        self
    }

    /// Every crash/restart cycle completed so far (empty when recovery is
    /// disabled or nothing has restarted yet).
    pub fn recovery_restarts(&self) -> &[RestartRecord] {
        self.engine.recovery_restarts()
    }

    /// Envelopes currently queued in the engine's inboxes — one component of
    /// the soak driver's memory proxy.
    pub fn queued_envelopes(&self) -> usize {
        self.engine.queued_envelopes()
    }

    /// Records currently held across the engine's write-ahead logs (0 when
    /// recovery is disabled) — the other component of the soak memory proxy.
    pub fn wal_entries(&self) -> usize {
        self.engine.wal_entries()
    }

    /// The build context (scenario spec and identifier split).
    pub fn context(&self) -> &BuildContext {
        &self.ctx
    }

    /// The underlying synchronous engine (escape hatch for inspection beyond the
    /// report).
    ///
    /// # Panics
    /// Panics for a scenario that selected [`EngineKind::Event`]; event-engine
    /// harnesses are driven through the engine-agnostic harness API
    /// ([`Harness::run`], [`Harness::parallel_threshold`], …).
    pub fn engine(&self) -> &SyncEngine<F::Node, BoxedAdversary<<F::Node as Protocol>::Payload>> {
        match &self.engine {
            EngineHost::Sync(engine) => engine,
            EngineHost::Event(_) => {
                panic!("Harness::engine is only available for sync-engine scenarios")
            }
        }
    }

    /// Mutable access to the underlying synchronous engine.
    ///
    /// # Panics
    /// Panics for a scenario that selected [`EngineKind::Event`] (see
    /// [`Harness::engine`]).
    pub fn engine_mut(
        &mut self,
    ) -> &mut SyncEngine<F::Node, BoxedAdversary<<F::Node as Protocol>::Payload>> {
        match &mut self.engine {
            EngineHost::Sync(engine) => engine,
            EngineHost::Event(_) => {
                panic!("Harness::engine_mut is only available for sync-engine scenarios")
            }
        }
    }

    /// The underlying event engine, for scenarios that selected
    /// [`EngineKind::Event`] (the event-side counterpart of [`Harness::engine`]).
    ///
    /// # Panics
    /// Panics for sync-engine scenarios.
    pub fn event_engine(
        &self,
    ) -> &EventEngine<F::Node, BoxedAdversary<<F::Node as Protocol>::Payload>> {
        match &self.engine {
            EngineHost::Event(engine) => engine,
            EngineHost::Sync(_) => {
                panic!("Harness::event_engine is only available for event-engine scenarios")
            }
        }
    }

    /// The correct nodes (escape hatch for protocol-specific inspection).
    pub fn nodes(&self) -> &[F::Node] {
        self.engine.nodes()
    }

    fn stop_satisfied(&self) -> bool {
        match self.stop {
            StopCondition::AllTerminated => self.engine.nodes().iter().all(|n| n.terminated()),
            StopCondition::AllOutput => self.engine.nodes().iter().all(|n| n.output().is_some()),
            StopCondition::FixedRounds(rounds) => self.engine.round() >= rounds,
        }
    }

    /// Whether the stop condition currently holds (what [`Harness::run`] checks
    /// before each round) — exposed for drivers that step rounds themselves.
    pub fn stopped(&self) -> bool {
        self.stop_satisfied()
    }

    /// The number of rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.engine.round()
    }

    /// Executes exactly one engine round, including the factory's
    /// [`ProtocolFactory::before_round`] input hook — the per-round driving
    /// surface the long-horizon soak driver uses to measure each round
    /// individually instead of calling [`Harness::run`] once.
    pub fn step_round(&mut self) -> Result<(), SimError> {
        self.factory
            .before_round(self.engine.round() + 1, self.engine.nodes_mut());
        self.engine.run_round()
    }

    /// Assembles a [`RunReport`] of the run *so far* without driving the engine
    /// further (the status is `Completed` only if the stop condition holds).
    pub fn report_now(&self) -> RunReport {
        let status = if self.stop_satisfied() {
            RunStatus::Completed {
                rounds: self.engine.round(),
            }
        } else {
            RunStatus::MaxRoundsExceeded {
                limit: self.ctx.spec.max_rounds,
            }
        };
        let mut report = self.base_report(status);
        self.factory
            .record(&self.ctx, self.engine.nodes(), &mut report);
        report
    }

    /// Drives the engine to the stop condition (or the scenario's round cap) and
    /// assembles the [`RunReport`].
    ///
    /// Cap exhaustion is recorded in [`RunReport::status`], not returned as an
    /// error; errors are reserved for model violations (forged senders,
    /// inapplicable churn events).
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let status = loop {
            if self.stop_satisfied() {
                break RunStatus::Completed {
                    rounds: self.engine.round(),
                };
            }
            if self.engine.round() >= self.ctx.spec.max_rounds {
                break RunStatus::MaxRoundsExceeded {
                    limit: self.ctx.spec.max_rounds,
                };
            }
            self.factory
                .before_round(self.engine.round() + 1, self.engine.nodes_mut());
            self.engine.run_round()?;
        };
        let mut report = self.base_report(status);
        self.factory
            .record(&self.ctx, self.engine.nodes(), &mut report);
        Ok(report)
    }

    /// Assembles the protocol-agnostic report skeleton from *borrowed* context.
    /// The scenario spec was moved (not cloned) into the context at build time and
    /// is cloned exactly once here, into the report that owns it — the single
    /// payload-independent copy a run makes. Everything else is read through
    /// references; the harness, engine and nodes stay untouched and inspectable
    /// after the run.
    fn base_report(&self, status: RunStatus) -> RunReport {
        let metrics = self.engine.metrics();
        let payload_size = std::mem::size_of::<<F::Node as Protocol>::Payload>() as u64;
        RunReport {
            protocol: self.factory.protocol_name(),
            adversary: self.adversary_name.clone(),
            scenario: self.ctx.spec.clone(),
            status,
            rounds: self.engine.round(),
            messages: MessageStats {
                correct: metrics.correct_messages,
                byzantine: metrics.byzantine_messages,
                deliveries: metrics.deliveries,
                correct_bytes_estimate: metrics.correct_messages * payload_size,
                per_round: metrics.per_round.clone(),
            },
            nodes: self
                .engine
                .nodes()
                .iter()
                .map(|node| NodeReport {
                    id: node.id(),
                    terminated: node.terminated(),
                    output: node.output().map(|output| format!("{output:?}")),
                })
                .collect(),
            consensus: None,
            broadcast: None,
            rotor: None,
            approx: None,
            spreads: None,
            parallel: None,
            chain: None,
            recovery: {
                let restarts = self.engine.recovery_restarts();
                (!restarts.is_empty()).then(|| RecoverySection {
                    restarts: restarts.to_vec(),
                })
            },
            stream: None,
            verdicts: Vec::new(),
            margins: MarginSection::default(),
        }
    }
}

/// Why a harness run stopped — the report-level mirror of
/// [`RunOutcome`](crate::engine::RunOutcome), serialisable for recorded results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The factory's stop condition was satisfied.
    Completed {
        /// Rounds executed when the condition became true.
        rounds: u64,
    },
    /// The scenario's round cap was exhausted first.
    MaxRoundsExceeded {
        /// The cap that was hit.
        limit: u64,
    },
}

impl RunStatus {
    /// Whether the run met its stop condition.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed { .. })
    }
}

/// Message accounting of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Point-to-point messages produced by correct nodes.
    pub correct: u64,
    /// Messages injected by the adversary.
    pub byzantine: u64,
    /// Deliveries to correct nodes after deduplication.
    pub deliveries: u64,
    /// `correct × size_of(payload)` — a wire-size estimate (payload sizes are not
    /// serialised per message, so this is an upper-bound proxy, not a measurement).
    pub correct_bytes_estimate: u64,
    /// Per-round breakdown, in round order.
    pub per_round: Vec<RoundMetrics>,
}

/// Per-node summary in a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub id: NodeId,
    /// Whether it had terminated when the run stopped.
    pub terminated: bool,
    /// Debug rendering of its output, if it produced one.
    pub output: Option<String>,
}

/// A consensus decision as recorded in a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusDecision {
    /// The deciding node.
    pub node: NodeId,
    /// The decided value.
    pub value: u64,
    /// The phase in which it decided.
    pub phase: u64,
    /// The network round in which it decided.
    pub round: u64,
}

/// Consensus-family section of a report (id-only consensus and the phase-king
/// baseline both fill this).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsensusSection {
    /// `(node, input)` pairs of the correct nodes.
    pub inputs: Vec<(NodeId, u64)>,
    /// Decisions of the nodes that decided.
    pub decisions: Vec<ConsensusDecision>,
    /// Nodes that had not decided when the run stopped.
    pub undecided: Vec<NodeId>,
    /// Whether every decided value is identical.
    pub agreement: bool,
    /// Whether the decision is the input of some correct node, and unanimous inputs
    /// forced that value.
    pub validity: bool,
}

/// Builds a [`ConsensusSection`], computing agreement and validity the same way for
/// every implementation (the id-only consensus and the known-`(n, f)` baselines must
/// be judged by one definition, or head-to-head comparisons compare different
/// properties).
pub fn consensus_section_from_parts(
    inputs: Vec<(NodeId, u64)>,
    decisions: Vec<ConsensusDecision>,
    undecided: Vec<NodeId>,
) -> ConsensusSection {
    let agreement = decisions.windows(2).all(|w| w[0].value == w[1].value);
    let validity = match decisions.first() {
        None => false,
        Some(first) => {
            let in_inputs = inputs.iter().any(|(_, input)| *input == first.value);
            let unanimous = inputs.windows(2).all(|w| w[0].1 == w[1].1);
            in_inputs
                && (!unanimous
                    || decisions
                        .iter()
                        .all(|d| Some(d.value) == inputs.first().map(|i| i.1)))
        }
    };
    ConsensusSection {
        inputs,
        decisions,
        undecided,
        agreement,
        validity,
    }
}

/// One node's accept set in a broadcast run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAcceptSet {
    /// The accepting node.
    pub node: NodeId,
    /// `(message, acceptance round)` pairs, sorted by message.
    pub values: Vec<(u64, u64)>,
}

/// Reliable-broadcast-family section of a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastSection {
    /// The designated sender.
    pub source: NodeId,
    /// Whether the designated sender was a correct node.
    pub source_correct: bool,
    /// The value a correct sender broadcast (ground truth for unforgeability).
    pub sent: Option<u64>,
    /// Every correct node's accept set.
    pub accepted: Vec<NodeAcceptSet>,
    /// Whether all correct nodes accepted exactly the same set of values.
    pub consistent: bool,
}

/// Rotor-coordinator section of a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotorSection {
    /// Coordinators selected by the first correct node.
    pub selected: usize,
    /// Whether a loop round existed in which every correct node selected the same
    /// correct coordinator.
    pub good_round: bool,
}

/// Approximate-agreement section of a report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApproxSection {
    /// Correct inputs.
    pub inputs: Vec<f64>,
    /// Correct outputs.
    pub outputs: Vec<f64>,
    /// `(min, max)` of the inputs.
    pub input_range: (f64, f64),
    /// `(min, max)` of the outputs.
    pub output_range: (f64, f64),
    /// Whether every output lies within the input range.
    pub outputs_in_range: bool,
    /// `(output range) / (input range)` — the paper guarantees `< 1` (½ per round).
    pub contraction: f64,
}

/// Builds an [`ApproxSection`] from parallel input/output value lists, computing
/// containment and contraction uniformly for every implementation.
pub fn approx_section_from_values(inputs: Vec<f64>, outputs: Vec<f64>) -> ApproxSection {
    let imin = inputs.iter().copied().fold(f64::INFINITY, f64::min);
    let imax = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let omin = outputs.iter().copied().fold(f64::INFINITY, f64::min);
    let omax = outputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let input_spread = imax - imin;
    let output_spread = omax - omin;
    ApproxSection {
        outputs_in_range: omin >= imin - 1e-9 && omax <= imax + 1e-9,
        contraction: if input_spread > 0.0 {
            output_spread / input_spread
        } else {
            0.0
        },
        input_range: (imin, imax),
        output_range: (omin, omax),
        inputs,
        outputs,
    }
}

/// Iterated-convergence section: the correct-value spread after each iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpreadSection {
    /// Spread (max − min over correct values) per iteration, in iteration order.
    pub per_iteration: Vec<f64>,
}

/// One node's decided pair set in a parallel-consensus run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePairs {
    /// The deciding node.
    pub node: NodeId,
    /// The decided `(instance, value)` pairs, sorted by instance.
    pub pairs: Vec<(u64, u64)>,
}

/// Parallel-consensus section of a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelSection {
    /// Every correct node's decided pair set.
    pub decisions: Vec<NodePairs>,
    /// Whether all decided pair sets are identical.
    pub agreement: bool,
}

/// Total-ordering section of a report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainSection {
    /// `(node, finalised chain length)` for every correct node.
    pub lengths: Vec<(NodeId, usize)>,
    /// Whether the chains of the (non-leaving) correct nodes agree on their overlap.
    pub prefix_ok: bool,
}

/// Crash-recovery section of a report: one record per completed crash/restart
/// cycle, in restart order. Absent (and absent from crash-free recorded
/// reports) when no node restarted — which keeps crash-free runs with recovery
/// enabled byte-identical to runs without it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySection {
    /// Every restart performed during the run.
    pub restarts: Vec<RestartRecord>,
}

/// One named quantity contributing to an oracle margin (e.g. the
/// rounds-to-budget slack behind a `liveness` margin). Purely informational:
/// the invariant lives on [`OracleMargin::margin`], not on individual metrics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarginMetric {
    /// Metric name (e.g. `"termination-slack"`).
    pub name: String,
    /// Metric value in the family's own units (rounds, nodes, scaled spread).
    pub value: u64,
}

/// Quantitative distance-to-violation for one oracle family, attached by
/// `uba_checker::margin` alongside the pass/fail [`OracleVerdict`]s.
///
/// Invariant (enforced by the checker, pinned by `tests/margin_oracles.rs`):
/// `margin == 0` exactly when the paired verdict fails. A passing oracle
/// always reports `margin >= 1`, with larger values meaning the run was
/// further from violating the property — the fitness signal the search-guided
/// fuzzer descends.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleMargin {
    /// The oracle this margin is paired with (`"consensus"`, `"liveness"`, …).
    pub oracle: String,
    /// Distance to violation: 0 ⟺ the paired verdict fails, ≥ 1 otherwise.
    pub margin: u64,
    /// The raw quantities behind the margin, in a fixed per-family order.
    pub metrics: Vec<MarginMetric>,
}

/// Margin section of a report: one [`OracleMargin`] per applicable oracle
/// family, in a fixed order. Defaults to empty so pre-margin recorded reports
/// still deserialise.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarginSection {
    /// Per-oracle margins, in attachment order.
    pub oracles: Vec<OracleMargin>,
}

impl MarginSection {
    /// The margin paired with `oracle`, if that family applied to the run.
    pub fn margin_for(&self, oracle: &str) -> Option<u64> {
        self.oracles
            .iter()
            .find(|m| m.oracle == oracle)
            .map(|m| m.margin)
    }

    /// The smallest margin across every attached family — the run's overall
    /// distance to its nearest violation (0 when some oracle failed).
    pub fn min_margin(&self) -> Option<u64> {
        self.oracles.iter().map(|m| m.margin).min()
    }
}

/// A property-oracle verdict attached by the `checker` crate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleVerdict {
    /// The oracle that ran (e.g. `"consensus"`, `"reliable-broadcast"`).
    pub oracle: String,
    /// Whether the oracle found no violations.
    pub passed: bool,
    /// Number of individual property evaluations performed.
    pub checks: usize,
    /// Rendered violations, in discovery order.
    pub violations: Vec<String>,
}

/// Everything measured in one run — the unified, serialisable result every driver
/// path produces and every consumer (checker, tables, JSON baselines) reads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Protocol name (from [`ProtocolFactory::protocol_name`]).
    pub protocol: String,
    /// Adversary name ([`AdversaryKind::name`] or a custom label).
    pub adversary: String,
    /// The scenario that produced this run (its own reproduction recipe).
    pub scenario: ScenarioSpec,
    /// Whether the run completed or exhausted its round cap.
    pub status: RunStatus,
    /// Rounds executed when the run stopped.
    pub rounds: u64,
    /// Message accounting.
    pub messages: MessageStats,
    /// Per-node termination and output summaries.
    pub nodes: Vec<NodeReport>,
    /// Consensus-family results, if the protocol decides single values.
    pub consensus: Option<ConsensusSection>,
    /// Broadcast-family results, if the protocol accepts broadcast values.
    pub broadcast: Option<BroadcastSection>,
    /// Rotor-coordinator results.
    pub rotor: Option<RotorSection>,
    /// Approximate-agreement results.
    pub approx: Option<ApproxSection>,
    /// Iterated-convergence results.
    pub spreads: Option<SpreadSection>,
    /// Parallel-consensus results.
    pub parallel: Option<ParallelSection>,
    /// Total-ordering results.
    pub chain: Option<ChainSection>,
    /// Crash-recovery results; `None` unless a crash/restart cycle completed.
    pub recovery: Option<RecoverySection>,
    /// Pipelined-stream results; `None` unless the run used a
    /// [`StreamDriver`](crate::stream::StreamDriver).
    pub stream: Option<crate::stream::StreamSection>,
    /// Property-oracle verdicts (attached by `uba_checker::attach_verdicts`).
    pub verdicts: Vec<OracleVerdict>,
    /// Per-oracle distance-to-violation margins (attached by
    /// `uba_checker::attach_verdicts` next to the verdicts). Empty in
    /// pre-margin recorded reports.
    #[serde(default)]
    pub margins: MarginSection,
}

impl RunReport {
    /// Whether the run completed (met its stop condition before the round cap).
    pub fn completed(&self) -> bool {
        self.status.is_completed()
    }

    /// Whether every attached oracle verdict passed (vacuously true when none ran).
    pub fn verdicts_passed(&self) -> bool {
        self.verdicts.iter().all(|verdict| verdict.passed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_the_spec() {
        let builder = Simulation::scenario()
            .correct(10)
            .byzantine(3)
            .ids(IdSpace::Consecutive)
            .seed(9)
            .max_rounds(50)
            .adversary(AdversaryKind::SplitVote);
        let spec = builder.spec();
        assert_eq!(spec.correct, 10);
        assert_eq!(spec.byzantine, 3);
        assert_eq!(spec.id_space, IdSpace::Consecutive);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.max_rounds, 50);
        assert_eq!(spec.adversary, AdversaryKind::SplitVote);
        assert_eq!(spec.n(), 13);
        assert!(spec.resilient());
    }

    #[test]
    fn context_splits_ids_deterministically() {
        let builder = Simulation::scenario().correct(5).byzantine(2).seed(7);
        let a = builder.clone().context();
        let b = builder.context();
        assert_eq!(a.correct_ids, b.correct_ids);
        assert_eq!(a.byzantine_ids, b.byzantine_ids);
        assert_eq!(a.correct_ids.len(), 5);
        assert_eq!(a.byzantine_ids.len(), 2);
        assert_eq!(a.n(), 7);
        assert_eq!(a.f(), 2);
        assert_eq!(a.all_ids().len(), 7);
    }

    #[test]
    fn adversary_kind_names_are_stable() {
        assert_eq!(AdversaryKind::Silent.name(), "silent");
        assert_eq!(AdversaryKind::SplitVote.name(), "split-vote");
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let spec = Simulation::scenario()
            .correct(4)
            .byzantine(1)
            .seed(3)
            .adversary(AdversaryKind::PartialAnnounce)
            .spec()
            .clone();
        let value = serde::Serialize::to_value(&spec);
        let back: ScenarioSpec = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, spec);

        let event_spec = Simulation::scenario()
            .engine(EngineKind::event())
            .spec()
            .clone();
        let value = serde::Serialize::to_value(&event_spec);
        let back: ScenarioSpec = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, event_spec);
    }

    #[test]
    fn specs_without_an_engine_field_deserialize_as_sync() {
        // Pre-event recorded reports carry no `engine` key; they must keep
        // loading (as sync-engine scenarios) so recorded baselines stay valid.
        let spec = Simulation::scenario().spec().clone();
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&spec) else {
            panic!("a spec serialises as an object");
        };
        fields.retain(|(name, _)| name != "engine");
        let back: ScenarioSpec = serde::Deserialize::from_value(&serde::Value::Object(fields))
            .expect("engine-less spec still deserialises");
        assert_eq!(back.engine, None);
        assert!(back.timing_admissible());
    }

    #[test]
    fn non_synchronous_timing_is_inadmissible() {
        use crate::event::{DelaySpec, TimingSpec};
        let sync_spec = Simulation::scenario().spec().clone();
        assert!(sync_spec.admissible());
        let zero_jitter = Simulation::scenario()
            .engine(EngineKind::event())
            .spec()
            .clone();
        assert!(zero_jitter.admissible(), "zero-jitter event == sync model");
        let delayed = Simulation::scenario()
            .engine(EngineKind::Event(
                TimingSpec::synchronous().with_delay(DelaySpec::Gst { gst: 10, bound: 2 }),
            ))
            .spec()
            .clone();
        assert!(!delayed.timing_admissible());
        assert!(
            !delayed.admissible(),
            "the paper's theorems assume synchrony; GST timing is out of model"
        );
    }
}
