//! The Byzantine adversary interface and generic adversary strategies.
//!
//! In the paper's model the faulty nodes "can behave in any way whatsoever". The
//! engine therefore drives Byzantine identities through a single [`Adversary`] object
//! that, once per round, observes everything the correct nodes sent in that round
//! (a *rushing* adversary) and injects an arbitrary set of directed messages. The
//! only thing it cannot do is forge a sender identity it does not control, because
//! the network attaches sender identifiers — the engine enforces this.
//!
//! Protocol-agnostic strategies live here ([`SilentAdversary`], [`FnAdversary`],
//! [`CrashAdversary`], [`ReplayAdversary`]); strategies that need to craft
//! protocol-specific payloads (equivocating echoes, split votes, …) live next to the
//! protocols in `uba-core::adversaries`.

use crate::id::NodeId;
use crate::message::Directed;
use crate::traffic::{RoundTraffic, SentRef, TrafficIter};

/// What the adversary gets to see before injecting its messages for a round.
///
/// `correct_traffic` holds everything the correct nodes sent *this* round in its
/// compact, broadcast-aware form — the adversary is rushing: it speaks last, with
/// full knowledge of the round's honest messages, which is the strongest position
/// the synchronous model allows. The full point-to-point expansion is available
/// through the lazy [`AdversaryView::traffic`] / [`AdversaryView::traffic_to`]
/// iterators; the engine never allocates it.
#[derive(Debug)]
pub struct AdversaryView<'a, P> {
    /// Current round number (1-based, same numbering the correct nodes see).
    pub round: u64,
    /// Identifiers of the correct nodes currently in the system.
    pub correct_ids: &'a [NodeId],
    /// Identifiers controlled by the adversary.
    pub byzantine_ids: &'a [NodeId],
    /// The round's correct traffic, broadcasts unexpanded.
    pub correct_traffic: &'a RoundTraffic<P>,
}

impl<'a, P> AdversaryView<'a, P> {
    /// All identifiers currently in the system (correct and Byzantine).
    pub fn all_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .correct_ids
            .iter()
            .chain(self.byzantine_ids.iter())
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Lazily iterates the full point-to-point expansion of the round's correct
    /// traffic, in the order the old eager engine materialised it.
    pub fn traffic(&self) -> TrafficIter<'a, P> {
        self.correct_traffic.iter()
    }

    /// Messages the correct nodes sent to a particular recipient this round
    /// (lazily expanded; a full pass costs O(traffic items), not O(items × n)).
    pub fn traffic_to(&self, to: NodeId) -> impl Iterator<Item = SentRef<'a, P>> + 'a {
        self.correct_traffic.to(to)
    }
}

/// A Byzantine adversary controlling a (possibly empty) set of identities.
pub trait Adversary<P> {
    /// Produces the messages the Byzantine identities send this round.
    ///
    /// Every returned message must have `from` equal to one of
    /// `view.byzantine_ids`; the engine rejects anything else with
    /// [`SimError::ForgedSender`](crate::SimError::ForgedSender).
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>>;
}

/// An adversary whose nodes never send anything (fail-silent / crashed from the
/// start). With this adversary the Byzantine nodes are invisible: correct nodes never
/// even learn that they exist, which is the "a Byzantine node may get itself known to
/// only a subset of nodes" corner of the model taken to the extreme.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentAdversary;

impl<P> Adversary<P> for SilentAdversary {
    fn step(&mut self, _view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        Vec::new()
    }
}

/// An adversary defined by a closure — the escape hatch used by tests and by
/// experiment drivers for one-off behaviours.
pub struct FnAdversary<P, F>
where
    F: FnMut(&AdversaryView<'_, P>) -> Vec<Directed<P>>,
{
    f: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> FnAdversary<P, F>
where
    F: FnMut(&AdversaryView<'_, P>) -> Vec<Directed<P>>,
{
    /// Wraps a closure as an adversary.
    pub fn new(f: F) -> Self {
        FnAdversary {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P, F> Adversary<P> for FnAdversary<P, F>
where
    F: FnMut(&AdversaryView<'_, P>) -> Vec<Directed<P>>,
{
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        (self.f)(view)
    }
}

/// Wraps another adversary and silences it from a given round onwards — Byzantine
/// nodes that participate "correctly enough" for a while and then crash. Crashing is
/// a legal Byzantine behaviour and is the classic way to stress the `n_v` counting of
/// the paper's algorithms: the crashed nodes have been counted but stop contributing
/// to quorums.
#[derive(Clone, Debug)]
pub struct CrashAdversary<A> {
    inner: A,
    crash_round: u64,
}

impl<A> CrashAdversary<A> {
    /// Creates an adversary that behaves like `inner` before `crash_round` and is
    /// silent from `crash_round` (inclusive) onwards.
    pub fn new(inner: A, crash_round: u64) -> Self {
        CrashAdversary { inner, crash_round }
    }
}

impl<P, A: Adversary<P>> Adversary<P> for CrashAdversary<A> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        if view.round >= self.crash_round {
            Vec::new()
        } else {
            self.inner.step(view)
        }
    }
}

/// An adversary that imitates a correct node by replaying, under each of its own
/// identities, the payloads that some designated correct node sent this round — but
/// only towards a chosen subset of recipients. This realises the "a Byzantine node may
/// get itself known to only a subset of nodes" behaviour from the model: different
/// correct nodes end up with different values of `n_v`.
#[derive(Clone, Debug)]
pub struct ReplayAdversary {
    /// Only recipients satisfying this predicate receive the replayed traffic.
    visible_to_even_raw_ids: bool,
}

impl ReplayAdversary {
    /// Creates a replay adversary. If `visible_to_even_raw_ids` is true the Byzantine
    /// identities only talk to correct nodes whose raw identifier is even, otherwise
    /// to those with odd raw identifiers.
    pub fn new(visible_to_even_raw_ids: bool) -> Self {
        ReplayAdversary {
            visible_to_even_raw_ids,
        }
    }
}

impl<P> Adversary<P> for ReplayAdversary {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        // Pick the lexicographically smallest correct sender as the template.
        let Some(template_sender) = view.correct_ids.iter().copied().min() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &byz in view.byzantine_ids {
            for msg in view.traffic().filter(|m| m.from == template_sender) {
                let parity_ok = (msg.to.raw() % 2 == 0) == self.visible_to_even_raw_ids;
                if parity_ok && view.correct_ids.contains(&msg.to) {
                    // Forward by handle: replayed honest traffic never clones the
                    // payload (which is why this impl needs no `P: Clone`).
                    out.push(Directed::new(byz, msg.to, msg.payload.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static CORRECT: [NodeId; 3] = [NodeId::new(2), NodeId::new(4), NodeId::new(5)];
    static BYZ: [NodeId; 1] = [NodeId::new(9)];

    fn traffic(messages: Vec<Directed<u32>>) -> RoundTraffic<u32> {
        RoundTraffic::from_directed(messages)
    }

    fn view<'a>(traffic: &'a RoundTraffic<u32>) -> AdversaryView<'a, u32> {
        AdversaryView {
            round: 3,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    #[test]
    fn silent_adversary_sends_nothing() {
        let traffic = traffic(vec![Directed::new(NodeId::new(2), NodeId::new(4), 7u32)]);
        let mut adv = SilentAdversary;
        assert!(Adversary::<u32>::step(&mut adv, &view(&traffic)).is_empty());
    }

    #[test]
    fn fn_adversary_uses_closure() {
        let traffic = traffic(vec![]);
        let mut adv = FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            vec![Directed::new(v.byzantine_ids[0], v.correct_ids[0], 99)]
        });
        let out = adv.step(&view(&traffic));
        assert_eq!(out, vec![Directed::new(NodeId::new(9), NodeId::new(2), 99)]);
    }

    #[test]
    fn crash_adversary_goes_silent_at_crash_round() {
        let traffic = traffic(vec![]);
        let inner = FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            vec![Directed::new(v.byzantine_ids[0], v.correct_ids[0], 1)]
        });
        let mut adv = CrashAdversary::new(inner, 3);
        let mut early = view(&traffic);
        early.round = 2;
        assert_eq!(adv.step(&early).len(), 1);
        let mut late = view(&traffic);
        late.round = 3;
        assert!(adv.step(&late).is_empty());
    }

    #[test]
    fn replay_adversary_copies_template_to_parity_subset() {
        // Template sender is n2 (smallest correct id); it broadcast payload 5. The
        // broadcast is stored compactly; the replay adversary sees its expansion.
        let mut traffic = RoundTraffic::new();
        traffic.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        traffic.push_broadcast(NodeId::new(2), 5u32);
        traffic.push_unicast(Directed::new(NodeId::new(4), NodeId::new(2), 8u32));
        let mut adv = ReplayAdversary::new(true);
        let out = adv.step(&view(&traffic));
        // Only even-raw-id correct recipients (n2, n4) get the replayed payload 5, from n9.
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|m| m.from == NodeId::new(9) && m.payload == 5));
        assert!(out.iter().any(|m| m.to == NodeId::new(2)));
        assert!(out.iter().any(|m| m.to == NodeId::new(4)));
        // Zero-copy forwarding: the replayed messages share the broadcast's one
        // payload allocation instead of cloning it.
        let crate::traffic::TrafficItem::Broadcast { payload, .. } = &traffic.items()[0] else {
            panic!("first item is the broadcast");
        };
        assert!(out
            .iter()
            .all(|m| crate::shared::Shared::ptr_eq(&m.payload, payload)));
    }

    #[test]
    fn view_all_ids_is_sorted_union() {
        let traffic = traffic(vec![]);
        let v = view(&traffic);
        let all = v.all_ids();
        assert_eq!(
            all,
            vec![
                NodeId::new(2),
                NodeId::new(4),
                NodeId::new(5),
                NodeId::new(9)
            ]
        );
    }

    #[test]
    fn view_traffic_to_filters_recipient() {
        let traffic = traffic(vec![
            Directed::new(NodeId::new(2), NodeId::new(4), 1u32),
            Directed::new(NodeId::new(5), NodeId::new(4), 2u32),
            Directed::new(NodeId::new(5), NodeId::new(2), 3u32),
        ]);
        let v = view(&traffic);
        assert_eq!(v.traffic_to(NodeId::new(4)).count(), 2);
        assert_eq!(v.traffic_to(NodeId::new(2)).count(), 1);
    }

    #[test]
    fn view_traffic_expands_broadcasts_lazily() {
        let mut traffic = RoundTraffic::new();
        traffic.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        traffic.push_broadcast(NodeId::new(4), 11u32);
        let v = view(&traffic);
        let expanded: Vec<Directed<u32>> = v.traffic().map(|m| m.to_directed()).collect();
        assert_eq!(expanded.len(), 4, "one copy per member, including n9");
        assert!(expanded.iter().all(|m| m.from == NodeId::new(4)));
        assert_eq!(v.traffic_to(NodeId::new(9)).count(), 1);
    }
}
