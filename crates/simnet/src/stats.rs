//! Summary statistics for experiment results.
//!
//! The Monte-Carlo sweeps in `uba-bench` repeat every scenario over many seeds and
//! need to report the distribution of rounds, messages and violation rates — not just
//! a single run. This module provides the small, dependency-free statistics toolkit
//! those sweeps use: [`Summary`] (mean / standard deviation / quantiles of a sample),
//! [`Histogram`] (fixed-width bins for convergence plots) and [`RateEstimate`]
//! (a proportion with a normal-approximation confidence interval, used for the
//! empirical disagreement probabilities of experiment E7).
//!
//! Everything here is deterministic and uses plain `f64` arithmetic; the statistics
//! describe *measurements*, never protocol state (protocol thresholds stay in exact
//! integer arithmetic, see `uba-core::quorum`).

use serde::{Deserialize, Serialize};

/// Five-number-style summary of a sample of measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0.0 for fewer than two points).
    pub std_dev: f64,
    /// Smallest observation (0.0 for an empty sample).
    pub min: f64,
    /// Largest observation (0.0 for an empty sample).
    pub max: f64,
    /// Median (linear interpolation between the two middle points for even counts).
    pub median: f64,
    /// 95th percentile (nearest-rank with linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Summarises a sample. The input does not need to be sorted.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("statistics inputs must not be NaN"));
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }

    /// Summarises a sample of integer measurements (round counts, message counts).
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f64)
    }

    /// The half-width of a 95% normal-approximation confidence interval on the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }

    /// Renders the summary as `mean ± ci (min..max)` with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        format!(
            "{:.prec$} ± {:.prec$} ({:.prec$}..{:.prec$})",
            self.mean,
            self.ci95_half_width(),
            self.min,
            self.max,
            prec = decimals
        )
    }
}

/// Linear-interpolation quantile of an already sorted, non-empty sample.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let fraction = rank - low as f64;
    sorted[low] + (sorted[high] - sorted[low]) * fraction
}

/// A fixed-width histogram over a closed range, used for convergence and latency
/// distributions in the experiment reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equally sized bins spanning `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "a histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let index = (((value - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[index] += 1;
        }
    }

    /// Records every observation in a slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// The bin counts, lowest bin first.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin lower bound, bin upper bound, count)` triples, lowest bin first.
    pub fn edges(&self) -> Vec<(f64, f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                (
                    self.lo + i as f64 * width,
                    self.lo + (i + 1) as f64 * width,
                    count,
                )
            })
            .collect()
    }
}

/// An empirical proportion (e.g. the observed disagreement rate of experiment E7)
/// with a normal-approximation 95% confidence interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Number of trials in which the event occurred.
    pub successes: u64,
    /// Total number of trials.
    pub trials: u64,
}

impl RateEstimate {
    /// Creates an estimate from raw counts.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "cannot observe more successes than trials"
        );
        RateEstimate { successes, trials }
    }

    /// The observed proportion (0.0 for zero trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Half-width of the 95% normal-approximation (Wald) confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.rate();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Merges another estimate into this one (same event, more trials).
    pub fn merge(&mut self, other: RateEstimate) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Renders as `rate (successes/trials)`.
    pub fn display(&self) -> String {
        format!("{:.3} ({}/{})", self.rate(), self.successes, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample (Bessel-corrected) standard deviation of this classic example.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_single_point_has_zero_spread() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.p95, 3.5);
    }

    #[test]
    fn summary_of_u64_converts() {
        let s = Summary::of_u64(&[1, 2, 3, 4, 5]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        let s = Summary::of(&[
            0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
        ]);
        assert!((s.p95 - 95.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_mean_and_interval() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = s.display(2);
        assert!(text.starts_with("2.00 ± "));
        assert!(text.ends_with("(1.00..3.00)"));
    }

    #[test]
    fn histogram_counts_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.0, 2.5, 9.99, 10.0, -1.0, 42.0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 2]);
        let edges = h.edges();
        assert_eq!(edges.len(), 5);
        assert_eq!(edges[0], (0.0, 2.0, 2));
        assert_eq!(edges[4], (8.0, 10.0, 2));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn rate_estimate_reports_rate_and_interval() {
        let mut rate = RateEstimate::new(3, 10);
        assert!((rate.rate() - 0.3).abs() < 1e-12);
        assert!(rate.ci95_half_width() > 0.0);
        rate.merge(RateEstimate::new(7, 10));
        assert_eq!(rate.successes, 10);
        assert_eq!(rate.trials, 20);
        assert!((rate.rate() - 0.5).abs() < 1e-12);
        assert_eq!(RateEstimate::default().rate(), 0.0);
        assert_eq!(RateEstimate::default().ci95_half_width(), 0.0);
        assert_eq!(rate.display(), "0.500 (10/20)");
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn rate_estimate_rejects_inconsistent_counts() {
        let _ = RateEstimate::new(5, 4);
    }
}
