//! Fault-injection combinators for Byzantine adversaries.
//!
//! The paper's adversary "can behave in any way whatsoever"; the strategies in
//! `adversary` and in `uba-core::adversaries` are hand-crafted worst cases from the
//! proofs. This module adds *combinators* that compose or randomise those strategies,
//! which is how the stress tests and the Monte-Carlo sweeps explore a wider slice of
//! the behaviour space:
//!
//! * [`RoundWindow`] — an adversary active only inside a round interval;
//! * [`StaggeredCrash`] — every Byzantine identity crashes at its own round;
//! * [`Collusion`] — splits the Byzantine identities between two inner strategies;
//! * [`NoiseAdversary`] — seeded random traffic drawn from a payload generator;
//! * [`TamperAdversary`] — edits each injected payload in place through the
//!   copy-on-write [`Shared::modify`](crate::shared::Shared::modify) path (the
//!   message plane's tamper rule: only an actually edited payload pays a clone);
//! * [`RecordingAdversary`] — wraps a strategy and counts what it injected (used by
//!   tests that must assert an attack actually happened).
//!
//! All combinators preserve the engine's rule that a Byzantine message must carry one
//! of the adversary's own identities — they only ever restrict or replay what the
//! inner strategies produce, or generate traffic from identities in the view.

use rand::Rng;

use crate::adversary::{Adversary, AdversaryView};
use crate::id::NodeId;
use crate::message::Directed;
use crate::rng::{seeded_rng, SimRng};

/// Runs the inner adversary only for rounds `from..=to` (inclusive); outside the
/// window the Byzantine nodes are silent.
#[derive(Clone, Debug)]
pub struct RoundWindow<A> {
    inner: A,
    from: u64,
    to: u64,
}

impl<A> RoundWindow<A> {
    /// Restricts `inner` to rounds `from..=to`.
    pub fn new(inner: A, from: u64, to: u64) -> Self {
        assert!(from <= to, "round window must be non-empty");
        RoundWindow { inner, from, to }
    }
}

impl<P, A: Adversary<P>> Adversary<P> for RoundWindow<A> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        if view.round < self.from || view.round > self.to {
            Vec::new()
        } else {
            self.inner.step(view)
        }
    }
}

/// Every Byzantine identity crashes (goes permanently silent) at its own round,
/// derived deterministically from a seed: identity `i` (in the order of
/// `view.byzantine_ids`) crashes at a round drawn uniformly from
/// `[earliest, latest]`. Before its crash round an identity forwards whatever the
/// inner strategy produced for it.
///
/// A staggered crash is the hardest "counted but mute" pattern for the `n_v/3`
/// thresholds: the set of silent members keeps growing, so a quorum that was reachable
/// in one phase may be tighter in the next.
#[derive(Clone, Debug)]
pub struct StaggeredCrash<A> {
    inner: A,
    seed: u64,
    earliest: u64,
    latest: u64,
}

impl<A> StaggeredCrash<A> {
    /// Creates the combinator; crash rounds are drawn from `[earliest, latest]`.
    pub fn new(inner: A, seed: u64, earliest: u64, latest: u64) -> Self {
        assert!(earliest <= latest, "crash interval must be non-empty");
        StaggeredCrash {
            inner,
            seed,
            earliest,
            latest,
        }
    }

    /// The (deterministic) crash round of the `index`-th Byzantine identity.
    pub fn crash_round(&self, index: usize) -> u64 {
        let mut rng = seeded_rng(
            self.seed
                .wrapping_add(index as u64)
                .wrapping_mul(0x9E37_79B9),
        );
        rng.gen_range(self.earliest..=self.latest)
    }
}

impl<P, A: Adversary<P>> Adversary<P> for StaggeredCrash<A> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let crashed: Vec<NodeId> = view
            .byzantine_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| view.round >= self.crash_round(*i))
            .map(|(_, &id)| id)
            .collect();
        self.inner
            .step(view)
            .into_iter()
            .filter(|msg| !crashed.contains(&msg.from))
            .collect()
    }
}

/// Splits the Byzantine identities between two inner strategies: the first
/// `first_count` identities are driven by `first`, the rest by `second`. Each inner
/// strategy sees a view restricted to its own identities, so the two halves can run
/// completely different attacks in the same execution (e.g. equivocate on votes while
/// the other half poisons the candidate set).
pub struct Collusion<A, B> {
    first: A,
    second: B,
    first_count: usize,
}

impl<A, B> Collusion<A, B> {
    /// Creates a collusion of `first` (driving the first `first_count` identities)
    /// and `second` (driving the remainder).
    pub fn new(first: A, first_count: usize, second: B) -> Self {
        Collusion {
            first,
            second,
            first_count,
        }
    }
}

impl<P, A: Adversary<P>, B: Adversary<P>> Adversary<P> for Collusion<A, B> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let split = self.first_count.min(view.byzantine_ids.len());
        let (first_ids, second_ids) = view.byzantine_ids.split_at(split);
        let first_view = AdversaryView {
            round: view.round,
            correct_ids: view.correct_ids,
            byzantine_ids: first_ids,
            correct_traffic: view.correct_traffic,
        };
        let second_view = AdversaryView {
            round: view.round,
            correct_ids: view.correct_ids,
            byzantine_ids: second_ids,
            correct_traffic: view.correct_traffic,
        };
        let mut out = self.first.step(&first_view);
        out.extend(self.second.step(&second_view));
        out
    }
}

/// Seeded random traffic: each round, every Byzantine identity sends a generated
/// payload to each correct node independently with probability `rate`. The payload
/// generator receives the RNG and the recipient, so it can produce per-recipient
/// (equivocating) garbage.
///
/// The noise adversary is the "fuzzing" end of the spectrum — it rarely finds the
/// worst case on its own, but it exercises parsing and counting paths that the
/// targeted strategies never touch, and it composes well with [`Collusion`].
pub struct NoiseAdversary<P, G>
where
    G: FnMut(&mut SimRng, NodeId) -> P,
{
    rng: SimRng,
    rate: f64,
    generator: G,
}

impl<P, G> NoiseAdversary<P, G>
where
    G: FnMut(&mut SimRng, NodeId) -> P,
{
    /// Creates a noise adversary sending to each `(byzantine, correct)` pair with the
    /// given per-round probability.
    pub fn new(seed: u64, rate: f64, generator: G) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        NoiseAdversary {
            rng: seeded_rng(seed),
            rate,
            generator,
        }
    }
}

impl<P, G> Adversary<P> for NoiseAdversary<P, G>
where
    P: std::hash::Hash,
    G: FnMut(&mut SimRng, NodeId) -> P,
{
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for &to in view.correct_ids {
                if self.rng.gen_bool(self.rate) {
                    let payload = (self.generator)(&mut self.rng, to);
                    out.push(Directed::new(from, to, payload));
                }
            }
        }
        out
    }
}

/// Wraps an adversary and edits each injected message's payload in place,
/// through the message plane's copy-on-write path ([`Shared::modify`](crate::shared::Shared::modify)): a
/// payload whose handle is shared (e.g. an inner strategy replaying honest
/// traffic, or fanning one fabrication out to many recipients) is cloned
/// exactly once at the first edit; a payload the inner strategy owns uniquely
/// is mutated in place, paying nothing. This is the generic "corrupt what you
/// relay" attacker — compose it over [`crate::adversary::ReplayAdversary`] to
/// turn zero-copy replay into a tampering man-in-the-middle.
pub struct TamperAdversary<A, F> {
    inner: A,
    tamper: F,
}

impl<A, F> TamperAdversary<A, F> {
    /// Wraps `inner`; `tamper` receives the round, the recipient and the
    /// payload to edit.
    pub fn new(inner: A, tamper: F) -> Self {
        TamperAdversary { inner, tamper }
    }
}

impl<P, A, F> Adversary<P> for TamperAdversary<A, F>
where
    P: Clone + std::hash::Hash,
    A: Adversary<P>,
    F: FnMut(u64, NodeId, &mut P),
{
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let mut out = self.inner.step(view);
        for message in &mut out {
            message
                .payload
                .modify(|payload| (self.tamper)(view.round, message.to, payload));
        }
        out
    }
}

/// Wraps an adversary and records, per round, how many messages it injected. Tests
/// that claim "the protocol survived attack X" use this to also assert that attack X
/// actually produced traffic — a regression in an attack strategy would otherwise
/// silently turn the test into a no-fault run.
pub struct RecordingAdversary<A> {
    inner: A,
    injected_per_round: Vec<(u64, usize)>,
}

impl<A> RecordingAdversary<A> {
    /// Wraps `inner`.
    pub fn new(inner: A) -> Self {
        RecordingAdversary {
            inner,
            injected_per_round: Vec::new(),
        }
    }

    /// `(round, injected message count)` pairs, in execution order.
    pub fn injected_per_round(&self) -> &[(u64, usize)] {
        &self.injected_per_round
    }

    /// Total messages injected so far.
    pub fn total_injected(&self) -> usize {
        self.injected_per_round.iter().map(|(_, c)| c).sum()
    }

    /// Consumes the wrapper and returns the inner adversary.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<P, A: Adversary<P>> Adversary<P> for RecordingAdversary<A> {
    fn step(&mut self, view: &AdversaryView<'_, P>) -> Vec<Directed<P>> {
        let out = self.inner.step(view);
        self.injected_per_round.push((view.round, out.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FnAdversary;
    use crate::traffic::RoundTraffic;

    static CORRECT: [NodeId; 3] = [NodeId::new(2), NodeId::new(4), NodeId::new(5)];
    static BYZ: [NodeId; 2] = [NodeId::new(90), NodeId::new(91)];

    fn view(round: u64, traffic: &RoundTraffic<u32>) -> AdversaryView<'_, u32> {
        AdversaryView {
            round,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    /// An adversary where every Byzantine identity sends `7` to every correct node.
    fn flooder() -> impl Adversary<u32> {
        FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            let mut out = Vec::new();
            for &from in v.byzantine_ids {
                for &to in v.correct_ids {
                    out.push(Directed::new(from, to, 7u32));
                }
            }
            out
        })
    }

    #[test]
    fn round_window_restricts_activity() {
        let mut adv = RoundWindow::new(flooder(), 2, 3);
        let t = RoundTraffic::from_directed(vec![]);
        assert!(adv.step(&view(1, &t)).is_empty());
        assert_eq!(adv.step(&view(2, &t)).len(), 6);
        assert_eq!(adv.step(&view(3, &t)).len(), 6);
        assert!(adv.step(&view(4, &t)).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn round_window_rejects_inverted_interval() {
        let _ = RoundWindow::new(flooder(), 5, 4);
    }

    #[test]
    fn staggered_crash_is_deterministic_and_monotone() {
        let adv = StaggeredCrash::new(flooder(), 11, 2, 6);
        let again = StaggeredCrash::new(flooder(), 11, 2, 6);
        for i in 0..4 {
            assert_eq!(
                adv.crash_round(i),
                again.crash_round(i),
                "same seed, same schedule"
            );
            assert!((2..=6).contains(&adv.crash_round(i)));
        }
    }

    #[test]
    fn staggered_crash_silences_identities_after_their_round() {
        let mut adv = StaggeredCrash::new(flooder(), 3, 2, 4);
        let t = RoundTraffic::from_directed(vec![]);
        // Before any crash round everyone floods.
        assert_eq!(adv.step(&view(1, &t)).len(), 6);
        // Far past the latest crash round, everyone is silent.
        assert!(adv.step(&view(100, &t)).is_empty());
        // In between, only non-crashed identities speak.
        let crash0 = adv.crash_round(0);
        let mid = adv.step(&view(crash0, &t));
        assert!(
            mid.iter().all(|m| m.from != BYZ[0]),
            "identity 0 is silent from its crash round"
        );
    }

    #[test]
    fn collusion_splits_identities_between_strategies() {
        let first = FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            v.byzantine_ids
                .iter()
                .map(|&from| Directed::new(from, CORRECT[0], 1u32))
                .collect()
        });
        let second = FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            v.byzantine_ids
                .iter()
                .map(|&from| Directed::new(from, CORRECT[1], 2u32))
                .collect()
        });
        let mut adv = Collusion::new(first, 1, second);
        let t = RoundTraffic::from_directed(vec![]);
        let out = adv.step(&view(1, &t));
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Directed::new(BYZ[0], CORRECT[0], 1)));
        assert!(out.contains(&Directed::new(BYZ[1], CORRECT[1], 2)));
    }

    #[test]
    fn collusion_with_oversized_split_gives_everything_to_first() {
        let first = flooder();
        let second = FnAdversary::new(|_: &AdversaryView<'_, u32>| vec![]);
        let mut adv = Collusion::new(first, 10, second);
        let t = RoundTraffic::from_directed(vec![]);
        assert_eq!(adv.step(&view(1, &t)).len(), 6);
    }

    #[test]
    fn noise_adversary_is_seed_deterministic_and_rate_bounded() {
        let run = |seed: u64| {
            let mut adv =
                NoiseAdversary::new(seed, 0.5, |rng: &mut SimRng, _to| rng.gen_range(0u32..100));
            let t = RoundTraffic::from_directed(vec![]);
            let mut all = Vec::new();
            for round in 1..=20 {
                all.extend(adv.step(&view(round, &t)));
            }
            all
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the same noise");
        let c = run(8);
        assert_ne!(a, c, "different seeds should differ");
        // 2 byzantine × 3 correct × 20 rounds = 120 opportunities at rate 0.5.
        assert!(!a.is_empty() && a.len() < 120);
        assert!(a
            .iter()
            .all(|m| BYZ.contains(&m.from) && CORRECT.contains(&m.to)));
    }

    #[test]
    fn noise_rate_zero_and_one_are_exact() {
        let t = RoundTraffic::from_directed(vec![]);
        let mut silent = NoiseAdversary::new(1, 0.0, |_: &mut SimRng, _| 0u32);
        assert!(silent.step(&view(1, &t)).is_empty());
        let mut full = NoiseAdversary::new(1, 1.0, |_: &mut SimRng, _| 0u32);
        assert_eq!(full.step(&view(1, &t)).len(), 6);
    }

    #[test]
    fn tamper_adversary_edits_through_copy_on_write() {
        use crate::adversary::ReplayAdversary;
        use crate::traffic::TrafficItem;

        // The template correct node (n2, the smallest id) broadcasts 100; the
        // replay adversary forwards the *handle* to the even-raw-id correct
        // nodes, and the tamper wrapper corrupts each forwarded copy.
        let mut traffic = RoundTraffic::new();
        traffic.begin_round(CORRECT.iter().copied().chain(BYZ.iter().copied()));
        traffic.push_broadcast(CORRECT[0], 100u32);

        let before = crate::shared::allocations();
        let mut adv =
            TamperAdversary::new(ReplayAdversary::new(true), |round, _to, p: &mut u32| {
                *p += round as u32;
            });
        let out = adv.step(&view(3, &traffic));
        // Replay reaches the even-raw-id correct nodes (n2, n4) per Byzantine
        // identity: 2 × 2 messages, every payload tampered to 103.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|m| m.payload == 103));
        // Copy-on-write: every forwarded handle shares the broadcast's one
        // allocation, so each tampered copy pays exactly one clone — and the
        // honest payload in the traffic is untouched.
        assert_eq!(crate::shared::allocations() - before, out.len() as u64);
        let TrafficItem::Broadcast { payload, .. } = &traffic.items()[0] else {
            panic!("broadcast item");
        };
        assert_eq!(*payload, 100u32, "the honest payload is never edited");

        // A uniquely owned payload (fabricated by the inner strategy) is edited
        // in place: the tamper layer adds zero allocations on top.
        let before = crate::shared::allocations();
        let inner = FnAdversary::new(|v: &AdversaryView<'_, u32>| {
            vec![Directed::new(v.byzantine_ids[0], CORRECT[0], 7u32)]
        });
        let mut adv = TamperAdversary::new(inner, |_round, _to, p: &mut u32| *p = 9);
        let out = adv.step(&view(1, &traffic));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 9u32);
        assert_eq!(
            crate::shared::allocations() - before,
            1,
            "one fabrication, zero tamper clones"
        );
    }

    #[test]
    fn recording_adversary_counts_injections() {
        let mut adv = RecordingAdversary::new(RoundWindow::new(flooder(), 2, 2));
        let t = RoundTraffic::from_directed(vec![]);
        adv.step(&view(1, &t));
        adv.step(&view(2, &t));
        adv.step(&view(3, &t));
        assert_eq!(adv.injected_per_round(), &[(1, 0), (2, 6), (3, 0)]);
        assert_eq!(adv.total_injected(), 6);
        let _inner = adv.into_inner();
    }
}
