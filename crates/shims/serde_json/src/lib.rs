//! Offline stand-in for `serde_json`.
//!
//! Renders the shim `serde`'s [`Value`] tree as JSON text and parses JSON text back
//! into it. Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, `null`); integers round-trip at full 64-bit precision and
//! floats through Rust's shortest-round-trip formatting.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no Infinity/NaN; encode as null like serde_json does.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_sequence(out, indent, level, items.iter(), write_value, '[', ']')
        }
        Value::Object(fields) => write_sequence(
            out,
            indent,
            level,
            fields.iter(),
            |(key, value), out, indent, level| {
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(value, out, indent, level);
            },
            '{',
            '}',
        ),
    }
}

fn write_sequence<T>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    let count = items.len();
    for (index, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, indent, level + 1);
        if index + 1 < count {
            out.push(',');
        }
    }
    if count > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences included).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::msg(format!("integer out of range: {text}")));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (value, text) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(18446744073709551615), "18446744073709551615"),
            (Value::I64(-42), "-42"),
            (Value::Str("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(to_string(&value).unwrap(), text);
            assert_eq!(from_str::<Value>(text).unwrap(), value);
        }
    }

    #[test]
    fn floats_round_trip() {
        let text = to_string(&Value::F64(0.1)).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(0.1));
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Value::Object(vec![
            (
                "list".into(),
                Value::Array(vec![Value::U64(1), Value::Null, Value::Bool(false)]),
            ),
            ("empty".into(), Value::Array(vec![])),
            (
                "nested".into(),
                Value::Object(vec![("k".into(), Value::Str("v".into()))]),
            ),
        ]);
        let compact = to_string(&value).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), value);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip_through_text() {
        let xs = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u64, String)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
