//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so the small
//! slice of the `rand` 0.8 API that the workspace actually uses is re-implemented
//! here: the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), [`RngCore`],
//! [`SeedableRng`] and [`seq::SliceRandom`]. The distributions are not bit-compatible
//! with upstream `rand` — the repository only relies on *determinism for a fixed
//! seed*, never on a specific stream — and every generator here is deterministic.

#![forbid(unsafe_code)]

pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from an unconstrained generator draw
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges a value can be drawn from (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Convenience methods available on every [`RngCore`] implementation.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`rng.gen::<u64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range (`rng.gen_range(0..10)`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self.next_u64()) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&a));
            let b: u64 = rng.gen_range(3..=3);
            assert_eq!(b, 3);
            let c: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&c));
            let d: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&d));
        }
    }

    #[test]
    fn bool_extremes_are_exact() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
