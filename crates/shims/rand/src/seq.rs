//! Slice helpers (the subset of `rand::seq` used by the workspace).

use crate::RngCore;

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut values: Vec<u32> = (0..50).collect();
        values.shuffle(&mut Counter(3));
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(values, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut Counter(1)).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut Counter(1)), Some(&42));
    }
}
