//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the shim
//! `serde` crate without `syn`/`quote` (neither is available offline): the item is
//! parsed directly from the raw token stream and the impl is emitted as source text.
//!
//! Supported shapes — the ones that occur in this workspace:
//!
//! * structs with named fields, tuple structs (including newtypes), unit structs;
//! * enums with unit, tuple and struct variants;
//! * type generics without bounds or lifetimes (e.g. `Envelope<P>`), which are
//!   bounded by the respective serde trait in the generated impl;
//! * `#[serde(default)]` on named struct fields: a missing field deserialises
//!   to `Default::default()` instead of erroring, so artifacts written before
//!   a field existed still load. Other `#[serde(...)]` options are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: tolerate the field's absence on deserialize.
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos);

    // Tolerate (and skip) a `where` clause, which ends at the body or semicolon.
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => pos += 1,
            }
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(group.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(group.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                *pos += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B, ...>` returning the type-parameter names; bounds and lifetimes are
/// not supported (none of the serde-derived types in this workspace use them).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    while *pos < tokens.len() && depth > 0 {
        match &tokens[*pos] {
            TokenTree::Punct(punct) => match punct.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expecting_param = true,
                _ => {}
            },
            TokenTree::Ident(ident) if depth == 1 && expecting_param => {
                params.push(ident.to_string());
                expecting_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

/// True for a `serde(...)` attribute body that lists `default`.
fn attribute_requests_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(path)), Some(TokenTree::Group(options)))
            if path.to_string() == "serde" && options.delimiter() == Delimiter::Parenthesis =>
        {
            options
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(opt) if opt.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parses `{ name: Type, ... }` field lists, returning the field names and
/// their `#[serde(default)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        // The attribute/visibility prefix, inspected (not just skipped) so a
        // `#[serde(default)]` marker sticks to its field.
        let mut default = false;
        loop {
            match tokens.get(pos) {
                Some(TokenTree::Punct(punct)) if punct.as_char() == '#' => {
                    if let Some(TokenTree::Group(body)) = tokens.get(pos + 1) {
                        default |= attribute_requests_default(body.stream());
                    }
                    pos += 2;
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    pos += 1;
                    if matches!(
                        tokens.get(pos),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        pos += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            default,
        });
        pos += 1;
        assert!(
            matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        pos += 1;
        // Skip the type, tracking generic-bracket depth so a `,` inside `<...>` does
        // not end the field.
        let mut depth = 0usize;
        while pos < tokens.len() {
            if let TokenTree::Punct(punct) = &tokens[pos] {
                match punct.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the top-level comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0usize;
    for (index, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(punct) = token {
            match punct.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                // A trailing comma does not start a new field.
                ',' if depth == 0 && index + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(
                    parse_named_fields(group.stream())
                        .into_iter()
                        .map(|field| field.name)
                        .collect(),
                )
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(punct) = &tokens[pos] {
                if punct.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}> ",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn generate_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} \
                 ::serde::Value::Object(fields)"
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    let type_name = &item.name;
                    match &variant.fields {
                        VariantFields::Unit => format!(
                            "{type_name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{type_name}::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}\
                             .to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{type_name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}\
                                 .to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binders = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{type_name}::{vname} {{ {binders} }} => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{header}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(item, "Serialize")
    )
}

fn generate_deserialize(item: &Item) -> String {
    let type_name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    if field.default {
                        // `#[serde(default)]`: absence is not an error.
                        format!(
                            "{f}: match __value.field({f:?}) {{ \
                             Ok(__field) => ::serde::Deserialize::from_value(__field)?, \
                             Err(_) => ::core::default::Default::default() }}"
                        )
                    } else {
                        format!("{f}: ::serde::Deserialize::from_value(__value.field({f:?})?)?")
                    }
                })
                .collect();
            format!("Ok({type_name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(1) => {
            format!("Ok({type_name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(__value.element({i}, {n})?)?"))
                .collect();
            format!("Ok({type_name}({}))", inits.join(", "))
        }
        Kind::UnitStruct => format!("Ok({type_name})"),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        VariantFields::Unit => {
                            format!("{vname:?} => Ok({type_name}::{vname}),")
                        }
                        VariantFields::Tuple(1) => format!(
                            "{vname:?} => Ok({type_name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         __payload.element({i}, {n})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => Ok({type_name}::{vname}({})),",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __payload.field({f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => Ok({type_name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = __value.enum_parts()?; let _ = __payload; \
                 match __tag {{ {arms} \
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown {type_name} variant `{{other}}`\"))), }}"
            )
        }
    };
    format!(
        "{header}{{ fn from_value(__value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        header = impl_header(item, "Deserialize")
    )
}
