//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate provides the
//! slice of serde the workspace needs: `#[derive(Serialize, Deserialize)]` plus a
//! JSON-like [`Value`] data model that `serde_json` (the sibling shim) renders to and
//! parses from text. The design intentionally collapses serde's visitor architecture
//! into a tree model — every type serializes *to* a [`Value`] and deserializes *from*
//! one — which is all the experiment reports and scenario specs of this repository
//! require.
//!
//! Data model conventions (matching serde's external JSON encoding):
//!
//! * structs → objects keyed by field name;
//! * newtype structs → the inner value, transparently;
//! * tuple structs and tuples → arrays;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → `{"Variant": <data>}` objects;
//! * `Option` → the value or `null`.

#![forbid(unsafe_code)]

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Error raised when a [`Value`] does not match the shape a type expects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`], or reports the first shape mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, found {value:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::msg(format!("expected signed integer, found {value:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} overflows {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $index:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = match value {
                    Value::Array(items) => items,
                    other => return Err(Error::msg(format!("expected tuple array, found {other:?}"))),
                };
                let expected = [$($index),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected} elements, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$index])?,)+))
            }
        }
    )*};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&Some(5u64).to_value()).unwrap(),
            Some(5)
        );
        let pair = (3u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn full_u64_values_survive() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(false)).is_err());
    }
}
