//! The JSON-like tree every type serializes through.

use crate::Error;

/// A JSON-like value tree.
///
/// Integers keep their full 64-bit precision (`U64`/`I64` are separate from `F64`)
/// because node identifiers in this repository are arbitrary 64-bit values that a
/// float round-trip would corrupt. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

/// Shared `null` used for absent object fields.
const NULL: Value = Value::Null;

impl Value {
    /// The value as an unsigned integer, if it is one (or a non-negative signed one).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a key in an object (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Field access used by derived `Deserialize` impls: errors when `self` is not an
    /// object, and maps an absent key to `null` so `Option` fields deserialize.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => Ok(fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::msg(format!(
                "expected object with field `{key}`, found {other:?}"
            ))),
        }
    }

    /// Array access used by derived `Deserialize` impls on tuple shapes.
    pub fn element(&self, index: usize, expected: usize) -> Result<&Value, Error> {
        let items = self
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array of {expected}, found {self:?}")))?;
        if items.len() != expected {
            return Err(Error::msg(format!(
                "expected array of {expected} elements, found {}",
                items.len()
            )));
        }
        Ok(&items[index])
    }

    /// Splits an externally tagged enum value into `(variant name, payload)`.
    ///
    /// A bare string is a unit variant (payload `null`); a single-key object is a
    /// data-carrying variant.
    pub fn enum_parts(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Str(tag) => Ok((tag, &NULL)),
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            other => Err(Error::msg(format!(
                "expected enum encoding, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert!(v.get("missing").is_none());
        assert_eq!(v.field("missing").unwrap(), &Value::Null);
        assert!(Value::U64(1).field("x").is_err());
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn enum_parts_handles_both_encodings() {
        let unit = Value::Str("Silent".into());
        assert_eq!(unit.enum_parts().unwrap(), ("Silent", &Value::Null));
        let data = Value::Object(vec![("Unicast".into(), Value::U64(9))]);
        let (tag, payload) = data.enum_parts().unwrap();
        assert_eq!(tag, "Unicast");
        assert_eq!(payload.as_u64(), Some(9));
        assert!(Value::U64(3).enum_parts().is_err());
    }

    #[test]
    fn signed_unsigned_conversions() {
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
    }
}
