//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a deterministic, seedable generator under the [`ChaCha8Rng`] name. The
//! implementation is xoshiro256** rather than ChaCha — the repository depends on
//! seed-determinism and platform-stability, not on the ChaCha keystream itself. The
//! output is stable across platforms and releases of this workspace, which is the
//! property the experiment records rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A deterministic, seedable pseudo-random generator (xoshiro256** core).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn output_is_reasonably_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += (rng.next_u64() & 1) as u32;
        }
        assert!((400..600).contains(&ones), "bit bias: {ones}/1000");
    }
}
