//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, [`Criterion`], [`BenchmarkId`],
//! benchmark groups with `sample_size`/`bench_with_input`/`bench_function` and
//! `Bencher::iter`) backed by a simple wall-clock loop: every benchmark runs
//! `sample_size` samples and prints the mean and minimum time per iteration.
//! There is no statistical analysis or HTML report — the point is that
//! `cargo bench` runs and prints comparable numbers without crates.io access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let started = Instant::now();
            black_box(routine());
            self.times.push(started.elapsed());
        }
    }
}

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        times: Vec::new(),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("{label:<50} (no measurements)");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = bencher.times.iter().min().expect("nonempty");
    println!(
        "{label:<50} mean {mean:>12.2?}   min {min:>12.2?}   samples {}",
        bencher.times.len()
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into().id, self.default_sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepts a throughput annotation (ignored by this shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, &mut |bencher| f(bencher, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` over one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("consensus", 3).id, "consensus/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        let mut runs = 0usize;
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("inc", 1), &1, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x + 1
                })
            });
        group.finish();
        assert_eq!(runs, 3);
    }
}
