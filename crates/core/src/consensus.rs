//! Byzantine consensus in `O(f)` rounds without knowing `n` or `f`
//! (Algorithm 3, Section VII).
//!
//! Every correct node starts with an opinion `x_v` (a real number in the paper; any
//! [`Opinion`] type here) and must output a common value that was the input of some
//! correct node; if all correct inputs are equal, that value must be the output
//! (validity). The algorithm generalises the phase-king / rotor-coordinator approach
//! of Berman, Garay and Perry: each *phase* consists of five rounds —
//!
//! 1. broadcast `input(x_v)`;
//! 2. on receiving `≥ 2n_v/3` matching inputs, broadcast `prefer(x)`;
//! 3. on `≥ n_v/3` matching prefers adopt the value, on `≥ 2n_v/3` broadcast
//!    `strongprefer(x)`;
//! 4. execute one round of the rotor-coordinator, distributing the node's current
//!    opinion if it happens to be the selected coordinator;
//! 5. if fewer than `n_v/3` matching strong-prefers arrived, adopt the coordinator's
//!    opinion; if `≥ 2n_v/3` arrived, decide and terminate.
//!
//! Two details of the paper's initialisation matter for liveness and are implemented
//! here exactly as specified: `n_v` is **frozen** after the two initialisation rounds
//! (messages from nodes that did not participate in initialisation are discarded), and
//! a member that was counted during initialisation but stays silent in a later round
//! is assumed to have sent *the same message this node sent in the previous round*
//! (the "missing message substitution" rule) — this keeps the `2n_v/3` thresholds
//! reachable after Byzantine nodes go silent or correct nodes terminate early.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

/// Runtime mutation hooks for mutation-testing the fuzzing stack itself (see
/// `uba_core::reliable_broadcast::mutation` for the pattern). Process-global:
/// integration tests that flip a hook must run alone in their test binary.
pub mod mutation {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// When set, a node that observes a *clean equivocation pair* in its input
    /// tally — one sender voting exactly two distinct values, each of which is
    /// also supported by at least one single-valued voter — decides the smaller
    /// of the pair immediately, skipping the strong-prefer and rotor safeguards.
    ///
    /// The trigger shape is deliberately out of reach of every scripted
    /// behaviour: the preset split-vote and the `Semantic`/`Equivocate`
    /// partitions send *one* value per recipient (no per-sender pair), and the
    /// `Noise` scatter only pairs values alongside the saturating garbage vote
    /// from the same sender (value-set size 3, or a garbage value with no
    /// single-valued supporter). Only an adaptive adversary that concentrates
    /// the full plausible vocabulary — valid plus the boundary pair, no
    /// garbage — on a single victim (`AdaptiveStrategy::StarveWeakest`)
    /// produces the clean pair.
    pub static DECIDE_ON_EQUIVOCATION_PAIR: AtomicBool = AtomicBool::new(false);

    /// Whether the equivocation-pair early-decide mutation is active.
    pub fn decide_on_equivocation_pair() -> bool {
        DECIDE_ON_EQUIVOCATION_PAIR.load(Ordering::Relaxed)
    }

    /// Enables or disables the equivocation-pair early-decide mutation.
    pub fn set_decide_on_equivocation_pair(enabled: bool) {
        DECIDE_ON_EQUIVOCATION_PAIR.store(enabled, Ordering::Relaxed);
    }
}

use crate::membership::SenderTracker;
use crate::quorum::{meets_one_third, meets_two_thirds};
use crate::rotor::{RotorMessage, RotorState};
use crate::value::Opinion;
use crate::vote::VoteTally;

/// Wire messages of the consensus protocol.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsensusMessage<V> {
    /// Rotor initialisation (round 1).
    Init,
    /// Rotor candidate echo (round 2 and rotor rounds).
    Echo(NodeId),
    /// Coordinator opinion (rotor rounds).
    Opinion(V),
    /// Phase step 1: the node's current opinion.
    Input(V),
    /// Phase step 2: weak preference.
    Prefer(V),
    /// Phase step 3: strong preference.
    StrongPrefer(V),
}

/// The decision produced by a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision<V> {
    /// The decided value.
    pub value: V,
    /// The phase (1-based) in which the node decided.
    pub phase: u64,
    /// The network round in which the node decided.
    pub round: u64,
}

/// Where a node is inside the five-round phase structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseStep {
    /// Broadcast `input(x_v)`.
    Input,
    /// Receive inputs, broadcast `prefer`.
    Prefer,
    /// Receive prefers, broadcast `strongprefer`.
    StrongPrefer,
    /// Receive strong-prefers (stashed), execute a rotor round.
    Rotor,
    /// Receive rotor opinions, apply the strong-prefer rule, possibly decide.
    Resolve,
}

impl PhaseStep {
    fn from_round(round: u64) -> Option<PhaseStep> {
        if round < 3 {
            return None;
        }
        Some(match (round - 3) % 5 {
            0 => PhaseStep::Input,
            1 => PhaseStep::Prefer,
            2 => PhaseStep::StrongPrefer,
            3 => PhaseStep::Rotor,
            _ => PhaseStep::Resolve,
        })
    }
}

/// A node running Algorithm 3.
#[derive(Clone, Debug)]
pub struct Consensus<V: Opinion> {
    id: NodeId,
    /// The node's current opinion `x_v`.
    opinion: V,
    /// The original input (kept for diagnostics).
    input: V,
    senders: SenderTracker,
    rotor: RotorState<V>,
    /// Rotor echoes received since the last rotor round: candidate → distinct voters.
    rotor_echo_buffer: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Strong-prefer tally received in the rotor round, applied in the resolve round.
    stashed_strong: VoteTally<V>,
    /// The coordinator selected in this phase's rotor round.
    phase_coordinator: Option<NodeId>,
    /// Messages this node broadcast in the previous round (for the substitution rule).
    last_broadcast: Vec<ConsensusMessage<V>>,
    /// Members heard from since the start of the current phase. The missing-message
    /// substitution only applies to members *outside* this set: a node that has spoken
    /// at all during the phase (e.g. broadcast its input but then legitimately had no
    /// preference to announce) is never substituted — only nodes that went completely
    /// silent (counted-but-mute Byzantine nodes, or correct nodes that already
    /// terminated) are, which is exactly what keeps the thresholds reachable without
    /// letting a node manufacture quorums out of its own opinion.
    heard_this_phase: BTreeSet<NodeId>,
    decision: Option<Decision<V>>,
    phase: u64,
}

impl<V: Opinion> Consensus<V> {
    /// Creates a consensus node with the given input opinion.
    pub fn new(id: NodeId, input: V) -> Self {
        Consensus {
            id,
            opinion: input.clone(),
            input,
            senders: SenderTracker::new(),
            rotor: RotorState::new(),
            rotor_echo_buffer: BTreeMap::new(),
            stashed_strong: VoteTally::new(),
            phase_coordinator: None,
            last_broadcast: Vec::new(),
            heard_this_phase: BTreeSet::new(),
            decision: None,
            phase: 0,
        }
    }

    /// The node's original input.
    pub fn input(&self) -> &V {
        &self.input
    }

    /// The node's current opinion `x_v`.
    pub fn opinion(&self) -> &V {
        &self.opinion
    }

    /// The frozen membership size `n_v` (0 before initialisation completes).
    pub fn n_v(&self) -> usize {
        self.senders.n_v()
    }

    /// The current phase number (1-based; 0 before the first phase starts).
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The decision, if the node has decided.
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decision.as_ref()
    }

    /// Buffers rotor echoes and returns the (filtered) inbox restricted to members.
    fn filtered<'a>(
        &self,
        inbox: &'a [Envelope<ConsensusMessage<V>>],
    ) -> Vec<&'a Envelope<ConsensusMessage<V>>> {
        inbox
            .iter()
            .filter(|e| self.senders.contains(e.from))
            .collect()
    }

    fn buffer_rotor_echoes(&mut self, inbox: &[Envelope<ConsensusMessage<V>>]) {
        for envelope in inbox {
            if !self.senders.contains(envelope.from) {
                continue;
            }
            if let ConsensusMessage::Echo(candidate) = envelope.payload() {
                self.rotor_echo_buffer
                    .entry(*candidate)
                    .or_default()
                    .insert(envelope.from);
            }
        }
    }

    /// Tallies the votes of one message kind in this round's inbox, applying the
    /// missing-message substitution rule: every frozen member that has been silent
    /// *for the entire current phase* is assumed to have sent whatever this node
    /// broadcast in the previous round. Members that spoke at any point during the
    /// phase are never substituted, even if they sent nothing this particular round.
    fn tally_with_substitution<F>(
        &self,
        inbox: &[&Envelope<ConsensusMessage<V>>],
        extract: F,
    ) -> VoteTally<V>
    where
        F: Fn(&ConsensusMessage<V>) -> Option<&V>,
    {
        let mut tally = VoteTally::new();
        for envelope in inbox {
            if let Some(value) = extract(envelope.payload()) {
                tally.insert(envelope.from, value.clone());
            }
        }
        // Substitution: members silent for the whole phase are assumed to have sent
        // what we sent in the previous round.
        let substitutes: Vec<&V> = self.last_broadcast.iter().filter_map(extract).collect();
        if !substitutes.is_empty() {
            for member in self.senders.members() {
                if !self.heard_this_phase.contains(&member) {
                    for value in &substitutes {
                        tally.insert(member, (*value).clone());
                    }
                }
            }
        }
        tally
    }
}

impl<V: Opinion> Recoverable for Consensus<V> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<V: Opinion> Protocol for Consensus<V> {
    type Payload = ConsensusMessage<V>;
    type Output = Decision<V>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<ConsensusMessage<V>>],
    ) -> Vec<Outgoing<ConsensusMessage<V>>> {
        if self.decision.is_some() {
            return Vec::new();
        }

        // Membership: grows during initialisation (rounds 1–3), frozen afterwards.
        self.senders.record_inbox(inbox);

        let out: Vec<ConsensusMessage<V>> = match ctx.round {
            // Round 1: rotor initialisation — announce presence / willingness.
            1 => vec![ConsensusMessage::Init],
            // Round 2: echo every init received (rotor line 4).
            2 => inbox
                .iter()
                .filter(|e| e.payload == ConsensusMessage::Init)
                .map(|e| ConsensusMessage::Echo(e.from))
                .collect(),
            _ => {
                // Round 3 is the first loop round: n_v is initialised from everything
                // seen during rounds 1–3 and frozen ("later, a node only accepts
                // messages from a node if it counted towards n_v").
                if ctx.round == 3 {
                    self.senders.freeze();
                }
                // Rotor echoes can arrive in any round (they are broadcast during the
                // initialisation echo round and during rotor rounds); buffer them for
                // the next rotor round.
                self.buffer_rotor_echoes(inbox);

                let inbox = self.filtered(inbox);
                let n_v = self.senders.n_v();
                let step = PhaseStep::from_round(ctx.round).expect("round ≥ 3");
                if step == PhaseStep::Input {
                    // A new phase starts: forget who spoke in the previous one. The
                    // inbox of the input round carries no phase traffic (the resolve
                    // step broadcasts nothing), so recording starts from the next round.
                    self.heard_this_phase.clear();
                } else {
                    self.heard_this_phase.extend(inbox.iter().map(|e| e.from));
                }

                match step {
                    PhaseStep::Input => {
                        self.phase += 1;
                        self.phase_coordinator = None;
                        self.stashed_strong = VoteTally::new();
                        vec![ConsensusMessage::Input(self.opinion.clone())]
                    }
                    PhaseStep::Prefer => {
                        let tally = self.tally_with_substitution(&inbox, |m| match m {
                            ConsensusMessage::Input(v) => Some(v),
                            _ => None,
                        });
                        if mutation::decide_on_equivocation_pair() && self.decision.is_none() {
                            if let Some(value) = clean_equivocation_pair(&tally) {
                                self.decision = Some(Decision {
                                    value,
                                    phase: self.phase,
                                    round: ctx.round,
                                });
                            }
                        }
                        let mut out = Vec::new();
                        for (value, count) in tally.iter().map(|(v, s)| (v, s.len())) {
                            if meets_two_thirds(count, n_v) {
                                out.push(ConsensusMessage::Prefer(value.clone()));
                            }
                        }
                        out
                    }
                    PhaseStep::StrongPrefer => {
                        let tally = self.tally_with_substitution(&inbox, |m| match m {
                            ConsensusMessage::Prefer(v) => Some(v),
                            _ => None,
                        });
                        let mut out = Vec::new();
                        // Line 8–10: adopt a value with n_v/3 support.
                        if let Some((value, count)) = tally.plurality() {
                            if meets_one_third(count, n_v) {
                                self.opinion = value.clone();
                            }
                        }
                        // Line 11–13: strong-prefer a value with 2n_v/3 support.
                        for (value, count) in tally.iter().map(|(v, s)| (v, s.len())) {
                            if meets_two_thirds(count, n_v) {
                                out.push(ConsensusMessage::StrongPrefer(value.clone()));
                            }
                        }
                        out
                    }
                    PhaseStep::Rotor => {
                        // The strong-prefer messages physically arrive in this round;
                        // their effect is applied in the resolve round (line 15–21).
                        self.stashed_strong = self.tally_with_substitution(&inbox, |m| match m {
                            ConsensusMessage::StrongPrefer(v) => Some(v),
                            _ => None,
                        });
                        // Line 14: execute one rotor round with the buffered echoes.
                        let echo_votes = std::mem::take(&mut self.rotor_echo_buffer);
                        let rotor_out = self.rotor.loop_round(
                            self.id,
                            &self.opinion,
                            n_v,
                            &echo_votes,
                            &BTreeMap::new(),
                        );
                        self.phase_coordinator = self.rotor.current_coordinator();
                        rotor_out
                            .into_iter()
                            .map(|m| match m {
                                RotorMessage::Init => ConsensusMessage::Init,
                                RotorMessage::Echo(p) => ConsensusMessage::Echo(p),
                                RotorMessage::Opinion(v) => ConsensusMessage::Opinion(v),
                            })
                            .collect()
                    }
                    PhaseStep::Resolve => {
                        // The coordinator's opinion (broadcast in the rotor round)
                        // arrives now.
                        let coordinator_opinion = self.phase_coordinator.and_then(|p| {
                            inbox.iter().find_map(|e| match (e.payload(), e.from) {
                                (ConsensusMessage::Opinion(v), from) if from == p => {
                                    Some(v.clone())
                                }
                                _ => None,
                            })
                        });
                        let strongest =
                            self.stashed_strong.plurality().map(|(v, c)| (v.clone(), c));
                        match strongest {
                            // Line 19–21: decide on 2n_v/3 strong support.
                            Some((value, count)) if meets_two_thirds(count, n_v) => {
                                self.decision = Some(Decision {
                                    value,
                                    phase: self.phase,
                                    round: ctx.round,
                                });
                            }
                            // Line 15–18: too little strong support — follow the
                            // coordinator.
                            Some((_, count)) if !meets_one_third(count, n_v) => {
                                if let Some(c) = coordinator_opinion {
                                    self.opinion = c;
                                }
                            }
                            None => {
                                if let Some(c) = coordinator_opinion {
                                    self.opinion = c;
                                }
                            }
                            // n_v/3 ≤ support < 2n_v/3: keep the current opinion.
                            Some(_) => {}
                        }
                        Vec::new()
                    }
                }
            }
        };

        self.last_broadcast = out.clone();
        out.into_iter().map(Outgoing::broadcast).collect()
    }

    fn output(&self) -> Option<Decision<V>> {
        self.decision.clone()
    }
}

/// Detects the [`mutation::DECIDE_ON_EQUIVOCATION_PAIR`] trigger in an input
/// tally: a sender whose voted value-set is exactly a pair `{a, b}`, where each
/// of `a` and `b` also has at least one supporter that voted *only* that value.
/// Returns the smaller value of the first qualifying pair (senders iterate in
/// identifier order, so the witness is deterministic).
fn clean_equivocation_pair<V: Opinion>(tally: &VoteTally<V>) -> Option<V> {
    let mut by_sender: BTreeMap<NodeId, Vec<&V>> = BTreeMap::new();
    for (value, senders) in tally.iter() {
        for &sender in senders {
            by_sender.entry(sender).or_default().push(value);
        }
    }
    let single_valued: BTreeSet<&V> = by_sender
        .values()
        .filter(|values| values.len() == 1)
        .map(|values| values[0])
        .collect();
    by_sender.values().find_map(|values| match values[..] {
        [a, b] if single_valued.contains(a) && single_valued.contains(b) => {
            Some(a.clone().min(b.clone()))
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    type Msg = ConsensusMessage<u64>;

    fn check_agreement_and_validity(decisions: &[Decision<u64>], inputs: &[u64]) {
        assert!(!decisions.is_empty());
        let value = decisions[0].value;
        assert!(
            decisions.iter().all(|d| d.value == value),
            "agreement violated: {decisions:?}"
        );
        assert!(
            inputs.contains(&value),
            "validity violated: decided {value} not among correct inputs {inputs:?}"
        );
        if inputs.iter().all(|&i| i == inputs[0]) {
            assert_eq!(value, inputs[0], "unanimous inputs must be decided");
        }
    }

    fn run_consensus<A>(
        inputs: &[u64],
        byzantine: usize,
        adversary: A,
        seed: u64,
    ) -> Vec<Decision<u64>>
    where
        A: uba_simnet::Adversary<Msg>,
    {
        let ids = IdSpace::default().generate(inputs.len() + byzantine, seed);
        let byz: Vec<NodeId> = ids[inputs.len()..].to_vec();
        let nodes: Vec<_> = ids[..inputs.len()]
            .iter()
            .zip(inputs)
            .map(|(&id, &input)| Consensus::new(id, input))
            .collect();
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine
            .run_to_termination(60 * (inputs.len() + byzantine) as u64 + 100)
            .expect("consensus terminates");
        let decisions: Vec<Decision<u64>> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        check_agreement_and_validity(&decisions, inputs);
        decisions
    }

    #[test]
    fn unanimous_inputs_decide_in_one_phase() {
        let decisions = run_consensus(&[7; 5], 0, SilentAdversary, 1);
        assert!(decisions.iter().all(|d| d.value == 7));
        assert!(
            decisions.iter().all(|d| d.phase == 1),
            "unanimity decides in the first phase"
        );
    }

    #[test]
    fn split_inputs_reach_agreement_without_faults() {
        run_consensus(&[0, 1, 0, 1, 0, 1, 1], 0, SilentAdversary, 2);
    }

    #[test]
    fn silent_byzantine_nodes_do_not_block_termination() {
        // 7 correct, 2 byzantine that announce themselves in round 1 (so they are
        // counted in n_v) and then stay silent forever. The substitution rule keeps
        // the thresholds reachable.
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            if view.round == 1 {
                let mut out = Vec::new();
                for &from in view.byzantine_ids {
                    for &to in view.correct_ids {
                        out.push(Directed::new(from, to, ConsensusMessage::Init));
                    }
                }
                out
            } else {
                Vec::new()
            }
        });
        run_consensus(&[1, 0, 1, 0, 1, 1, 0], 2, adversary, 3);
    }

    #[test]
    fn equivocating_byzantine_inputs_do_not_break_agreement() {
        // Byzantine nodes participate in initialisation and then send input/prefer/
        // strong-prefer messages with conflicting values to different nodes.
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            let mut out = Vec::new();
            for (b, &from) in view.byzantine_ids.iter().enumerate() {
                for (i, &to) in view.correct_ids.iter().enumerate() {
                    let value = ((i + b) % 2) as u64;
                    let payload = match view.round {
                        1 => ConsensusMessage::Init,
                        2 => ConsensusMessage::Echo(from),
                        r if (r - 3) % 5 == 0 => ConsensusMessage::Input(value),
                        r if (r - 3) % 5 == 1 => ConsensusMessage::Prefer(value),
                        r if (r - 3) % 5 == 2 => ConsensusMessage::StrongPrefer(value),
                        r if (r - 3) % 5 == 3 => ConsensusMessage::Opinion(value),
                        _ => continue,
                    };
                    out.push(Directed::new(from, to, payload));
                }
            }
            out
        });
        run_consensus(&[0, 1, 1, 0, 1, 0, 0, 1, 1], 2, adversary, 4);
    }

    #[test]
    fn round_complexity_is_linear_in_f() {
        // With f silent-after-announcement Byzantine nodes the number of phases is
        // O(f): a correct coordinator is reached within f + 1 rotor selections.
        for &(n_correct, f) in &[(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
            let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
                if view.round == 1 {
                    let mut out = Vec::new();
                    for &from in view.byzantine_ids {
                        for &to in view.correct_ids {
                            out.push(Directed::new(from, to, ConsensusMessage::Init));
                        }
                    }
                    out
                } else {
                    Vec::new()
                }
            });
            let inputs: Vec<u64> = (0..n_correct).map(|i| (i % 2) as u64).collect();
            let decisions = run_consensus(&inputs, f, adversary, 50 + f as u64);
            let max_round = decisions.iter().map(|d| d.round).max().unwrap();
            assert!(
                max_round <= 3 + 5 * (f as u64 + 3),
                "consensus with f = {f} should finish within O(f) phases, took round {max_round}"
            );
        }
    }

    #[test]
    fn opinion_accessors_reflect_state() {
        let node = Consensus::new(NodeId::new(9), 42u64);
        assert_eq!(*node.input(), 42);
        assert_eq!(*node.opinion(), 42);
        assert_eq!(node.phase(), 0);
        assert_eq!(node.n_v(), 0);
        assert!(node.decision().is_none());
    }

    #[test]
    fn phase_step_schedule_is_five_rounds() {
        assert_eq!(PhaseStep::from_round(1), None);
        assert_eq!(PhaseStep::from_round(2), None);
        assert_eq!(PhaseStep::from_round(3), Some(PhaseStep::Input));
        assert_eq!(PhaseStep::from_round(4), Some(PhaseStep::Prefer));
        assert_eq!(PhaseStep::from_round(5), Some(PhaseStep::StrongPrefer));
        assert_eq!(PhaseStep::from_round(6), Some(PhaseStep::Rotor));
        assert_eq!(PhaseStep::from_round(7), Some(PhaseStep::Resolve));
        assert_eq!(PhaseStep::from_round(8), Some(PhaseStep::Input));
    }
}
