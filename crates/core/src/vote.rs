//! Vote tallying: counting distinct supporters per value.
//!
//! Every threshold in the paper is of the form "received at least `n_v/3` (or
//! `2n_v/3`) messages *of a particular content*". A [`VoteTally`] counts, per value,
//! the distinct senders supporting it — duplicate votes from the same sender are
//! ignored, matching the model's "duplicate messages from the same node in a round are
//! simply discarded".

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::NodeId;

use crate::quorum::{meets_one_third, meets_two_thirds};
use crate::value::Opinion;

/// Distinct-sender vote counts per value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VoteTally<V: Opinion> {
    votes: BTreeMap<V, BTreeSet<NodeId>>,
}

impl<V: Opinion> VoteTally<V> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        VoteTally {
            votes: BTreeMap::new(),
        }
    }

    /// Records that `voter` supports `value`. Returns true if this was a new vote.
    pub fn insert(&mut self, voter: NodeId, value: V) -> bool {
        self.votes.entry(value).or_default().insert(voter)
    }

    /// Number of distinct supporters of `value`.
    pub fn count(&self, value: &V) -> usize {
        self.votes.get(value).map_or(0, |s| s.len())
    }

    /// Total number of distinct `(voter, value)` pairs recorded.
    pub fn total(&self) -> usize {
        self.votes.values().map(|s| s.len()).sum()
    }

    /// Whether `voter` has voted for `value`.
    pub fn has_voted(&self, voter: NodeId, value: &V) -> bool {
        self.votes.get(value).is_some_and(|s| s.contains(&voter))
    }

    /// Whether `voter` has voted for *any* value.
    pub fn has_voted_any(&self, voter: NodeId) -> bool {
        self.votes.values().any(|s| s.contains(&voter))
    }

    /// The value with the most supporters, ties broken towards the smaller value so
    /// the choice is deterministic. `None` if the tally is empty.
    pub fn plurality(&self) -> Option<(&V, usize)> {
        self.votes
            .iter()
            .map(|(v, s)| (v, s.len()))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
    }

    /// Values whose support meets the `n_v/3` threshold.
    pub fn meeting_one_third(&self, n_v: usize) -> impl Iterator<Item = (&V, usize)> {
        self.votes
            .iter()
            .map(|(v, s)| (v, s.len()))
            .filter(move |&(_, c)| meets_one_third(c, n_v))
    }

    /// Values whose support meets the `2n_v/3` threshold.
    pub fn meeting_two_thirds(&self, n_v: usize) -> impl Iterator<Item = (&V, usize)> {
        self.votes
            .iter()
            .map(|(v, s)| (v, s.len()))
            .filter(move |&(_, c)| meets_two_thirds(c, n_v))
    }

    /// Iterates over `(value, supporter set)` pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, &BTreeSet<NodeId>)> {
        self.votes.iter()
    }

    /// Whether no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn duplicate_votes_from_same_sender_are_ignored() {
        let mut tally = VoteTally::new();
        assert!(tally.insert(id(1), "a"));
        assert!(!tally.insert(id(1), "a"));
        assert!(tally.insert(id(1), "b"));
        assert_eq!(tally.count(&"a"), 1);
        assert_eq!(tally.count(&"b"), 1);
        assert_eq!(tally.total(), 2);
    }

    #[test]
    fn plurality_breaks_ties_towards_smaller_value() {
        let mut tally = VoteTally::new();
        tally.insert(id(1), 5u32);
        tally.insert(id(2), 5u32);
        tally.insert(id(3), 2u32);
        tally.insert(id(4), 2u32);
        let (value, count) = tally.plurality().unwrap();
        assert_eq!((*value, count), (2, 2));
        assert!(VoteTally::<u32>::new().plurality().is_none());
    }

    #[test]
    fn threshold_filters_respect_quorum_math() {
        let mut tally = VoteTally::new();
        for i in 0..4 {
            tally.insert(id(i), "major");
        }
        tally.insert(id(10), "minor");
        // n_v = 9: one third needs 3, two thirds needs 6.
        let one_third: Vec<&&str> = tally.meeting_one_third(9).map(|(v, _)| v).collect();
        assert_eq!(one_third, vec![&"major"]);
        assert_eq!(tally.meeting_two_thirds(9).count(), 0);
        // n_v = 6: two thirds needs 4.
        let two_thirds: Vec<&&str> = tally.meeting_two_thirds(6).map(|(v, _)| v).collect();
        assert_eq!(two_thirds, vec![&"major"]);
    }

    #[test]
    fn voted_queries() {
        let mut tally = VoteTally::new();
        assert!(tally.is_empty());
        tally.insert(id(1), 7u8);
        assert!(tally.has_voted(id(1), &7));
        assert!(!tally.has_voted(id(1), &8));
        assert!(tally.has_voted_any(id(1)));
        assert!(!tally.has_voted_any(id(2)));
        assert!(!tally.is_empty());
        assert_eq!(tally.iter().count(), 1);
    }
}
