//! Per-instance state of the parallel consensus algorithm
//! (`EarlyConsensus(id)`, Algorithm 5, Section X).
//!
//! Parallel consensus lets every correct node submit a *set* of `(identifier, opinion)`
//! pairs and agree on an output pair for every identifier submitted by a correct node
//! — even though nodes do not initially agree on which identifiers exist. Each
//! identifier is handled by one `EarlyConsensus` instance, which is Algorithm 3
//! extended with three mechanisms:
//!
//! * a node that has no input pair for the identifier participates with the opinion
//!   `⊥` (represented as `None` here), and `⊥` outputs are suppressed;
//! * explicit `nopreference` / `nostrongpreference` messages distinguish "I am alive
//!   but have nothing to say" from "I am silent", so the missing-message substitution
//!   of Algorithm 3 can be applied per *message type*;
//! * messages of a type first heard in the second phase or later are discarded, which
//!   is what guarantees that identifiers never submitted by any correct node die out
//!   with `⊥` and produce no output.
//!
//! The instances share the initialisation (membership freeze) and the
//! rotor-coordinator; that shared machinery lives in
//! [`ParallelConsensus`](crate::parallel_consensus::ParallelConsensus), which drives
//! the per-instance [`EarlyConsensus`] state machines defined here.

use std::collections::BTreeSet;

use uba_simnet::NodeId;

use crate::membership::SenderTracker;
use crate::quorum::{meets_one_third, meets_two_thirds};
use crate::value::Opinion;
use crate::vote::VoteTally;

/// Identifier of a parallel-consensus instance (the paper's `id` in `(id, x)` pairs).
pub type InstanceId = u64;

/// Wire messages of parallel consensus. `None` opinions encode the paper's `⊥`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParallelMessage<V> {
    /// Rotor initialisation (round 1).
    Init,
    /// Rotor candidate echo.
    Echo(NodeId),
    /// `id:input(x)` — only ever carries a real opinion, never `⊥`.
    Input(InstanceId, V),
    /// `id:prefer(x)`; `None` is `prefer(⊥)`.
    Prefer(InstanceId, Option<V>),
    /// `id:nopreference`.
    NoPreference(InstanceId),
    /// `id:strongprefer(x)`; `None` is `strongprefer(⊥)`.
    StrongPrefer(InstanceId, Option<V>),
    /// `id:nostrongpreference`.
    NoStrongPreference(InstanceId),
    /// The coordinator's opinion for one instance.
    Opinion(InstanceId, Option<V>),
}

impl<V> ParallelMessage<V> {
    /// The instance this message belongs to, if it is instance-scoped.
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            ParallelMessage::Init | ParallelMessage::Echo(_) => None,
            ParallelMessage::Input(id, _)
            | ParallelMessage::Prefer(id, _)
            | ParallelMessage::NoPreference(id)
            | ParallelMessage::StrongPrefer(id, _)
            | ParallelMessage::NoStrongPreference(id)
            | ParallelMessage::Opinion(id, _) => Some(*id),
        }
    }
}

/// The three counted message kinds of Algorithm 5 (the set `M` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Input,
    Prefer,
    StrongPrefer,
}

/// A vote for an instance: the sender either proposed an opinion (possibly `⊥`) or
/// explicitly declared it has nothing to propose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceVote<V> {
    /// `m(x)` or `m(⊥)`.
    Value(Option<V>),
    /// `nopreference` / `nostrongpreference` — counts as "heard from" but carries no vote.
    Abstain,
}

/// The state of one `EarlyConsensus(id)` instance at one node.
#[derive(Clone, Debug)]
pub struct EarlyConsensus<V: Opinion> {
    instance: InstanceId,
    /// The node's current opinion for this instance (`None` = `⊥`).
    opinion: Option<V>,
    /// The phase (1-based) in which this node started the instance.
    started_phase: u64,
    /// Whether a message of each kind has been received during the first phase.
    seen_in_phase1: [bool; 3],
    /// The most recent message of each kind this node sent, tagged with the phase it
    /// was sent in (`None` = never sent). The substitution rule only ever uses the
    /// vote when it is from the *current* phase; a stale vote must not be replayed on
    /// behalf of members that have since decided and gone silent.
    last_sent: [Option<(u64, InstanceVote<V>)>; 3],
    /// Strong-prefer tally stashed in the rotor round, resolved one round later.
    stashed_strong: VoteTally<Option<V>>,
    /// The decision (`Some(None)` means "decided ⊥" — terminated with no output pair).
    decided: Option<Option<V>>,
    /// Phase in which the decision happened.
    decided_phase: Option<u64>,
}

impl<V: Opinion> EarlyConsensus<V> {
    /// Creates an instance for a pair this node has as input.
    pub fn with_input(instance: InstanceId, opinion: V, phase: u64) -> Self {
        Self::new_inner(instance, Some(opinion), phase)
    }

    /// Creates an instance this node first learned about from the network; it
    /// participates with opinion `⊥`.
    pub fn without_input(instance: InstanceId, phase: u64) -> Self {
        Self::new_inner(instance, None, phase)
    }

    fn new_inner(instance: InstanceId, opinion: Option<V>, phase: u64) -> Self {
        EarlyConsensus {
            instance,
            opinion,
            started_phase: phase.max(1),
            seen_in_phase1: [false; 3],
            last_sent: [None, None, None],
            stashed_strong: VoteTally::new(),
            decided: None,
            decided_phase: None,
        }
    }

    /// The instance identifier.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// The node's current opinion for this instance.
    pub fn opinion(&self) -> &Option<V> {
        &self.opinion
    }

    /// The phase in which the instance was started at this node.
    pub fn started_phase(&self) -> u64 {
        self.started_phase
    }

    /// The decision: `None` = undecided, `Some(None)` = decided `⊥` (no output pair),
    /// `Some(Some(x))` = decided `x`.
    pub fn decision(&self) -> Option<&Option<V>> {
        self.decided.as_ref()
    }

    /// The phase in which the node decided, if it has.
    pub fn decided_phase(&self) -> Option<u64> {
        self.decided_phase
    }

    /// Whether the instance has decided.
    pub fn is_decided(&self) -> bool {
        self.decided.is_some()
    }

    /// Tallies this round's votes of one kind, applying Algorithm 5's reception rules:
    ///
    /// * a kind first heard in phase ≥ 2 is discarded entirely;
    /// * a kind first heard in phase 1 fills `⊥` for every member that sent nothing of
    ///   that kind;
    /// * afterwards, a silent member is substituted with whatever this node itself
    ///   sent for that kind **in the current phase** (possibly an abstention, which
    ///   adds nothing); if this node sent nothing for the kind this phase, the silent
    ///   are read as `⊥`. Replaying a vote from an earlier phase would let a single
    ///   straggler manufacture a unanimous quorum out of its own stale vote once the
    ///   other members have decided and stopped talking — violating agreement.
    fn tally(
        &mut self,
        kind: Kind,
        votes: &[(NodeId, InstanceVote<V>)],
        members: &SenderTracker,
        phase: u64,
    ) -> VoteTally<Option<V>> {
        let idx = kind as usize;
        let mut tally = VoteTally::new();
        let mut heard: BTreeSet<NodeId> = BTreeSet::new();

        let first_contact = !self.seen_in_phase1[idx];
        if first_contact && !votes.is_empty() {
            if phase == 1 {
                self.seen_in_phase1[idx] = true;
            } else {
                // First heard in the second phase or later: discard.
                return tally;
            }
        }

        for (from, vote) in votes {
            heard.insert(*from);
            if let InstanceVote::Value(v) = vote {
                tally.insert(*from, v.clone());
            }
        }

        // A node is "aware" of this kind once it has received it in phase 1 or has
        // itself sent it; only aware nodes substitute for the silent.
        let aware = self.seen_in_phase1[idx] || self.last_sent[idx].is_some();
        if !aware {
            return tally;
        }

        // Substitution for silent members: this node's own vote from the current
        // phase if it cast one, otherwise `⊥`.
        let substitute: Option<InstanceVote<V>> = match &self.last_sent[idx] {
            Some((sent_phase, vote)) if *sent_phase == phase => Some(vote.clone()),
            _ => Some(InstanceVote::Value(None)),
        };
        if let Some(InstanceVote::Value(value)) = substitute {
            for member in members.members() {
                if !heard.contains(&member) {
                    tally.insert(member, value.clone());
                }
            }
        }
        tally
    }

    fn record_sent(&mut self, kind: Kind, phase: u64, vote: InstanceVote<V>) {
        self.last_sent[kind as usize] = Some((phase, vote));
    }

    /// Phase step 1: the node broadcasts its input opinion if it has one (lines 4–6).
    pub fn step_input(&mut self, phase: u64) -> Option<ParallelMessage<V>> {
        if self.decided.is_some() {
            return None;
        }
        match self.opinion.clone() {
            Some(value) => {
                self.record_sent(Kind::Input, phase, InstanceVote::Value(Some(value.clone())));
                Some(ParallelMessage::Input(self.instance, value))
            }
            None => None,
        }
    }

    /// Phase step 2: evaluate the received `input` votes, answer with `prefer` or
    /// `nopreference` (lines 7–11).
    pub fn step_prefer(
        &mut self,
        votes: &[(NodeId, InstanceVote<V>)],
        members: &SenderTracker,
        n_v: usize,
        phase: u64,
    ) -> ParallelMessage<V> {
        let tally = self.tally(Kind::Input, votes, members, phase);
        let preferred = tally
            .iter()
            .map(|(v, s)| (v.clone(), s.len()))
            .find(|(_, count)| meets_two_thirds(*count, n_v));
        match preferred {
            Some((value, _)) => {
                self.record_sent(Kind::Prefer, phase, InstanceVote::Value(value.clone()));
                ParallelMessage::Prefer(self.instance, value)
            }
            None => {
                self.record_sent(Kind::Prefer, phase, InstanceVote::Abstain);
                ParallelMessage::NoPreference(self.instance)
            }
        }
    }

    /// Phase step 3: evaluate the received `prefer` votes, adopt a value with `n_v/3`
    /// support, answer with `strongprefer` or `nostrongpreference` (lines 12–19).
    pub fn step_strong(
        &mut self,
        votes: &[(NodeId, InstanceVote<V>)],
        members: &SenderTracker,
        n_v: usize,
        phase: u64,
    ) -> ParallelMessage<V> {
        let tally = self.tally(Kind::Prefer, votes, members, phase);
        if let Some((value, count)) = tally.plurality() {
            if meets_one_third(count, n_v) {
                self.opinion = value.clone();
            }
        }
        let strong = tally
            .iter()
            .map(|(v, s)| (v.clone(), s.len()))
            .find(|(_, count)| meets_two_thirds(*count, n_v));
        match strong {
            Some((value, _)) => {
                self.record_sent(
                    Kind::StrongPrefer,
                    phase,
                    InstanceVote::Value(value.clone()),
                );
                ParallelMessage::StrongPrefer(self.instance, value)
            }
            None => {
                self.record_sent(Kind::StrongPrefer, phase, InstanceVote::Abstain);
                ParallelMessage::NoStrongPreference(self.instance)
            }
        }
    }

    /// Phase step 4 (rotor round): the `strongprefer` votes physically arrive now and
    /// are stashed for the resolve step.
    pub fn step_rotor_stash(
        &mut self,
        votes: &[(NodeId, InstanceVote<V>)],
        members: &SenderTracker,
        phase: u64,
    ) {
        self.stashed_strong = self.tally(Kind::StrongPrefer, votes, members, phase);
    }

    /// Phase step 5: apply the strong-prefer rule, possibly adopting the coordinator's
    /// opinion or deciding (lines 20–27).
    pub fn step_resolve(&mut self, coordinator_opinion: Option<Option<V>>, n_v: usize, phase: u64) {
        if self.decided.is_some() {
            return;
        }
        let strongest = self.stashed_strong.plurality().map(|(v, c)| (v.clone(), c));
        match strongest {
            Some((value, count)) if meets_two_thirds(count, n_v) => {
                self.decided = Some(value);
                self.decided_phase = Some(phase);
            }
            Some((_, count)) if !meets_one_third(count, n_v) => {
                if let Some(c) = coordinator_opinion {
                    self.opinion = c;
                }
            }
            None => {
                if let Some(c) = coordinator_opinion {
                    self.opinion = c;
                }
            }
            Some(_) => {}
        }
        self.stashed_strong = VoteTally::new();
    }

    /// The output pair, if the instance decided a non-`⊥` value (line 26).
    pub fn output_pair(&self) -> Option<(InstanceId, V)> {
        match &self.decided {
            Some(Some(value)) => Some((self.instance, value.clone())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(ids: &[u64]) -> SenderTracker {
        let mut tracker = SenderTracker::new();
        for &id in ids {
            tracker.record(NodeId::new(id));
        }
        tracker.freeze();
        tracker
    }

    fn value_votes(pairs: &[(u64, Option<u32>)]) -> Vec<(NodeId, InstanceVote<u32>)> {
        pairs
            .iter()
            .map(|&(id, v)| (NodeId::new(id), InstanceVote::Value(v)))
            .collect()
    }

    #[test]
    fn unanimous_instance_decides_its_value_in_one_phase() {
        let m = members(&[1, 2, 3, 4]);
        let mut inst = EarlyConsensus::with_input(7, 9u32, 1);
        assert_eq!(inst.step_input(1), Some(ParallelMessage::Input(7, 9)));
        // Everyone sent input(9).
        let prefer = inst.step_prefer(
            &value_votes(&[(1, Some(9)), (2, Some(9)), (3, Some(9)), (4, Some(9))]),
            &m,
            4,
            1,
        );
        assert_eq!(prefer, ParallelMessage::Prefer(7, Some(9)));
        let strong = inst.step_strong(
            &value_votes(&[(1, Some(9)), (2, Some(9)), (3, Some(9)), (4, Some(9))]),
            &m,
            4,
            1,
        );
        assert_eq!(strong, ParallelMessage::StrongPrefer(7, Some(9)));
        inst.step_rotor_stash(
            &value_votes(&[(1, Some(9)), (2, Some(9)), (3, Some(9)), (4, Some(9))]),
            &m,
            1,
        );
        inst.step_resolve(None, 4, 1);
        assert_eq!(inst.decision(), Some(&Some(9)));
        assert_eq!(inst.output_pair(), Some((7, 9)));
        assert_eq!(inst.decided_phase(), Some(1));
        assert!(inst.is_decided());
        assert_eq!(inst.instance(), 7);
        assert_eq!(inst.started_phase(), 1);
    }

    #[test]
    fn unknown_instance_converges_to_bottom_and_produces_no_output() {
        // The node learned about the instance from a single (Byzantine) input message;
        // no correct node has the pair, so the ⊥ fills dominate and the instance dies.
        let m = members(&[1, 2, 3, 4, 5]);
        let mut inst: EarlyConsensus<u32> = EarlyConsensus::without_input(3, 1);
        assert_eq!(inst.step_input(1), None);
        // Only the Byzantine node 5 sent input(42); members 1–4 are filled with ⊥.
        let prefer = inst.step_prefer(&value_votes(&[(5, Some(42))]), &m, 5, 1);
        assert_eq!(
            prefer,
            ParallelMessage::Prefer(3, None),
            "⊥ reaches the 2n_v/3 quorum"
        );
        // Everyone correct ends up preferring ⊥.
        let strong = inst.step_strong(
            &value_votes(&[(1, None), (2, None), (3, None), (4, None)]),
            &m,
            5,
            1,
        );
        assert_eq!(strong, ParallelMessage::StrongPrefer(3, None));
        inst.step_rotor_stash(
            &value_votes(&[(1, None), (2, None), (3, None), (4, None)]),
            &m,
            1,
        );
        inst.step_resolve(None, 5, 1);
        assert_eq!(inst.decision(), Some(&None));
        assert_eq!(
            inst.output_pair(),
            None,
            "⊥ decisions produce no output pair"
        );
    }

    #[test]
    fn messages_first_heard_in_second_phase_are_discarded() {
        let m = members(&[1, 2, 3, 4]);
        let mut inst: EarlyConsensus<u32> = EarlyConsensus::without_input(9, 2);
        // Strong-prefer votes arrive, but this is phase 2 and the kind was never seen
        // in phase 1 → discarded, no decision.
        inst.step_rotor_stash(
            &value_votes(&[(1, Some(5)), (2, Some(5)), (3, Some(5)), (4, Some(5))]),
            &m,
            2,
        );
        inst.step_resolve(None, 4, 2);
        assert!(inst.decision().is_none());
    }

    #[test]
    fn abstentions_suppress_substitution_for_their_sender() {
        let m = members(&[1, 2, 3, 4, 5, 6]);
        let mut inst = EarlyConsensus::with_input(1, 7u32, 1);
        inst.step_input(1);
        // Nodes 1–3 vote 7, nodes 4–5 abstain explicitly, node 6 is silent.
        // n_v = 6 → two thirds needs 4. Votes: 3 real + 1 substitution (node 6 silent,
        // we sent input(7)) = 4 → prefer(7).
        let mut votes = value_votes(&[(1, Some(7)), (2, Some(7)), (3, Some(7))]);
        votes.push((NodeId::new(4), InstanceVote::Abstain));
        votes.push((NodeId::new(5), InstanceVote::Abstain));
        let prefer = inst.step_prefer(&votes, &m, 6, 1);
        assert_eq!(prefer, ParallelMessage::Prefer(1, Some(7)));
    }

    #[test]
    fn stale_votes_are_not_replayed_for_silent_members_in_later_phases() {
        // Regression: a node whose opinion was reset to ⊥ at the end of phase 1 must
        // not substitute its *phase-1* input(x) for members that decided ⊥ and went
        // silent — that manufactured a unanimous quorum for x at a single straggler
        // and broke agreement (found by the margin-guided search on total-order).
        let m = members(&[1, 2, 3, 4]);
        let mut inst = EarlyConsensus::with_input(199, 1u32, 1);
        inst.step_input(1);
        inst.step_prefer(&value_votes(&[(1, Some(1))]), &m, 4, 1);
        inst.step_strong(&[], &m, 4, 1);
        // The rotor round shows explicit abstentions, so strong support stays below
        // n_v/3 and the node adopts the coordinator's ⊥ opinion.
        let abstentions: Vec<(NodeId, InstanceVote<u32>)> = (2..=4)
            .map(|id| (NodeId::new(id), InstanceVote::Abstain))
            .collect();
        inst.step_rotor_stash(&abstentions, &m, 1);
        inst.step_resolve(Some(None), 4, 1);
        assert_eq!(inst.opinion(), &None);
        assert!(inst.decision().is_none());

        // Phase 2: opinion is ⊥, so the node broadcasts no input; every other member
        // is silent (they already decided ⊥). The silent must be read as ⊥ — not as
        // echoes of this node's stale phase-1 input(1).
        assert_eq!(inst.step_input(2), None);
        let prefer = inst.step_prefer(&[], &m, 4, 2);
        assert_eq!(prefer, ParallelMessage::Prefer(199, None));
    }

    #[test]
    fn coordinator_opinion_is_adopted_when_strong_support_is_low() {
        let m = members(&[1, 2, 3, 4, 5, 6]);
        let mut inst = EarlyConsensus::with_input(2, 1u32, 1);
        inst.step_input(1);
        inst.step_prefer(&value_votes(&[(1, Some(1)), (2, Some(0))]), &m, 6, 1);
        inst.step_strong(&value_votes(&[(1, Some(1))]), &m, 6, 1);
        // Almost everyone explicitly reports "no strong preference", so fewer than
        // n_v/3 strong-prefer votes exist → adopt the coordinator's opinion.
        let abstentions: Vec<(NodeId, InstanceVote<u32>)> = (2..=6)
            .map(|id| (NodeId::new(id), InstanceVote::Abstain))
            .collect();
        inst.step_rotor_stash(&abstentions, &m, 1);
        inst.step_resolve(Some(Some(5)), 6, 1);
        assert_eq!(inst.opinion(), &Some(5));
        assert!(inst.decision().is_none());
    }

    #[test]
    fn message_instance_extraction() {
        assert_eq!(ParallelMessage::<u32>::Init.instance(), None);
        assert_eq!(
            ParallelMessage::<u32>::Echo(NodeId::new(1)).instance(),
            None
        );
        assert_eq!(ParallelMessage::Input(4, 1u32).instance(), Some(4));
        assert_eq!(ParallelMessage::<u32>::NoPreference(6).instance(), Some(6));
        assert_eq!(ParallelMessage::<u32>::Opinion(8, None).instance(), Some(8));
    }
}
