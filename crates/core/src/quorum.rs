//! Threshold arithmetic for the id-only model.
//!
//! The paper's key observation (Section III) is that if every correct node broadcasts
//! in a round, then each correct node `v` receives fewer than `n_v/3` messages from
//! Byzantine nodes — where `n_v` is the number of *distinct nodes that have sent `v`
//! at least one message* — regardless of whether the Byzantine nodes speak up. All
//! algorithms therefore replace the unknown `f` with local `n_v/3` and `2·n_v/3`
//! thresholds.
//!
//! This module centralises those comparisons. The thresholds are fractions, so the
//! comparisons are done in exact integer arithmetic (`3·count ≥ n_v` rather than
//! `count ≥ n_v / 3` with integer or floating-point division), which matches the
//! paper's `≥ n_v/3` and `≥ 2n_v/3` literally for all values of `n_v`.

/// Returns true if `count` messages are "at least `n_v/3`", i.e. `count ≥ n_v/3`.
///
/// Zero messages never meet the threshold: a node that has heard nothing has no
/// evidence at all, even when `n_v` is still zero.
pub fn meets_one_third(count: usize, n_v: usize) -> bool {
    count > 0 && 3 * count >= n_v
}

/// Returns true if `count` messages are "at least `2·n_v/3`", i.e. `count ≥ 2·n_v/3`.
///
/// Zero messages never meet the threshold.
pub fn meets_two_thirds(count: usize, n_v: usize) -> bool {
    count > 0 && 3 * count >= 2 * n_v
}

/// The number of values to trim from each end in the approximate-agreement algorithm:
/// `⌊n_v/3⌋` (Algorithm 4, line 3).
pub fn trim_count(n_v: usize) -> usize {
    n_v / 3
}

/// Maximum number of Byzantine nodes tolerated in a system of `n` nodes under the
/// optimal resiliency `n > 3f`, i.e. `⌈n/3⌉ − 1`.
pub fn max_faults(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.div_ceil(3) - 1
    }
}

/// Whether the global resiliency condition `n > 3f` holds. Only experiment harnesses
/// and baselines may call this — algorithms in the id-only model never know `n` or `f`.
pub fn resilient(n: usize, f: usize) -> bool {
    n > 3 * f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_third_threshold_matches_fraction() {
        // n_v = 9: threshold is 3.
        assert!(!meets_one_third(2, 9));
        assert!(meets_one_third(3, 9));
        // n_v = 10: threshold is 10/3 = 3.33…, so 4 needed.
        assert!(!meets_one_third(3, 10));
        assert!(meets_one_third(4, 10));
        // n_v = 1: a single message suffices.
        assert!(meets_one_third(1, 1));
        // Zero messages never suffice.
        assert!(!meets_one_third(0, 0));
        assert!(!meets_one_third(0, 3));
    }

    #[test]
    fn two_thirds_threshold_matches_fraction() {
        // n_v = 9: threshold is 6.
        assert!(!meets_two_thirds(5, 9));
        assert!(meets_two_thirds(6, 9));
        // n_v = 10: threshold is 20/3 = 6.66…, so 7 needed.
        assert!(!meets_two_thirds(6, 10));
        assert!(meets_two_thirds(7, 10));
        // n_v = 4: threshold is 8/3 = 2.66…, so 3 needed.
        assert!(!meets_two_thirds(2, 4));
        assert!(meets_two_thirds(3, 4));
        assert!(!meets_two_thirds(0, 0));
    }

    #[test]
    fn trim_count_is_floor_of_third() {
        assert_eq!(trim_count(0), 0);
        assert_eq!(trim_count(3), 1);
        assert_eq!(trim_count(4), 1);
        assert_eq!(trim_count(6), 2);
        assert_eq!(trim_count(7), 2);
        assert_eq!(trim_count(100), 33);
    }

    #[test]
    fn max_faults_respects_resiliency() {
        assert_eq!(max_faults(0), 0);
        assert_eq!(max_faults(1), 0);
        assert_eq!(max_faults(3), 0);
        assert_eq!(max_faults(4), 1);
        assert_eq!(max_faults(6), 1);
        assert_eq!(max_faults(7), 2);
        assert_eq!(max_faults(10), 3);
        for n in 1..200 {
            let f = max_faults(n);
            assert!(resilient(n, f), "n = {n}, f = {f} must satisfy n > 3f");
            assert!(
                !resilient(n, f + 1),
                "f = {} must be maximal for n = {n}",
                f + 1
            );
        }
    }

    #[test]
    fn resilient_is_strict() {
        assert!(resilient(4, 1));
        assert!(!resilient(3, 1));
        assert!(!resilient(6, 2));
        assert!(resilient(7, 2));
    }
}
