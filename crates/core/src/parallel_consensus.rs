//! Parallel consensus (Section X): agreeing on every pair submitted by a correct node.
//!
//! [`ParallelConsensus`] is the [`Protocol`] that multiplexes any number of
//! [`EarlyConsensus`] instances — one per submitted pair identifier — over a single
//! sequence of rounds. All instances share the two initialisation rounds (membership
//! freeze) and the rotor-coordinator; a node starts an instance either because it has
//! the pair as input, or lazily when it first hears `id:input`, `id:prefer` or
//! `id:strongprefer` during the first phase (later sightings are discarded, per
//! Algorithm 5's reception rules).
//!
//! Guarantees (Theorem 5), checked by the tests below and experiment E8:
//!
//! * **Validity** — a pair input at *every* correct node is output by every correct node;
//! * **Agreement** — if any correct node outputs `(id, x)`, every correct node does;
//! * **Termination** — every correct node outputs a (possibly empty) set of pairs in a
//!   finite number of rounds.
//!
//! A pair submitted by only *some* correct nodes may or may not be output — but it is
//! output consistently.

use std::collections::{BTreeMap, BTreeSet};

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

use crate::early_consensus::{EarlyConsensus, InstanceId, InstanceVote, ParallelMessage};
use crate::membership::SenderTracker;
use crate::rotor::{RotorMessage, RotorState};
use crate::value::Opinion;

/// The output of a parallel consensus node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelDecision<V> {
    /// The agreed `(identifier, opinion)` pairs (⊥ decisions are omitted).
    pub pairs: BTreeMap<InstanceId, V>,
    /// The phase in which the node terminated.
    pub phase: u64,
    /// The network round in which the node terminated.
    pub round: u64,
}

/// Where a node is inside the five-round phase structure (same schedule as
/// [`crate::consensus::Consensus`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseStep {
    Input,
    Prefer,
    StrongPrefer,
    Rotor,
    Resolve,
}

impl PhaseStep {
    fn from_round(round: u64) -> Option<PhaseStep> {
        if round < 3 {
            return None;
        }
        Some(match (round - 3) % 5 {
            0 => PhaseStep::Input,
            1 => PhaseStep::Prefer,
            2 => PhaseStep::StrongPrefer,
            3 => PhaseStep::Rotor,
            _ => PhaseStep::Resolve,
        })
    }
}

/// A node running the parallel consensus algorithm.
#[derive(Clone, Debug)]
pub struct ParallelConsensus<V: Opinion> {
    id: NodeId,
    /// Input pairs handed to the node at construction.
    inputs: BTreeMap<InstanceId, V>,
    senders: SenderTracker,
    rotor: RotorState<u8>,
    rotor_echo_buffer: BTreeMap<NodeId, BTreeSet<NodeId>>,
    instances: BTreeMap<InstanceId, EarlyConsensus<V>>,
    phase: u64,
    phase_coordinator: Option<NodeId>,
    decision: Option<ParallelDecision<V>>,
}

impl<V: Opinion> ParallelConsensus<V> {
    /// Creates a node with a set of `(identifier, opinion)` input pairs.
    pub fn new(id: NodeId, inputs: impl IntoIterator<Item = (InstanceId, V)>) -> Self {
        ParallelConsensus {
            id,
            inputs: inputs.into_iter().collect(),
            senders: SenderTracker::new(),
            rotor: RotorState::new(),
            rotor_echo_buffer: BTreeMap::new(),
            instances: BTreeMap::new(),
            phase: 0,
            phase_coordinator: None,
            decision: None,
        }
    }

    /// The node's input pairs.
    pub fn inputs(&self) -> &BTreeMap<InstanceId, V> {
        &self.inputs
    }

    /// The frozen membership size `n_v`.
    pub fn n_v(&self) -> usize {
        self.senders.n_v()
    }

    /// The instances this node is currently running, keyed by identifier.
    pub fn instances(&self) -> &BTreeMap<InstanceId, EarlyConsensus<V>> {
        &self.instances
    }

    /// The decision, if the node has terminated.
    pub fn decision(&self) -> Option<&ParallelDecision<V>> {
        self.decision.as_ref()
    }

    fn buffer_rotor_echoes(&mut self, inbox: &[Envelope<ParallelMessage<V>>]) {
        for envelope in inbox {
            if !self.senders.contains(envelope.from) {
                continue;
            }
            if let ParallelMessage::Echo(candidate) = envelope.payload() {
                self.rotor_echo_buffer
                    .entry(*candidate)
                    .or_default()
                    .insert(envelope.from);
            }
        }
    }

    /// Groups this round's instance-scoped votes of the expected kind, spawning
    /// instances for identifiers first heard now (first phase only).
    fn collect_votes(
        &mut self,
        inbox: &[&Envelope<ParallelMessage<V>>],
        step: PhaseStep,
    ) -> BTreeMap<InstanceId, Vec<(NodeId, InstanceVote<V>)>> {
        let mut votes: BTreeMap<InstanceId, Vec<(NodeId, InstanceVote<V>)>> = BTreeMap::new();
        for envelope in inbox {
            let vote = match (envelope.payload(), step) {
                (ParallelMessage::Input(id, v), PhaseStep::Prefer) => {
                    Some((*id, InstanceVote::Value(Some(v.clone())), true))
                }
                (ParallelMessage::Prefer(id, v), PhaseStep::StrongPrefer) => {
                    Some((*id, InstanceVote::Value(v.clone()), true))
                }
                (ParallelMessage::NoPreference(id), PhaseStep::StrongPrefer) => {
                    Some((*id, InstanceVote::Abstain, false))
                }
                (ParallelMessage::StrongPrefer(id, v), PhaseStep::Rotor) => {
                    Some((*id, InstanceVote::Value(v.clone()), true))
                }
                (ParallelMessage::NoStrongPreference(id), PhaseStep::Rotor) => {
                    Some((*id, InstanceVote::Abstain, false))
                }
                _ => None,
            };
            let Some((instance, vote, spawns)) = vote else {
                continue;
            };
            // Lazy instance creation: only during the first phase, and only on a real
            // vote (abstentions never introduce a new identifier).
            if !self.instances.contains_key(&instance) {
                if self.phase == 1 && spawns {
                    self.instances.insert(
                        instance,
                        EarlyConsensus::without_input(instance, self.phase),
                    );
                } else {
                    continue;
                }
            }
            votes
                .entry(instance)
                .or_default()
                .push((envelope.from, vote));
        }
        votes
    }
}

impl<V: Opinion> Recoverable for ParallelConsensus<V> {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<V: Opinion> Protocol for ParallelConsensus<V> {
    type Payload = ParallelMessage<V>;
    type Output = ParallelDecision<V>;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(
        &mut self,
        ctx: &RoundContext,
        inbox: &[Envelope<ParallelMessage<V>>],
    ) -> Vec<Outgoing<ParallelMessage<V>>> {
        if self.decision.is_some() {
            return Vec::new();
        }
        self.senders.record_inbox(inbox);

        let out: Vec<ParallelMessage<V>> = match ctx.round {
            1 => vec![ParallelMessage::Init],
            2 => inbox
                .iter()
                .filter(|e| e.payload == ParallelMessage::Init)
                .map(|e| ParallelMessage::Echo(e.from))
                .collect(),
            _ => {
                if ctx.round == 3 {
                    self.senders.freeze();
                }
                self.buffer_rotor_echoes(inbox);
                let filtered: Vec<&Envelope<ParallelMessage<V>>> = inbox
                    .iter()
                    .filter(|e| self.senders.contains(e.from))
                    .collect();
                let n_v = self.senders.n_v();
                let step = PhaseStep::from_round(ctx.round).expect("round ≥ 3");

                match step {
                    PhaseStep::Input => {
                        self.phase += 1;
                        self.phase_coordinator = None;
                        if self.phase == 1 {
                            // Start an instance for every input pair.
                            let inputs = self.inputs.clone();
                            for (instance, value) in inputs {
                                self.instances.insert(
                                    instance,
                                    EarlyConsensus::with_input(instance, value, self.phase),
                                );
                            }
                        }
                        let phase = self.phase;
                        self.instances
                            .values_mut()
                            .filter_map(|i| i.step_input(phase))
                            .collect()
                    }
                    PhaseStep::Prefer => {
                        let votes = self.collect_votes(&filtered, step);
                        let phase = self.phase;
                        let senders = self.senders.clone();
                        let mut out = Vec::new();
                        for (instance, state) in self.instances.iter_mut() {
                            if state.is_decided() {
                                continue;
                            }
                            let empty = Vec::new();
                            let v = votes.get(instance).unwrap_or(&empty);
                            out.push(state.step_prefer(v, &senders, n_v, phase));
                        }
                        out
                    }
                    PhaseStep::StrongPrefer => {
                        let votes = self.collect_votes(&filtered, step);
                        let phase = self.phase;
                        let senders = self.senders.clone();
                        let mut out = Vec::new();
                        for (instance, state) in self.instances.iter_mut() {
                            if state.is_decided() {
                                continue;
                            }
                            let empty = Vec::new();
                            let v = votes.get(instance).unwrap_or(&empty);
                            out.push(state.step_strong(v, &senders, n_v, phase));
                        }
                        out
                    }
                    PhaseStep::Rotor => {
                        let votes = self.collect_votes(&filtered, step);
                        let phase = self.phase;
                        let senders = self.senders.clone();
                        for (instance, state) in self.instances.iter_mut() {
                            if state.is_decided() {
                                continue;
                            }
                            let empty = Vec::new();
                            let v = votes.get(instance).unwrap_or(&empty);
                            state.step_rotor_stash(v, &senders, phase);
                        }
                        // One shared rotor round for all instances.
                        let echo_votes = std::mem::take(&mut self.rotor_echo_buffer);
                        let rotor_out =
                            self.rotor
                                .loop_round(self.id, &0, n_v, &echo_votes, &BTreeMap::new());
                        self.phase_coordinator = self.rotor.current_coordinator();
                        let mut out: Vec<ParallelMessage<V>> = rotor_out
                            .into_iter()
                            .filter_map(|m| match m {
                                RotorMessage::Init => Some(ParallelMessage::Init),
                                RotorMessage::Echo(p) => Some(ParallelMessage::Echo(p)),
                                // The per-instance opinions below replace the scalar one.
                                RotorMessage::Opinion(_) => None,
                            })
                            .collect();
                        // If this node is the coordinator, distribute its opinion for
                        // every live instance.
                        if self.phase_coordinator == Some(self.id) {
                            for (instance, state) in &self.instances {
                                if !state.is_decided() {
                                    out.push(ParallelMessage::Opinion(
                                        *instance,
                                        state.opinion().clone(),
                                    ));
                                }
                            }
                        }
                        out
                    }
                    PhaseStep::Resolve => {
                        let phase = self.phase;
                        let coordinator = self.phase_coordinator;
                        // Coordinator opinions per instance.
                        let mut opinions: BTreeMap<InstanceId, Option<V>> = BTreeMap::new();
                        if let Some(p) = coordinator {
                            for envelope in &filtered {
                                if envelope.from != p {
                                    continue;
                                }
                                if let ParallelMessage::Opinion(instance, value) =
                                    envelope.payload()
                                {
                                    opinions.insert(*instance, value.clone());
                                }
                            }
                        }
                        for (instance, state) in self.instances.iter_mut() {
                            state.step_resolve(opinions.get(instance).cloned(), n_v, phase);
                        }
                        // The instance set is final after the first phase's rotor round,
                        // so the node may terminate at any resolve step at which every
                        // instance has decided.
                        if self.instances.values().all(|i| i.is_decided()) {
                            let pairs = self
                                .instances
                                .values()
                                .filter_map(|i| i.output_pair())
                                .collect();
                            self.decision = Some(ParallelDecision {
                                pairs,
                                phase,
                                round: ctx.round,
                            });
                        }
                        Vec::new()
                    }
                }
            }
        };
        out.into_iter().map(Outgoing::broadcast).collect()
    }

    fn output(&self) -> Option<ParallelDecision<V>> {
        self.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    type Msg = ParallelMessage<u64>;

    fn run<A: uba_simnet::Adversary<Msg>>(
        inputs: Vec<Vec<(InstanceId, u64)>>,
        byzantine: usize,
        adversary: A,
        seed: u64,
    ) -> Vec<ParallelDecision<u64>> {
        let ids = IdSpace::default().generate(inputs.len() + byzantine, seed);
        let byz: Vec<NodeId> = ids[inputs.len()..].to_vec();
        let nodes: Vec<_> = ids[..inputs.len()]
            .iter()
            .zip(inputs)
            .map(|(&id, pairs)| ParallelConsensus::new(id, pairs))
            .collect();
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine
            .run_to_termination(500)
            .expect("parallel consensus terminates");
        let decisions: Vec<ParallelDecision<u64>> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        // Agreement: all output pair sets are identical.
        for d in &decisions {
            assert_eq!(
                d.pairs, decisions[0].pairs,
                "agreement on the output pair set"
            );
        }
        decisions
    }

    #[test]
    fn pairs_input_everywhere_are_output_everywhere() {
        let inputs = vec![vec![(1, 10), (2, 20)]; 5];
        let decisions = run(inputs, 0, SilentAdversary, 1);
        assert_eq!(decisions[0].pairs, BTreeMap::from([(1, 10), (2, 20)]));
        assert_eq!(
            decisions[0].phase, 1,
            "unanimous pairs decide in the first phase"
        );
    }

    #[test]
    fn pairs_known_to_some_nodes_are_output_consistently() {
        // Pair 7 is input at three of the five nodes; pair 9 at one node only.
        let inputs = vec![
            vec![(7, 70)],
            vec![(7, 70)],
            vec![(7, 70), (9, 90)],
            vec![],
            vec![],
        ];
        let decisions = run(inputs, 0, SilentAdversary, 2);
        // Whatever the outcome for 7 and 9, it is consistent (checked inside `run`);
        // additionally no pair may be invented out of thin air.
        for id in decisions[0].pairs.keys() {
            assert!([7, 9].contains(id));
        }
    }

    #[test]
    fn byzantine_only_identifiers_are_never_output() {
        // The adversary floods a fresh identifier (555) that no correct node has.
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Msg>| {
            let mut out = Vec::new();
            for &from in view.byzantine_ids {
                for &to in view.correct_ids {
                    let payload = match view.round {
                        1 => ParallelMessage::Init,
                        4 => ParallelMessage::Input(555, 5),
                        5 => ParallelMessage::Prefer(555, Some(5)),
                        6 => ParallelMessage::StrongPrefer(555, Some(5)),
                        _ => continue,
                    };
                    out.push(Directed::new(from, to, payload));
                }
            }
            out
        });
        let inputs = vec![vec![(1, 11)]; 7];
        let decisions = run(inputs, 2, adversary, 3);
        assert!(decisions[0].pairs.contains_key(&1));
        assert!(
            !decisions[0].pairs.contains_key(&555),
            "an identifier submitted only by Byzantine nodes must not be output"
        );
    }

    #[test]
    fn nodes_with_no_inputs_terminate_with_an_empty_set() {
        let decisions = run(vec![vec![]; 4], 0, SilentAdversary, 4);
        assert!(decisions.iter().all(|d| d.pairs.is_empty()));
    }

    #[test]
    fn many_concurrent_instances_all_decide() {
        let pairs: Vec<(InstanceId, u64)> = (0..16).map(|i| (i, i * 100)).collect();
        let inputs = vec![pairs.clone(); 6];
        let decisions = run(inputs, 0, SilentAdversary, 5);
        assert_eq!(decisions[0].pairs.len(), 16);
        for (id, value) in &decisions[0].pairs {
            assert_eq!(*value, id * 100);
        }
    }

    #[test]
    fn accessors_expose_inputs_and_state() {
        let node = ParallelConsensus::new(NodeId::new(1), vec![(3, 30u64)]);
        assert_eq!(node.inputs().len(), 1);
        assert_eq!(node.n_v(), 0);
        assert!(node.instances().is_empty());
        assert!(node.decision().is_none());
    }
}
