//! Tracking `n_v`: the set of nodes a correct node has heard from.
//!
//! In the id-only model the only way a correct node learns about another node's
//! existence is by receiving a message from it. `n_v` — "the number of nodes that sent
//! at least one message to `v` until the current round" — is the local substitute for
//! the unknown `n` in every threshold of the paper's algorithms.

use std::collections::BTreeSet;

use uba_simnet::{Envelope, NodeId};

/// Cumulative record of the distinct senders a node has observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SenderTracker {
    seen: BTreeSet<NodeId>,
    frozen: bool,
}

impl SenderTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        SenderTracker::default()
    }

    /// Records a sender. Has no effect once the tracker is frozen.
    pub fn record(&mut self, from: NodeId) {
        if !self.frozen {
            self.seen.insert(from);
        }
    }

    /// Records every sender of an inbox. Has no effect once frozen.
    pub fn record_inbox<P>(&mut self, inbox: &[Envelope<P>]) {
        for envelope in inbox {
            self.record(envelope.from);
        }
    }

    /// Freezes the membership: later `record*` calls are ignored.
    ///
    /// The consensus algorithms (Algorithms 3 and 5) compute `n_v` once during
    /// initialisation and from then on "only accept messages from a node if it counted
    /// towards `n_v` during the initialization"; freezing implements that.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the tracker has been frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// `n_v`: the number of distinct senders observed (so far, or at freeze time).
    pub fn n_v(&self) -> usize {
        self.seen.len()
    }

    /// Whether the given node has been observed.
    pub fn contains(&self, id: NodeId) -> bool {
        self.seen.contains(&id)
    }

    /// The observed senders in increasing identifier order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.seen.iter().copied()
    }

    /// Filters an inbox down to the envelopes whose sender counted towards `n_v`.
    /// Used by the frozen-membership algorithms to discard messages from unknown nodes.
    pub fn filter_inbox<'a, P>(
        &'a self,
        inbox: &'a [Envelope<P>],
    ) -> impl Iterator<Item = &'a Envelope<P>> {
        inbox.iter().filter(move |e| self.contains(e.from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(from: u64, payload: u32) -> Envelope<u32> {
        Envelope::new(NodeId::new(from), payload)
    }

    #[test]
    fn records_distinct_senders() {
        let mut tracker = SenderTracker::new();
        tracker.record(NodeId::new(1));
        tracker.record(NodeId::new(2));
        tracker.record(NodeId::new(1));
        assert_eq!(tracker.n_v(), 2);
        assert!(tracker.contains(NodeId::new(1)));
        assert!(!tracker.contains(NodeId::new(3)));
    }

    #[test]
    fn records_inbox_senders() {
        let mut tracker = SenderTracker::new();
        tracker.record_inbox(&[envelope(5, 0), envelope(6, 0), envelope(5, 1)]);
        assert_eq!(tracker.n_v(), 2);
        let members: Vec<NodeId> = tracker.members().collect();
        assert_eq!(members, vec![NodeId::new(5), NodeId::new(6)]);
    }

    #[test]
    fn freeze_stops_growth() {
        let mut tracker = SenderTracker::new();
        tracker.record(NodeId::new(1));
        tracker.freeze();
        assert!(tracker.is_frozen());
        tracker.record(NodeId::new(2));
        tracker.record_inbox(&[envelope(3, 0)]);
        assert_eq!(tracker.n_v(), 1);
        assert!(!tracker.contains(NodeId::new(2)));
    }

    #[test]
    fn filter_inbox_drops_unknown_senders() {
        let mut tracker = SenderTracker::new();
        tracker.record(NodeId::new(1));
        tracker.record(NodeId::new(2));
        tracker.freeze();
        let inbox = vec![envelope(1, 10), envelope(9, 11), envelope(2, 12)];
        let kept: Vec<u32> = tracker.filter_inbox(&inbox).map(|e| *e.payload()).collect();
        assert_eq!(kept, vec![10, 12]);
    }
}
