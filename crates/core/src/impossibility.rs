//! The impossibility constructions of Section IX: synchrony is necessary.
//!
//! Lemmas 14 and 15 show that when nodes know neither `n` nor `f`, consensus is
//! impossible — even with probabilistic termination, even with **zero** failures — in
//! asynchronous and semi-synchronous systems. Both proofs construct a partitioned
//! execution: nodes are split into `A` (all input 1) and `B` (all input 0), messages
//! inside a partition flow normally, and messages across the partition are delayed
//! past the point where each side — having no way to know that anyone else exists —
//! has already decided on its own unanimous input.
//!
//! This module reproduces those executions *with the actual consensus algorithm of
//! this crate* (Algorithm 3) running on the delay engine of `uba-simnet`: under the
//! synchronous delay model the algorithm reaches agreement, under the partitioned
//! (semi-synchronous or asynchronous) models the two sides decide opposite values.
//! Experiment E7 sweeps partition sizes and delay models over these constructions.

use uba_simnet::{DelayEngine, DelayModel, IdSpace, NodeId, PartitionSpec, SimError};

use crate::consensus::Consensus;

/// The timing model under which the partition experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingModel {
    /// Every message is delivered in the next round — the control arm, where the
    /// synchronous algorithm is guaranteed to agree.
    Synchronous,
    /// Cross-partition messages take `cross_delay` ticks (Lemma 15: the bound exists
    /// but is unknown to the nodes, so they decide before it elapses).
    SemiSynchronous {
        /// Delay, in ticks, of every message crossing the partition.
        cross_delay: u64,
    },
    /// Cross-partition messages are never delivered (Lemma 14).
    Asynchronous,
    /// Partial synchrony in the DLS sense: **every** message sent before the
    /// global stabilisation time `gst` arrives at `gst + bound`; afterwards
    /// the network is synchronous with delay `bound`. Unlike the partitioned
    /// models this delays traffic uniformly — the adversary needs no knowledge
    /// of the partition, only control of the clock. A `gst` later than the
    /// algorithm's decision point silences the whole network long enough that
    /// each side decides on its own unanimous input, and the late GST traffic
    /// cannot take the decisions back.
    PartialSynchrony {
        /// Global stabilisation time, in ticks.
        gst: u64,
        /// Post-stabilisation delivery bound, in ticks.
        bound: u64,
    },
}

/// The outcome of one partition experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// Every node's decision (binary, as in the lemmas).
    pub decisions: Vec<(NodeId, u64)>,
    /// Whether all nodes decided the same value.
    pub agreement: bool,
    /// Ticks executed until every node decided.
    pub ticks: u64,
    /// Cross-partition messages still undelivered when the last node decided — these
    /// are the "too late" messages of the construction.
    pub undelivered: usize,
}

/// Runs the Lemma 14 / 15 construction: `size_a` nodes with input 1 and `size_b`
/// nodes with input 0, under the given timing model.
///
/// All nodes are correct; the only adversarial power used is message timing, which is
/// exactly what makes the result an impossibility argument rather than a resiliency
/// bound.
pub fn run_partition_experiment(
    size_a: usize,
    size_b: usize,
    model: TimingModel,
    seed: u64,
) -> Result<PartitionOutcome, SimError> {
    assert!(
        size_a > 0 && size_b > 0,
        "both partitions must be non-empty"
    );
    let ids = IdSpace::default().generate(size_a + size_b, seed);
    let (a_ids, b_ids) = ids.split_at(size_a);

    let nodes: Vec<Consensus<u64>> = a_ids
        .iter()
        .map(|&id| Consensus::new(id, 1u64))
        .chain(b_ids.iter().map(|&id| Consensus::new(id, 0u64)))
        .collect();

    let delay_model = match model {
        TimingModel::Synchronous => DelayModel::Synchronous,
        TimingModel::SemiSynchronous { cross_delay } => DelayModel::Partitioned {
            spec: PartitionSpec::new()
                .with_group(0, a_ids.iter().copied())
                .with_group(1, b_ids.iter().copied()),
            cross_delay: Some(cross_delay),
        },
        TimingModel::Asynchronous => DelayModel::Partitioned {
            spec: PartitionSpec::new()
                .with_group(0, a_ids.iter().copied())
                .with_group(1, b_ids.iter().copied()),
            cross_delay: None,
        },
        TimingModel::PartialSynchrony { gst, bound } => DelayModel::Gst { gst, bound },
    };

    let mut engine = DelayEngine::new(nodes, delay_model);
    let ticks = engine.run_until_all_terminated(2_000)?;
    let decisions: Vec<(NodeId, u64)> = engine
        .outputs()
        .into_iter()
        .map(|(id, decision)| (id, decision.expect("all nodes decided").value))
        .collect();
    let first = decisions[0].1;
    let agreement = decisions.iter().all(|&(_, value)| value == first);
    Ok(PartitionOutcome {
        decisions,
        agreement,
        ticks,
        undelivered: engine.in_flight(),
    })
}

/// Runs `trials` independent partition experiments (different identifier seeds) and
/// returns the fraction that ended in disagreement. Used by experiment E7 to report a
/// disagreement *probability* per timing model, as the lemmas are phrased.
pub fn disagreement_rate(
    size_a: usize,
    size_b: usize,
    model: TimingModel,
    trials: u64,
    seed: u64,
) -> f64 {
    let mut disagreements = 0u64;
    for trial in 0..trials {
        let outcome = run_partition_experiment(size_a, size_b, model, seed ^ (trial + 1))
            .expect("partition experiment completes");
        if !outcome.agreement {
            disagreements += 1;
        }
    }
    disagreements as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_control_always_agrees() {
        for seed in 0..3 {
            let outcome = run_partition_experiment(3, 3, TimingModel::Synchronous, seed).unwrap();
            assert!(
                outcome.agreement,
                "synchronous execution must agree: {outcome:?}"
            );
        }
    }

    #[test]
    fn asynchronous_partition_disagrees() {
        let outcome = run_partition_experiment(3, 4, TimingModel::Asynchronous, 7).unwrap();
        assert!(
            !outcome.agreement,
            "Lemma 14: the partitions decide their own inputs"
        );
        // Partition A (input 1) decided 1, partition B decided 0.
        let ones = outcome.decisions.iter().filter(|&&(_, v)| v == 1).count();
        assert_eq!(ones, 3);
    }

    #[test]
    fn semi_synchronous_partition_disagrees_despite_bounded_delay() {
        let outcome =
            run_partition_experiment(4, 4, TimingModel::SemiSynchronous { cross_delay: 500 }, 11)
                .unwrap();
        assert!(
            !outcome.agreement,
            "Lemma 15: a finite but unknown delay is enough"
        );
        assert!(
            outcome.undelivered > 0,
            "the cross-partition messages exist but arrive after the decisions"
        );
    }

    #[test]
    fn partial_synchrony_with_a_late_gst_denies_termination() {
        // A GST after the algorithm's initialisation rounds silences the whole
        // network during rounds 1–2 — a node does not even hear its own
        // broadcast. Algorithm 3 freezes its member estimate `n_v` after those
        // rounds, so every node is stuck with an empty membership and the phase
        // machinery never produces a coordinator to decide with: the silent
        // prologue costs liveness *permanently*, even though the network is
        // fully synchronous after GST. This is behaviour the synchronous
        // engine cannot express — there, round-1 traffic always arrives.
        let err =
            run_partition_experiment(3, 3, TimingModel::PartialSynchrony { gst: 5, bound: 1 }, 13)
                .unwrap_err();
        assert!(
            matches!(err, SimError::MaxRoundsExceeded { .. }),
            "a late GST starves the round-driven algorithm forever: {err:?}"
        );

        // GST at time zero is the synchronous control: same model, same code
        // path, agreement as usual.
        let control =
            run_partition_experiment(3, 3, TimingModel::PartialSynchrony { gst: 0, bound: 1 }, 13)
                .unwrap();
        assert!(control.agreement, "gst = 0 is synchrony: {control:?}");
    }

    #[test]
    fn disagreement_rate_is_zero_iff_synchronous() {
        assert_eq!(disagreement_rate(2, 2, TimingModel::Synchronous, 3, 1), 0.0);
        assert_eq!(
            disagreement_rate(2, 2, TimingModel::Asynchronous, 3, 1),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_partitions_are_rejected() {
        let _ = run_partition_experiment(0, 3, TimingModel::Synchronous, 1);
    }
}
