//! Opinion values exchanged by the agreement algorithms.
//!
//! The consensus algorithms of the paper operate on real-number opinions (Section VII
//! notes that real inputs are needed later for ordering arbitrary events). Rust's
//! floating-point types are neither `Eq` nor `Hash`, so the library provides [`Real`],
//! a fixed-point decimal with total ordering, alongside the [`Opinion`] trait bound
//! that every algorithm is generic over — binary consensus simply instantiates the
//! algorithms with `bool` or `u64`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Types usable as consensus opinions.
///
/// The algorithms need equality (to count votes for a value), a total order (so the
/// coordinator selection and tie-breaks are deterministic), hashing (vote tallies) and
/// `Debug` for diagnostics. Any type meeting the bounds works; the blanket
/// implementation makes the trait purely a shorthand.
pub trait Opinion: Clone + Eq + Ord + std::hash::Hash + fmt::Debug {}

impl<T: Clone + Eq + Ord + std::hash::Hash + fmt::Debug> Opinion for T {}

/// Number of decimal digits kept by [`Real`].
pub const REAL_DECIMALS: u32 = 6;
const SCALE: i64 = 10i64.pow(REAL_DECIMALS);

/// A fixed-point real number with six decimal digits of precision.
///
/// `Real` is `Eq`, `Ord` and `Hash`, so it can be used directly as a consensus
/// opinion, while converting losslessly enough from the `f64` values used by the
/// approximate-agreement workloads.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Real(i64);

impl Real {
    /// Zero.
    pub const ZERO: Real = Real(0);

    /// Creates a `Real` from a raw fixed-point representation (units of `10^-6`).
    pub const fn from_raw(raw: i64) -> Self {
        Real(raw)
    }

    /// The raw fixed-point representation (units of `10^-6`).
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Creates a `Real` from an integer.
    pub const fn from_int(value: i64) -> Self {
        Real(value * SCALE)
    }

    /// Creates a `Real` from an `f64`, rounding to the nearest representable value.
    pub fn from_f64(value: f64) -> Self {
        Real((value * SCALE as f64).round() as i64)
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Midpoint of two values, rounding towards negative infinity on ties.
    pub fn midpoint(self, other: Real) -> Real {
        Real((self.0 + other.0).div_euclid(2))
    }

    /// Absolute difference.
    pub fn abs_diff(self, other: Real) -> Real {
        Real((self.0 - other.0).abs())
    }
}

impl fmt::Debug for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl fmt::Display for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<i64> for Real {
    fn from(value: i64) -> Self {
        Real::from_int(value)
    }
}

impl From<f64> for Real {
    fn from(value: f64) -> Self {
        Real::from_f64(value)
    }
}

impl std::ops::Add for Real {
    type Output = Real;
    fn add(self, rhs: Real) -> Real {
        Real(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Real {
    type Output = Real;
    fn sub(self, rhs: Real) -> Real {
        Real(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Real::from_int(5).to_f64(), 5.0);
        assert_eq!(Real::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(Real::from(3i64), Real::from_int(3));
        assert_eq!(Real::from(0.25f64), Real::from_f64(0.25));
        assert_eq!(Real::from_raw(1_000_000), Real::from_int(1));
        assert_eq!(Real::from_int(7).raw(), 7_000_000);
    }

    #[test]
    fn ordering_and_equality_are_total() {
        let a = Real::from_f64(1.1);
        let b = Real::from_f64(1.2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(
            Real::from_f64(0.1) + Real::from_f64(0.2),
            Real::from_f64(0.3)
        );
    }

    #[test]
    fn midpoint_halves_the_interval() {
        let lo = Real::from_int(2);
        let hi = Real::from_int(4);
        assert_eq!(lo.midpoint(hi), Real::from_int(3));
        assert_eq!(hi.midpoint(lo), Real::from_int(3));
        // Negative values round towards negative infinity, keeping the result inside
        // the closed interval.
        let a = Real::from_raw(-3);
        let b = Real::from_raw(0);
        let mid = a.midpoint(b);
        assert!(mid >= a && mid <= b);
    }

    #[test]
    fn arithmetic_behaves_like_fixed_point() {
        assert_eq!(Real::from_int(3) - Real::from_int(5), Real::from_int(-2));
        assert_eq!(
            Real::from_int(3).abs_diff(Real::from_int(5)),
            Real::from_int(2)
        );
        assert_eq!(Real::ZERO, Real::from_int(0));
    }

    #[test]
    fn display_matches_f64() {
        assert_eq!(format!("{}", Real::from_f64(1.5)), "1.5");
        assert_eq!(format!("{:?}", Real::from_int(2)), "2");
    }
}
