//! # uba-core
//!
//! Byzantine agreement **without knowing the number of participants or failures** —
//! a faithful implementation of the algorithms in Khanchandani & Wattenhofer,
//! *"Byzantine Agreement with Unknown Participants and Failures"* (IPDPS 2021).
//!
//! ## The id-only model
//!
//! The system has `n` nodes, at most `f` of them Byzantine, and **no node knows `n`
//! or `f`**. Nodes have unique but non-consecutive identifiers, the system is
//! synchronous, and the sender identifier is attached to every message. The paper
//! shows that all the fundamental agreement primitives can still be solved with the
//! optimal resiliency `n > 3f`, by replacing the unknown `f` with local `n_v/3`
//! thresholds, where `n_v` is the number of distinct nodes this node has heard from.
//!
//! ## What this crate provides
//!
//! | Paper | Module | Primitive |
//! |---|---|---|
//! | Algorithm 1 (§V) | [`reliable_broadcast`] | Reliable broadcast |
//! | Algorithm 2 (§VI) | [`rotor`] | Rotor-coordinator (leader rotation) |
//! | Algorithm 3 (§VII) | [`consensus`] | Consensus in `O(f)` rounds |
//! | Algorithm 4 (§VIII) | [`approx`] | Approximate agreement |
//! | §XI, §XII | [`dynamic_approx`] | Approximate agreement under churn, subset join |
//! | Algorithm 5 (§X) | [`early_consensus`], [`parallel_consensus`] | Parallel consensus |
//! | Algorithm 6 (§XI) | [`total_order`] | Total ordering in dynamic networks |
//! | Lemmas 14–15 (§IX) | [`impossibility`] | Impossibility constructions |
//!
//! Supporting modules: [`quorum`] (exact threshold arithmetic), [`membership`]
//! (`n_v` tracking), [`vote`] (distinct-sender tallies), [`value`] (opinion types),
//! [`adversaries`] (scripted Byzantine strategies from the proofs), [`attackers`]
//! (adaptive, rushing attack strategies) and [`runner`] (one-call experiment drivers
//! used by the examples and benchmarks).
//!
//! All protocols implement [`uba_simnet::Protocol`] and run on the deterministic
//! synchronous engine from the `uba-simnet` crate.
//!
//! ## Quick start
//!
//! ```
//! use uba_core::consensus::Consensus;
//! use uba_simnet::{IdSpace, SyncEngine, adversary::SilentAdversary};
//!
//! // Seven nodes with sparse, non-consecutive identifiers and split opinions.
//! let ids = IdSpace::default().generate(7, 42);
//! let nodes: Vec<_> = ids
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &id)| Consensus::new(id, (i % 2) as u64))
//!     .collect();
//!
//! let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
//! engine.run_until_all_terminated(200).unwrap();
//!
//! let decisions: Vec<u64> = engine
//!     .outputs()
//!     .into_iter()
//!     .map(|(_, decision)| decision.unwrap().value)
//!     .collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversaries;
pub mod approx;
pub mod attackers;
pub mod consensus;
pub mod dynamic_approx;
pub mod early_consensus;
pub mod impossibility;
pub mod membership;
pub mod parallel_consensus;
pub mod quorum;
pub mod reliable_broadcast;
pub mod rotor;
pub mod runner;
pub mod total_order;
pub mod value;
pub mod vote;

pub use approx::{ApproxAgreement, IteratedApproxAgreement};
pub use dynamic_approx::{
    run_dynamic_approx, subset_join_value, ChurnPlan, DynamicApproxNode, DynamicApproxReport,
};
pub use consensus::{Consensus, ConsensusMessage, Decision};
pub use early_consensus::{EarlyConsensus, InstanceId, ParallelMessage};
pub use parallel_consensus::{ParallelConsensus, ParallelDecision};
pub use reliable_broadcast::{Accepted, RbMessage, ReliableBroadcast};
pub use rotor::{RotorCoordinator, RotorMessage, RotorOutcome, RotorState};
pub use total_order::{OrderedEvent, TotalOrderMessage, TotalOrderNode};
pub use value::{Opinion, Real};
