//! # uba-core
//!
//! Byzantine agreement **without knowing the number of participants or failures** —
//! a faithful implementation of the algorithms in Khanchandani & Wattenhofer,
//! *"Byzantine Agreement with Unknown Participants and Failures"* (IPDPS 2021).
//!
//! ## The id-only model
//!
//! The system has `n` nodes, at most `f` of them Byzantine, and **no node knows `n`
//! or `f`**. Nodes have unique but non-consecutive identifiers, the system is
//! synchronous, and the sender identifier is attached to every message. The paper
//! shows that all the fundamental agreement primitives can still be solved with the
//! optimal resiliency `n > 3f`, by replacing the unknown `f` with local `n_v/3`
//! thresholds, where `n_v` is the number of distinct nodes this node has heard from.
//!
//! ## What this crate provides
//!
//! | Paper | Module | Primitive | Factory ([`sim`]) |
//! |---|---|---|---|
//! | Algorithm 1 (§V) | [`reliable_broadcast`] | Reliable broadcast | [`sim::BroadcastFactory`] |
//! | Algorithm 2 (§VI) | [`rotor`] | Rotor-coordinator (leader rotation) | [`sim::RotorFactory`] |
//! | Algorithm 3 (§VII) | [`consensus`] | Consensus in `O(f)` rounds | [`sim::ConsensusFactory`] |
//! | Algorithm 4 (§VIII) | [`approx`] | Approximate agreement | [`sim::ApproxFactory`], [`sim::IteratedApproxFactory`] |
//! | §XI, §XII | [`dynamic_approx`] | Approximate agreement under churn, subset join | — |
//! | Algorithm 5 (§X) | [`early_consensus`], [`parallel_consensus`] | Parallel consensus | [`sim::ParallelConsensusFactory`] |
//! | Algorithm 6 (§XI) | [`total_order`] | Total ordering in dynamic networks | [`sim::TotalOrderFactory`] |
//! | Lemmas 14–15 (§IX) | [`impossibility`] | Impossibility constructions | — (delay engine) |
//!
//! Supporting modules: [`quorum`] (exact threshold arithmetic), [`membership`]
//! (`n_v` tracking), [`vote`] (distinct-sender tallies), [`value`] (opinion types),
//! [`adversaries`] (scripted Byzantine strategies from the proofs), [`attackers`]
//! (adaptive, rushing attack strategies) and [`sim`] (protocol factories and fluent
//! sugar for the unified `Simulation` driver — the single driver API; the old
//! one-call `runner` shims have been removed).
//!
//! All protocols implement [`uba_simnet::Protocol`] and run on the deterministic
//! synchronous engine from the `uba-simnet` crate.
//!
//! ## Quick start
//!
//! Describe the system once with the [`sim::Simulation`] builder — correct and
//! Byzantine counts, identifier space, seed, adversary, optional churn — then point
//! it at any protocol and read the [`sim::RunReport`]:
//!
//! ```
//! use uba_core::sim::{AdversaryKind, ScenarioExt, Simulation};
//!
//! // Seven correct nodes with sparse identifiers and split opinions; two Byzantine
//! // identities trying to split the vote. Nobody is told n = 9 or f = 2.
//! let report = Simulation::scenario()
//!     .correct(7)
//!     .byzantine(2)
//!     .seed(42)
//!     .adversary(AdversaryKind::SplitVote)
//!     .consensus(&[0, 1, 0, 1, 0, 1, 0])
//!     .run()
//!     .unwrap();
//!
//! assert!(report.completed() && report.rounds > 0);
//! let consensus = report.consensus.expect("consensus section");
//! assert!(consensus.agreement, "agreement");
//! assert!(consensus.validity, "validity");
//! ```
//!
//! The same builder drives every other primitive (`.broadcast(..)`, `.rotor()`,
//! `.approx(..)`, `.parallel_consensus(..)`, `.total_order(..)`), the known-`(n, f)`
//! baselines in `uba-baselines` (via `.build(PhaseKingFactory::new(..))` etc.), and
//! custom adversaries (via `.build_with_adversary(..)`). Reports serialize through
//! serde and are verified by the `uba-checker` oracles
//! (`uba_checker::attach_verdicts`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversaries;
pub mod approx;
pub mod attackers;
pub mod consensus;
pub mod dynamic_approx;
pub mod early_consensus;
pub mod impossibility;
pub mod membership;
pub mod parallel_consensus;
pub mod quorum;
pub mod reliable_broadcast;
pub mod rotor;
pub mod sim;
pub mod total_order;
pub mod value;
pub mod vote;

pub use approx::{ApproxAgreement, IteratedApproxAgreement};
pub use consensus::{Consensus, ConsensusMessage, Decision};
pub use dynamic_approx::{
    run_dynamic_approx, subset_join_value, ChurnPlan, DynamicApproxNode, DynamicApproxReport,
};
pub use early_consensus::{EarlyConsensus, InstanceId, ParallelMessage};
pub use parallel_consensus::{ParallelConsensus, ParallelDecision};
pub use reliable_broadcast::{Accepted, RbMessage, ReliableBroadcast};
pub use rotor::{RotorCoordinator, RotorMessage, RotorOutcome, RotorState};
pub use total_order::{OrderedEvent, TotalOrderMessage, TotalOrderNode};
pub use value::{Opinion, Real};
