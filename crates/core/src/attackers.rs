//! Adaptive, rushing attack strategies.
//!
//! The strategies in [`crate::adversaries`] are *oblivious*: they follow a fixed
//! script regardless of what the correct nodes do. The strategies here exploit the
//! strongest capability the model grants the adversary — it speaks last in every
//! round, after having seen all correct traffic — to adapt the attack to the current
//! state of the execution:
//!
//! * [`MinorityBooster`] — in every consensus voting round, votes (per recipient) for
//!   whichever of two values currently has *less* correct support, trying to keep the
//!   network split for as long as possible;
//! * [`EquivocatingCoordinator`] — campaigns to be selected as the rotor coordinator
//!   and then sends different opinions to different halves of the network;
//! * [`EchoWithholder`] — for reliable broadcast, echoes the value that is about to
//!   reach a threshold only to half of the nodes, trying to make one half accept a
//!   round earlier than the other (the relay property is exactly what must absorb
//!   this);
//! * [`MembershipFlapper`] — for dynamic total ordering, announces `present` and
//!   `absent` in alternating rounds and spams fabricated events, stressing the member
//!   set `S` and the per-round instance identifiers.

use std::collections::BTreeMap;

use uba_simnet::{Adversary, AdversaryView, Directed};

use crate::consensus::ConsensusMessage;
use crate::reliable_broadcast::RbMessage;
use crate::total_order::TotalOrderMessage;
use crate::value::Opinion;

/// Phase step the correct nodes are executing in a given engine round, mirroring the
/// five-round schedule of Algorithm 3 (rounds 1 and 2 are initialisation).
fn consensus_step(round: u64) -> Option<u64> {
    if round < 3 {
        None
    } else {
        Some((round - 3) % 5)
    }
}

/// A rushing consensus adversary that keeps the network split: in every voting round
/// it inspects, per correct recipient, how much correct support each of the two
/// configured values has *in the traffic addressed to that recipient this round*, and
/// casts all of its votes for the value that is currently behind.
///
/// Against the `n_v/3` / `2n_v/3` thresholds this is the natural adaptive
/// generalisation of [`crate::adversaries::SplitVote`]; Lemma 9 (no two conflicting
/// quorums) and the rotor-coordinator rounds are what bound the damage to `O(f)`
/// phases.
#[derive(Clone, Debug)]
pub struct MinorityBooster<V> {
    low: V,
    high: V,
}

impl<V> MinorityBooster<V> {
    /// Creates the attacker fighting over the two given values.
    pub fn new(low: V, high: V) -> Self {
        MinorityBooster { low, high }
    }
}

impl<V: Opinion> Adversary<ConsensusMessage<V>> for MinorityBooster<V> {
    fn step(
        &mut self,
        view: &AdversaryView<'_, ConsensusMessage<V>>,
    ) -> Vec<Directed<ConsensusMessage<V>>> {
        let mut out = Vec::new();
        for &to in view.correct_ids {
            // Count correct support per value in the traffic addressed to `to`.
            let mut low_support = 0usize;
            let mut high_support = 0usize;
            for msg in view.traffic_to(to) {
                let value = match msg.payload() {
                    ConsensusMessage::Input(v)
                    | ConsensusMessage::Prefer(v)
                    | ConsensusMessage::StrongPrefer(v) => v,
                    _ => continue,
                };
                if *value == self.low {
                    low_support += 1;
                } else if *value == self.high {
                    high_support += 1;
                }
            }
            let minority = if low_support <= high_support {
                self.low.clone()
            } else {
                self.high.clone()
            };
            for &from in view.byzantine_ids {
                let payload = match view.round {
                    1 => ConsensusMessage::Init,
                    2 => ConsensusMessage::Echo(from),
                    _ => match consensus_step(view.round) {
                        Some(0) => ConsensusMessage::Input(minority.clone()),
                        Some(1) => ConsensusMessage::Prefer(minority.clone()),
                        Some(2) => ConsensusMessage::StrongPrefer(minority.clone()),
                        Some(3) => ConsensusMessage::Opinion(minority.clone()),
                        _ => continue,
                    },
                };
                out.push(Directed::new(from, to, payload));
            }
        }
        out
    }
}

/// A consensus adversary that tries to become the selected coordinator (its identities
/// echo themselves aggressively during initialisation) and, in every rotor round,
/// sends opinion `low` to even-indexed correct nodes and `high` to odd-indexed ones.
///
/// Lemma 11 only promises a common opinion when the coordinator is *correct*; this
/// attacker checks that Byzantine coordinators merely delay (never derail) agreement.
#[derive(Clone, Debug)]
pub struct EquivocatingCoordinator<V> {
    low: V,
    high: V,
}

impl<V> EquivocatingCoordinator<V> {
    /// Creates the attacker distributing the two given opinions.
    pub fn new(low: V, high: V) -> Self {
        EquivocatingCoordinator { low, high }
    }
}

impl<V: Opinion> Adversary<ConsensusMessage<V>> for EquivocatingCoordinator<V> {
    fn step(
        &mut self,
        view: &AdversaryView<'_, ConsensusMessage<V>>,
    ) -> Vec<Directed<ConsensusMessage<V>>> {
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for (index, &to) in view.correct_ids.iter().enumerate() {
                let payload = match view.round {
                    // Announce and echo itself so the correct nodes add it to their
                    // candidate sets (it is a legitimate candidate — it announced).
                    1 => ConsensusMessage::Init,
                    2 => ConsensusMessage::Echo(from),
                    _ => match consensus_step(view.round) {
                        // Participate honestly enough in the vote rounds to stay
                        // counted, parroting its own identity's echo.
                        Some(0) => ConsensusMessage::Echo(from),
                        // In the rotor round, equivocate as a would-be coordinator.
                        Some(3) => {
                            let value = if index % 2 == 0 {
                                self.low.clone()
                            } else {
                                self.high.clone()
                            };
                            ConsensusMessage::Opinion(value)
                        }
                        _ => continue,
                    },
                };
                out.push(Directed::new(from, to, payload));
            }
        }
        out
    }
}

/// A reliable-broadcast adversary that watches the correct `echo` traffic and
/// amplifies it towards only half of the nodes: whichever value the correct nodes are
/// echoing, the Byzantine identities echo it too — but only to even-indexed
/// recipients. The goal is to push one half of the network over the `2n_v/3`
/// acceptance threshold a round before the other half, maximising the stress on the
/// relay property.
#[derive(Clone, Copy, Debug, Default)]
pub struct EchoWithholder;

impl<M: Clone + Ord + std::fmt::Debug + std::hash::Hash> Adversary<RbMessage<M>>
    for EchoWithholder
{
    fn step(&mut self, view: &AdversaryView<'_, RbMessage<M>>) -> Vec<Directed<RbMessage<M>>> {
        if view.round == 1 {
            // Get counted towards n_v.
            return view
                .byzantine_ids
                .iter()
                .flat_map(|&from| {
                    view.correct_ids
                        .iter()
                        .map(move |&to| Directed::new(from, to, RbMessage::Present))
                })
                .collect();
        }
        // Find the most-echoed value in this round's correct traffic.
        let mut counts: BTreeMap<&M, usize> = BTreeMap::new();
        for msg in view.correct_traffic {
            if let RbMessage::Echo(value) = msg.payload() {
                *counts.entry(value).or_default() += 1;
            }
        }
        let Some((value, _)) = counts.into_iter().max_by_key(|(_, count)| *count) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for (index, &to) in view.correct_ids.iter().enumerate() {
                if index % 2 == 0 {
                    out.push(Directed::new(from, to, RbMessage::Echo(value.clone())));
                }
            }
        }
        out
    }
}

/// A dynamic-total-ordering adversary whose identities flap between `present` and
/// `absent` every round while spamming fabricated events tagged with whatever round
/// number the correct nodes are currently using (gleaned from their `Event` traffic).
#[derive(Clone, Debug)]
pub struct MembershipFlapper<E> {
    spam_event: E,
}

impl<E> MembershipFlapper<E> {
    /// Creates the attacker injecting the given event payload.
    pub fn new(spam_event: E) -> Self {
        MembershipFlapper { spam_event }
    }
}

impl<E: Opinion> Adversary<TotalOrderMessage<E>> for MembershipFlapper<E> {
    fn step(
        &mut self,
        view: &AdversaryView<'_, TotalOrderMessage<E>>,
    ) -> Vec<Directed<TotalOrderMessage<E>>> {
        // Learn the round number the correct nodes currently tag their events with.
        let current_round = view
            .correct_traffic
            .iter()
            .filter_map(|msg| match msg.payload() {
                TotalOrderMessage::Event(round, _) => Some(*round),
                _ => None,
            })
            .max();
        let mut out = Vec::new();
        for &from in view.byzantine_ids {
            for &to in view.correct_ids {
                let flap = if view.round.is_multiple_of(2) {
                    TotalOrderMessage::Absent
                } else {
                    TotalOrderMessage::Present
                };
                out.push(Directed::new(from, to, flap));
                if let Some(round) = current_round {
                    out.push(Directed::new(
                        from,
                        to,
                        TotalOrderMessage::Event(round, self.spam_event.clone()),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::{NodeId, RoundTraffic};

    static CORRECT: [NodeId; 4] = [
        NodeId::new(2),
        NodeId::new(4),
        NodeId::new(5),
        NodeId::new(7),
    ];
    static BYZ: [NodeId; 2] = [NodeId::new(100), NodeId::new(101)];

    fn view<P>(round: u64, traffic: &RoundTraffic<P>) -> AdversaryView<'_, P> {
        AdversaryView {
            round,
            correct_ids: &CORRECT,
            byzantine_ids: &BYZ,
            correct_traffic: traffic,
        }
    }

    #[test]
    fn minority_booster_backs_the_value_with_less_support() {
        // Every correct node is being sent two Input(1) and one Input(0) this round,
        // so the attacker must push Input(0) to all of them.
        let mut messages = Vec::new();
        for &to in &CORRECT {
            messages.push(Directed::new(CORRECT[0], to, ConsensusMessage::Input(1u64)));
            messages.push(Directed::new(CORRECT[1], to, ConsensusMessage::Input(1u64)));
            messages.push(Directed::new(CORRECT[2], to, ConsensusMessage::Input(0u64)));
        }
        let traffic = RoundTraffic::from_directed(messages);
        let mut adv = MinorityBooster::new(0u64, 1u64);
        let out = adv.step(&view(3, &traffic));
        assert_eq!(out.len(), CORRECT.len() * BYZ.len());
        assert!(out.iter().all(|m| m.payload == ConsensusMessage::Input(0)));
    }

    #[test]
    fn minority_booster_follows_the_phase_schedule() {
        let traffic: RoundTraffic<ConsensusMessage<u64>> = RoundTraffic::new();
        let mut adv = MinorityBooster::new(0u64, 1u64);
        assert!(adv
            .step(&view(1, &traffic))
            .iter()
            .all(|m| m.payload == ConsensusMessage::Init));
        assert!(adv
            .step(&view(4, &traffic))
            .iter()
            .all(|m| matches!(m.payload(), ConsensusMessage::Prefer(_))));
        assert!(adv
            .step(&view(5, &traffic))
            .iter()
            .all(|m| matches!(m.payload(), ConsensusMessage::StrongPrefer(_))));
        // Resolve round: nothing useful to inject.
        assert!(adv.step(&view(7, &traffic)).is_empty());
    }

    #[test]
    fn equivocating_coordinator_splits_opinions_in_rotor_rounds() {
        let traffic: RoundTraffic<ConsensusMessage<u64>> = RoundTraffic::new();
        let mut adv = EquivocatingCoordinator::new(10u64, 20u64);
        // Round 6 is the first rotor round (step 3).
        let out = adv.step(&view(6, &traffic));
        let lows = out
            .iter()
            .filter(|m| m.payload == ConsensusMessage::Opinion(10))
            .count();
        let highs = out
            .iter()
            .filter(|m| m.payload == ConsensusMessage::Opinion(20))
            .count();
        assert_eq!(
            lows, highs,
            "opinions must be split evenly across recipients"
        );
        assert_eq!(lows + highs, CORRECT.len() * BYZ.len());
        // Initialisation rounds campaign for candidacy.
        assert!(adv
            .step(&view(2, &traffic))
            .iter()
            .all(|m| matches!(m.payload(), ConsensusMessage::Echo(_))));
    }

    #[test]
    fn echo_withholder_amplifies_the_popular_echo_to_half_the_nodes() {
        let mut messages = Vec::new();
        for &to in &CORRECT {
            messages.push(Directed::new(CORRECT[0], to, RbMessage::Echo(42u64)));
            messages.push(Directed::new(CORRECT[1], to, RbMessage::Echo(42u64)));
            messages.push(Directed::new(CORRECT[2], to, RbMessage::Echo(7u64)));
        }
        let traffic = RoundTraffic::from_directed(messages);
        let mut adv = EchoWithholder;
        let out = adv.step(&view(3, &traffic));
        assert!(!out.is_empty());
        assert!(out.iter().all(|m| m.payload == RbMessage::Echo(42)));
        // Only even-indexed recipients (2 of the 4 correct nodes).
        assert_eq!(out.len(), 2 * BYZ.len());
        // Round 1 announces presence instead.
        let announce = adv.step(&view(1, &traffic));
        assert!(announce.iter().all(|m| m.payload == RbMessage::Present));
    }

    #[test]
    fn echo_withholder_is_silent_without_correct_echo_traffic() {
        let traffic: RoundTraffic<RbMessage<u64>> = RoundTraffic::new();
        let mut adv = EchoWithholder;
        assert!(adv.step(&view(5, &traffic)).is_empty());
    }

    #[test]
    fn membership_flapper_alternates_presence_and_spams_events() {
        let traffic = RoundTraffic::from_directed(vec![Directed::new(
            CORRECT[0],
            CORRECT[1],
            TotalOrderMessage::Event(9, 555u64),
        )]);
        let mut adv = MembershipFlapper::new(777u64);
        let odd = adv.step(&view(3, &traffic));
        assert!(odd.iter().any(|m| m.payload == TotalOrderMessage::Present));
        assert!(odd
            .iter()
            .any(|m| m.payload == TotalOrderMessage::Event(9, 777)));
        let even = adv.step(&view(4, &traffic));
        assert!(even.iter().any(|m| m.payload == TotalOrderMessage::Absent));
        // Without observed event traffic there is nothing to tag spam with.
        let no_traffic: RoundTraffic<TotalOrderMessage<u64>> = RoundTraffic::new();
        let quiet = adv.step(&view(5, &no_traffic));
        assert!(quiet
            .iter()
            .all(|m| !matches!(m.payload(), TotalOrderMessage::Event(_, _))));
    }
}
