//! Approximate agreement in the id-only model (Algorithm 4, Section VIII).
//!
//! Each correct node holds a real-valued input and must output a value that
//!
//! 1. lies within the range of correct inputs, and
//! 2. such that the range of correct outputs is strictly smaller than the range of
//!    correct inputs (the paper's single-round algorithm halves it).
//!
//! The algorithm is a one-round trimmed-range midpoint: broadcast the input, discard
//! the `⌊n_v/3⌋` smallest and largest received values, and output the midpoint of what
//! remains. Because at most `⌊n_v/3⌋` of the received values can be Byzantine
//! (Section III), the trimming removes every possible Byzantine influence from the
//! extremes, and the median of the correct inputs always survives (Lemma 13), which is
//! what makes the ranges of any two correct nodes overlap and the output range shrink.
//!
//! [`ApproxAgreement`] is the single-shot protocol; [`IteratedApproxAgreement`] runs
//! the same step repeatedly (each iteration halves the correct range again), which is
//! what the convergence experiment E6 and the sensor-fusion example use. The paper
//! notes (Section XI) that the same algorithm keeps working in dynamic networks —
//! the iterated protocol accepts value injections between iterations to model that.

use uba_simnet::{Envelope, NodeId, Outgoing, Protocol, Recoverable, RoundContext};

use crate::quorum::trim_count;
use crate::value::Real;

/// Wire message: just the sender's current value.
pub type ApproxMessage = Real;

/// Applies the core trimming rule of Algorithm 4 to a multiset of received values
/// (one per distinct sender): sort, drop `⌊n_v/3⌋` from each end, return the midpoint
/// of the extremes of what is left. Returns `None` when the trim would consume
/// everything (can only happen when almost nothing was received).
pub fn trimmed_midpoint(mut values: Vec<Real>) -> Option<Real> {
    let n_v = values.len();
    let trim = trim_count(n_v);
    if n_v == 0 || 2 * trim >= n_v {
        return None;
    }
    values.sort_unstable();
    let kept = &values[trim..n_v - trim];
    let min = *kept.first()?;
    let max = *kept.last()?;
    Some(min.midpoint(max))
}

/// A node running the single-shot Algorithm 4.
#[derive(Clone, Debug)]
pub struct ApproxAgreement {
    id: NodeId,
    input: Real,
    output: Option<Real>,
    received: Vec<(NodeId, Real)>,
}

impl ApproxAgreement {
    /// Creates a node with the given real-valued input.
    pub fn new(id: NodeId, input: Real) -> Self {
        ApproxAgreement {
            id,
            input,
            output: None,
            received: Vec::new(),
        }
    }

    /// The node's input.
    pub fn input(&self) -> Real {
        self.input
    }

    /// The number of distinct senders whose values were used (`n_v = |R_v|`).
    pub fn n_v(&self) -> usize {
        self.received.len()
    }
}

impl Recoverable for ApproxAgreement {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl Protocol for ApproxAgreement {
    type Payload = ApproxMessage;
    type Output = Real;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(&mut self, ctx: &RoundContext, inbox: &[Envelope<Real>]) -> Vec<Outgoing<Real>> {
        match ctx.round {
            // Line 1: broadcast the input to everyone, including self.
            1 => vec![Outgoing::broadcast(self.input)],
            // Lines 2–4: collect one value per sender, trim, output the midpoint.
            2 => {
                for envelope in inbox {
                    // At most one value per sender counts (a Byzantine node may try to
                    // stuff several distinct values; only its first is kept).
                    if !self.received.iter().any(|(from, _)| *from == envelope.from) {
                        self.received.push((envelope.from, *envelope.payload()));
                    }
                }
                let values: Vec<Real> = self.received.iter().map(|(_, v)| *v).collect();
                self.output = trimmed_midpoint(values);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<Real> {
        self.output
    }
}

/// A node that repeats Algorithm 4 for a fixed number of iterations, feeding each
/// iteration's output into the next as its new value. Each iteration takes one round
/// (broadcast, then compute at the start of the next round, which doubles as the next
/// broadcast round).
#[derive(Clone, Debug)]
pub struct IteratedApproxAgreement {
    id: NodeId,
    value: Real,
    iterations: u64,
    completed: u64,
    /// Value of the node after each completed iteration (for convergence plots).
    history: Vec<Real>,
    received: Vec<(NodeId, Real)>,
}

impl IteratedApproxAgreement {
    /// Creates a node that will run `iterations` rounds of approximate agreement
    /// starting from `input`.
    pub fn new(id: NodeId, input: Real, iterations: u64) -> Self {
        IteratedApproxAgreement {
            id,
            value: input,
            iterations,
            completed: 0,
            history: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The node's current value.
    pub fn value(&self) -> Real {
        self.value
    }

    /// The node's value after each completed iteration.
    pub fn history(&self) -> &[Real] {
        &self.history
    }

    /// Overrides the node's current value between iterations — models a dynamic
    /// network where a joining node brings a fresh (possibly range-expanding) value,
    /// as discussed in Section XI.
    pub fn inject_value(&mut self, value: Real) {
        self.value = value;
    }
}

impl Recoverable for IteratedApproxAgreement {
    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl Protocol for IteratedApproxAgreement {
    type Payload = ApproxMessage;
    type Output = Real;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(&mut self, _ctx: &RoundContext, inbox: &[Envelope<Real>]) -> Vec<Outgoing<Real>> {
        // Finish the previous iteration (if one was in flight).
        if !inbox.is_empty() {
            self.received.clear();
            for envelope in inbox {
                if !self.received.iter().any(|(from, _)| *from == envelope.from) {
                    self.received.push((envelope.from, *envelope.payload()));
                }
            }
            let values: Vec<Real> = self.received.iter().map(|(_, v)| *v).collect();
            if let Some(next) = trimmed_midpoint(values) {
                self.value = next;
            }
            self.completed += 1;
            self.history.push(self.value);
        }
        if self.completed < self.iterations {
            vec![Outgoing::broadcast(self.value)]
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Real> {
        (self.completed >= self.iterations).then_some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::adversary::SilentAdversary;
    use uba_simnet::{AdversaryView, Directed, FnAdversary, IdSpace, SyncEngine};

    fn real(x: f64) -> Real {
        Real::from_f64(x)
    }

    fn range(values: &[Real]) -> (Real, Real) {
        (*values.iter().min().unwrap(), *values.iter().max().unwrap())
    }

    #[test]
    fn trimmed_midpoint_matches_hand_computation() {
        // n_v = 7 → trim 2 from each end; kept = [3, 5, 9] → midpoint 6.
        let values = vec![
            real(1.0),
            real(2.0),
            real(3.0),
            real(5.0),
            real(9.0),
            real(20.0),
            real(30.0),
        ];
        assert_eq!(trimmed_midpoint(values), Some(real(6.0)));
        // Too few values to survive trimming.
        assert_eq!(trimmed_midpoint(vec![]), None);
        // n_v = 2: trim 0, midpoint of the two.
        assert_eq!(
            trimmed_midpoint(vec![real(0.0), real(1.0)]),
            Some(real(0.5))
        );
    }

    #[test]
    fn outputs_stay_within_correct_input_range_without_faults() {
        let ids = IdSpace::default().generate(9, 7);
        let inputs: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let nodes: Vec<_> = ids
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| ApproxAgreement::new(id, real(x)))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_output(5).unwrap();
        let outputs: Vec<Real> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        let (omin, omax) = range(&outputs);
        assert!(omin >= real(0.0) && omax <= real(8.0));
        let spread = omax - omin;
        assert!(spread < real(8.0), "output range must shrink strictly");
    }

    #[test]
    fn byzantine_outliers_cannot_drag_outputs_outside_the_correct_range() {
        // 7 correct nodes with inputs in [10, 20]; 2 Byzantine nodes send wildly
        // different extreme values to different nodes.
        let ids = IdSpace::default().generate(9, 8);
        let byz: Vec<NodeId> = ids[7..].to_vec();
        let inputs: Vec<f64> = vec![10.0, 12.0, 13.0, 15.0, 17.0, 19.0, 20.0];
        let nodes: Vec<_> = ids[..7]
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| ApproxAgreement::new(id, real(x)))
            .collect();
        let byz_clone = byz.clone();
        let adversary = FnAdversary::new(move |view: &AdversaryView<'_, Real>| {
            if view.round != 1 {
                return vec![];
            }
            let mut out = Vec::new();
            for (b, &from) in byz_clone.iter().enumerate() {
                for (i, &to) in view.correct_ids.iter().enumerate() {
                    let value = if (i + b) % 2 == 0 {
                        real(-1e6)
                    } else {
                        real(1e6)
                    };
                    out.push(Directed::new(from, to, value));
                }
            }
            out
        });
        let mut engine = SyncEngine::new(nodes, adversary, byz);
        engine.run_to_output(5).unwrap();
        let outputs: Vec<Real> = engine
            .outputs()
            .into_iter()
            .map(|(_, o)| o.unwrap())
            .collect();
        let (omin, omax) = range(&outputs);
        assert!(
            omin >= real(10.0),
            "Byzantine low outlier leaked into an output: {omin}"
        );
        assert!(
            omax <= real(20.0),
            "Byzantine high outlier leaked into an output: {omax}"
        );
        assert!(omax - omin < real(10.0), "range must shrink");
    }

    #[test]
    fn iterated_agreement_halves_the_range_every_iteration() {
        let ids = IdSpace::default().generate(10, 9);
        let inputs: Vec<f64> = (0..10).map(|i| (i * 10) as f64).collect();
        let nodes: Vec<_> = ids
            .iter()
            .zip(&inputs)
            .map(|(&id, &x)| IteratedApproxAgreement::new(id, real(x), 6))
            .collect();
        let mut engine = SyncEngine::new(nodes, SilentAdversary, vec![]);
        engine.run_to_termination(20).unwrap();
        // Collect the per-iteration ranges.
        let histories: Vec<&[Real]> = engine.nodes().iter().map(|n| n.history()).collect();
        let iterations = histories[0].len();
        let mut previous = real(90.0) - real(0.0);
        for i in 0..iterations {
            let values: Vec<Real> = histories.iter().map(|h| h[i]).collect();
            let (lo, hi) = range(&values);
            let spread = hi - lo;
            assert!(
                spread <= previous.midpoint(Real::ZERO) + real(1e-6) || spread == Real::ZERO,
                "iteration {i}: spread {spread} did not halve from {previous}"
            );
            previous = spread;
        }
        assert!(
            previous < real(2.0),
            "after 6 iterations the range must be tiny"
        );
    }

    #[test]
    fn accessors_report_inputs_and_counts() {
        let node = ApproxAgreement::new(NodeId::new(3), real(1.5));
        assert_eq!(node.input(), real(1.5));
        assert_eq!(node.n_v(), 0);
        let mut iterated = IteratedApproxAgreement::new(NodeId::new(4), real(2.0), 3);
        assert_eq!(iterated.value(), real(2.0));
        iterated.inject_value(real(5.0));
        assert_eq!(iterated.value(), real(5.0));
        assert!(iterated.history().is_empty());
    }
}
