//! Approximate agreement in dynamic networks (Section XI, first part, and the
//! subset-join observation of Section XII).
//!
//! The paper notes that Algorithm 4 keeps its two guarantees — outputs inside the
//! correct range, range at least halved per iteration — *per round* even when
//! participants enter and leave between rounds, subject to `n > 3f` holding in every
//! round. Whether the range shrinks over time then depends on the values the joining
//! nodes bring. This module provides:
//!
//! * [`DynamicApproxNode`] — a non-terminating protocol node that re-runs one
//!   iteration of Algorithm 4 every round on whatever membership currently exists;
//! * [`ChurnPlan`] and [`run_dynamic_approx`] — a driver that executes a join/leave
//!   schedule on the synchronous engine and records the correct-node spread after
//!   every round (the measurement behind experiment E11);
//! * [`subset_join_value`] — the Section XII observation that a newly joining node
//!   can run Algorithm 4 against only a *subset* of the existing nodes and still land
//!   inside (the trimmed core of) their value range.

use uba_simnet::adversary::SilentAdversary;
use uba_simnet::{
    ChurnEvent, ChurnSchedule, Envelope, NodeId, Outgoing, Protocol, RoundContext, SimError,
    SyncEngine,
};

use crate::approx::trimmed_midpoint;
use crate::value::Real;

/// A node that runs one iteration of Algorithm 4 per round, forever.
///
/// Unlike [`crate::approx::IteratedApproxAgreement`] it has no iteration budget: it is
/// meant to be driven by an external scheduler (the dynamic-network driver below) that
/// decides when to stop, and to keep participating while nodes join and leave around
/// it. Its output is always its current value.
#[derive(Clone, Debug)]
pub struct DynamicApproxNode {
    id: NodeId,
    value: Real,
    /// Value after each completed round, for convergence measurements.
    history: Vec<Real>,
}

impl DynamicApproxNode {
    /// Creates a node with the given starting value.
    pub fn new(id: NodeId, input: Real) -> Self {
        DynamicApproxNode {
            id,
            value: input,
            history: Vec::new(),
        }
    }

    /// The node's current value.
    pub fn value(&self) -> Real {
        self.value
    }

    /// The node's value after each completed iteration.
    pub fn history(&self) -> &[Real] {
        &self.history
    }
}

impl Protocol for DynamicApproxNode {
    type Payload = Real;
    type Output = Real;

    fn id(&self) -> NodeId {
        self.id
    }

    fn step(&mut self, _ctx: &RoundContext, inbox: &[Envelope<Real>]) -> Vec<Outgoing<Real>> {
        if !inbox.is_empty() {
            // One value per distinct sender (a Byzantine sender's extra values are
            // ignored beyond the first).
            let mut received: Vec<(NodeId, Real)> = Vec::new();
            for envelope in inbox {
                if !received.iter().any(|(from, _)| *from == envelope.from) {
                    received.push((envelope.from, *envelope.payload()));
                }
            }
            let values: Vec<Real> = received.iter().map(|(_, v)| *v).collect();
            if let Some(next) = trimmed_midpoint(values) {
                self.value = next;
            }
            self.history.push(self.value);
        }
        vec![Outgoing::broadcast(self.value)]
    }

    fn output(&self) -> Option<Real> {
        Some(self.value)
    }

    fn terminated(&self) -> bool {
        false
    }
}

/// A join/leave schedule for the dynamic approximate-agreement driver. Rounds are the
/// engine's 1-based round numbers; an event scheduled for round `r` is applied just
/// before round `r` executes.
///
/// The plan is a thin value-carrying layer over the engine-level [`ChurnSchedule`]:
/// the schedule records *who* joins or leaves and *when* (and is handed verbatim to
/// [`SyncEngine::set_churn`]), while the plan only adds the one thing the engine
/// cannot know — the starting value each correct joiner brings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnPlan {
    schedule: ChurnSchedule,
    /// `(round, id, value)` mirroring the schedule's `JoinCorrect` events — kept
    /// as a list (not a map) so an identifier that leaves and rejoins can carry a
    /// different value each time.
    join_values: Vec<(u64, NodeId, Real)>,
}

impl ChurnPlan {
    /// A plan with no churn.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Adds a correct join.
    pub fn join(mut self, round: u64, id: NodeId, value: Real) -> Self {
        self.schedule.push(round, ChurnEvent::JoinCorrect(id));
        self.join_values.push((round, id, value));
        self
    }

    /// Adds a correct leave.
    pub fn leave(mut self, round: u64, id: NodeId) -> Self {
        self.schedule.push(round, ChurnEvent::LeaveCorrect(id));
        self
    }

    /// Adds a Byzantine join (the joining identity is counted by whoever it talks
    /// to but is driven by the adversary; with the default silent adversary it only
    /// dilutes quorums).
    pub fn byzantine_join(mut self, round: u64, id: NodeId) -> Self {
        self.schedule.push(round, ChurnEvent::JoinByzantine(id));
        self
    }

    /// The engine-level schedule the plan wraps.
    pub fn schedule(&self) -> &ChurnSchedule {
        &self.schedule
    }

    /// The starting value of the *earliest* scheduled join of `id` (a rejoining
    /// identifier's later values are consumed in round order by the driver).
    pub fn join_value(&self, id: NodeId) -> Option<Real> {
        self.join_values
            .iter()
            .filter(|&&(_, jid, _)| jid == id)
            .min_by_key(|&&(round, _, _)| round)
            .map(|&(_, _, value)| value)
    }

    /// `(round, id, starting value)` of every scheduled correct join, in insertion
    /// order.
    pub fn joins(&self) -> Vec<(u64, NodeId, Real)> {
        self.join_values.clone()
    }

    /// `(round, id)` of every scheduled correct leave, in insertion order.
    pub fn leaves(&self) -> Vec<(u64, NodeId)> {
        self.schedule
            .events()
            .iter()
            .filter_map(|&(round, event)| match event {
                ChurnEvent::LeaveCorrect(id) => Some((round, id)),
                _ => None,
            })
            .collect()
    }

    /// `(round, id)` of every scheduled Byzantine join, in insertion order.
    pub fn byzantine_joins(&self) -> Vec<(u64, NodeId)> {
        self.schedule
            .events()
            .iter()
            .filter_map(|&(round, event)| match event {
                ChurnEvent::JoinByzantine(id) => Some((round, id)),
                _ => None,
            })
            .collect()
    }
}

/// What the dynamic driver measured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicApproxReport {
    /// Spread (max − min) of the correct nodes' values after each round, in round
    /// order. Joins can make this grow; in churn-free stretches it halves.
    pub spread_per_round: Vec<f64>,
    /// `(id, value)` of every correct node still present at the end.
    pub final_values: Vec<(NodeId, f64)>,
}

impl DynamicApproxReport {
    /// The spread after the last round (0.0 if nothing was recorded).
    pub fn final_spread(&self) -> f64 {
        self.spread_per_round.last().copied().unwrap_or(0.0)
    }
}

/// Runs [`DynamicApproxNode`]s for `rounds` rounds under the given churn plan and a
/// silent adversary, recording the correct-node spread after every round. The plan's
/// [`ChurnSchedule`] is handed to the engine's own churn mechanism
/// ([`SyncEngine::set_churn`]) unchanged; the driver only observes.
pub fn run_dynamic_approx(
    initial: &[(NodeId, Real)],
    plan: &ChurnPlan,
    rounds: u64,
) -> Result<DynamicApproxReport, SimError> {
    let nodes: Vec<DynamicApproxNode> = initial
        .iter()
        .map(|&(id, value)| DynamicApproxNode::new(id, value))
        .collect();
    let mut engine = SyncEngine::new(nodes, SilentAdversary, Vec::new());
    engine.validate_ids()?;
    // Joins are consumed earliest-round-first per identifier, so a leave/rejoin
    // of the same id picks up each scheduled value in order.
    let mut pending_joins = plan.joins();
    engine.set_churn(plan.schedule().clone(), move |id| {
        let position = pending_joins
            .iter()
            .enumerate()
            .filter(|(_, &(_, jid, _))| jid == id)
            .min_by_key(|(_, &(round, _, _))| round)
            .map(|(index, _)| index)
            .expect("every scheduled joiner has a starting value in the plan");
        let (_, _, value) = pending_joins.remove(position);
        DynamicApproxNode::new(id, value)
    });

    let mut report = DynamicApproxReport::default();
    for _ in 1..=rounds {
        engine.run_round()?;
        let values: Vec<f64> = engine.nodes().iter().map(|n| n.value().to_f64()).collect();
        report.spread_per_round.push(spread(&values));
    }
    report.final_values = engine
        .nodes()
        .iter()
        .map(|n| (Protocol::id(n), n.value().to_f64()))
        .collect();
    Ok(report)
}

/// The Section XII observation: a node joining a system whose members are already in
/// (approximate) agreement can run a single Algorithm 4 step against only a subset of
/// the members. The returned value is the trimmed midpoint of the subset's values
/// together with the joiner's own input — by Lemma 12 it lies within the range spanned
/// by those values, so the joiner lands inside the correct range without ever talking
/// to the whole network.
pub fn subset_join_value(joiner_input: Real, subset_values: &[Real]) -> Real {
    let mut values = Vec::with_capacity(subset_values.len() + 1);
    values.push(joiner_input);
    values.extend_from_slice(subset_values);
    trimmed_midpoint(values).unwrap_or(joiner_input)
}

fn spread(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_simnet::IdSpace;

    fn real(x: f64) -> Real {
        Real::from_f64(x)
    }

    fn initial(n: usize, seed: u64, spread: f64) -> Vec<(NodeId, Real)> {
        IdSpace::default()
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, real(i as f64 * spread / (n - 1) as f64)))
            .collect()
    }

    #[test]
    fn static_membership_converges_like_iterated_agreement() {
        let report = run_dynamic_approx(&initial(9, 1, 80.0), &ChurnPlan::none(), 8).unwrap();
        assert_eq!(report.spread_per_round.len(), 8);
        // The first recorded spread follows the first exchange; after that it halves.
        for window in report.spread_per_round.windows(2) {
            assert!(
                window[1] <= window[0] / 2.0 + 1e-5,
                "spread must halve: {window:?}"
            );
        }
        assert!(report.final_spread() < 1.0);
    }

    #[test]
    fn join_with_outlier_value_can_expand_the_range_then_reconverges() {
        let plan = ChurnPlan::none().join(4, NodeId::new(9_999), real(500.0));
        let report = run_dynamic_approx(&initial(9, 2, 10.0), &plan, 12).unwrap();
        // The joiner's outlier value may push the spread up around the join round...
        let before_join = report.spread_per_round[2];
        let after_join_max = report.spread_per_round[3..7]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(
            after_join_max >= before_join,
            "an outlier joiner should not shrink the spread"
        );
        // ... but the system reconverges afterwards.
        assert!(report.final_spread() < after_join_max / 2.0);
        assert_eq!(report.final_values.len(), 10);
    }

    #[test]
    fn leaves_do_not_break_convergence() {
        let ids = IdSpace::default().generate(10, 3);
        let start: Vec<(NodeId, Real)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, real(i as f64 * 10.0)))
            .collect();
        let plan = ChurnPlan::none().leave(3, ids[0]).leave(5, ids[1]);
        let report = run_dynamic_approx(&start, &plan, 10).unwrap();
        assert_eq!(report.final_values.len(), 8);
        assert!(report.final_spread() < 1.0);
    }

    #[test]
    fn byzantine_joins_dilute_but_do_not_break_convergence() {
        let plan = ChurnPlan::none()
            .byzantine_join(2, NodeId::new(77_001))
            .byzantine_join(2, NodeId::new(77_002));
        let report = run_dynamic_approx(&initial(9, 4, 40.0), &plan, 10).unwrap();
        assert!(report.final_spread() < 1.0);
    }

    #[test]
    fn rejoining_id_carries_each_scheduled_value_in_round_order() {
        let start = initial(6, 8, 10.0);
        let id = NodeId::new(50_000);
        let plan = ChurnPlan::none()
            .join(2, id, real(100.0))
            .leave(5, id)
            .join(8, id, real(200.0));
        assert_eq!(plan.joins().len(), 2, "both joins are preserved");
        assert_eq!(
            plan.join_value(id),
            Some(real(100.0)),
            "earliest value wins"
        );
        let report = run_dynamic_approx(&start, &plan, 12).unwrap();
        // The round-2 join must bring 100 (spread ≈ 100), the round-8 rejoin 200
        // (spread ≈ 200 against the reconverged cluster) — an id-keyed overwrite
        // would make the first join bring 200 as well.
        assert!(
            report.spread_per_round[1] > 50.0 && report.spread_per_round[1] < 150.0,
            "first join must carry 100: spread {}",
            report.spread_per_round[1]
        );
        assert!(
            report.spread_per_round[7] > 150.0,
            "rejoin must carry 200: spread {}",
            report.spread_per_round[7]
        );
        assert_eq!(report.final_values.len(), 7);
    }

    #[test]
    fn duplicate_join_id_is_rejected() {
        let start = initial(4, 5, 10.0);
        let plan = ChurnPlan::none().join(2, start[0].0, real(1.0));
        let err = run_dynamic_approx(&start, &plan, 5).unwrap_err();
        assert!(matches!(err, SimError::DuplicateId(_)));
    }

    #[test]
    fn subset_join_lands_within_the_subset_range() {
        let subset: Vec<Real> = [10.0, 11.0, 12.0, 13.0, 14.0]
            .iter()
            .map(|&x| real(x))
            .collect();
        let joined = subset_join_value(real(1_000.0), &subset);
        assert!(joined >= real(10.0) && joined <= real(1_000.0));
        // With five subset values + the joiner, the trim removes two from each end, so
        // the outlier input itself is discarded and the result is inside the subset.
        assert!(
            joined <= real(14.0),
            "joiner outlier must be trimmed away: {joined}"
        );
        // Degenerate subset: falls back to the joiner's own value only when trimming
        // would consume everything (empty subset).
        assert_eq!(subset_join_value(real(3.0), &[]), real(3.0));
    }

    #[test]
    fn dynamic_node_reports_value_and_history() {
        let node = DynamicApproxNode::new(NodeId::new(5), real(2.5));
        assert_eq!(node.value(), real(2.5));
        assert!(node.history().is_empty());
        assert!(!node.terminated());
        assert_eq!(node.output(), Some(real(2.5)));
    }
}
